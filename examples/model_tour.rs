//! A guided tour of the paper's Sections 2 and 3: why cumulative-distance
//! models under-protect rare values, and how the β-likeness bound behaves.
//!
//! Every number printed here appears in the paper's prose; the unit tests
//! pin them, this example narrates them.
//!
//! ```text
//! cargo run --release -p betalike-bench --example model_tour
//! ```

use betalike::model::{BetaLikeness, BoundKind};
use betalike_metrics::distance::{emd_equal, js_divergence, kl_divergence, max_relative_gain};

fn main() {
    println!("== Section 2: the case against cumulative distances ==\n");

    // The EMD example: both pairs are 0.1-close, yet the confidence in HIV
    // rises 25% in one case and 1000% in the other.
    let p = [0.4, 0.6];
    let q = [0.5, 0.5];
    let p2 = [0.01, 0.99];
    let q2 = [0.11, 0.89];
    println!("overall (HIV, flu) = {p:?}, EC = {q:?}:");
    println!(
        "  EMD = {:.2}, max relative gain = {:.0}%",
        emd_equal(&p, &q),
        max_relative_gain(&p, &q) * 100.0
    );
    println!("overall (HIV, flu) = {p2:?}, EC = {q2:?}:");
    println!(
        "  EMD = {:.2}, max relative gain = {:.0}%",
        emd_equal(&p2, &q2),
        max_relative_gain(&p2, &q2) * 100.0
    );
    println!("  -> identical t-closeness, wildly different privacy.\n");

    // The K-L / J-S example (paper values are in bits).
    const LN2: f64 = std::f64::consts::LN_2;
    let pt = [0.01, 0.99];
    let qt = [0.03, 0.97];
    println!("divergences rank the two cases the wrong way around:");
    println!(
        "  KL(P||Q) = {:.4} bits, JS = {:.4} bits, gain = {:.0}%",
        kl_divergence(&p, &q) / LN2,
        js_divergence(&p, &q) / LN2,
        max_relative_gain(&p, &q) * 100.0
    );
    println!(
        "  KL(P~||Q~) = {:.4} bits, JS = {:.4} bits, gain = {:.0}%",
        kl_divergence(&pt, &qt) / LN2,
        js_divergence(&pt, &qt) / LN2,
        max_relative_gain(&pt, &qt) * 100.0
    );

    println!("\n== Section 3: the enhanced beta-likeness bound ==\n");
    let beta = 4.0;
    let enhanced = BetaLikeness::new(beta).expect("valid beta");
    let basic = BetaLikeness::with_bound(beta, BoundKind::Basic).expect("valid beta");
    println!("f(p) = (1 + min(beta, -ln p)) * p at beta = {beta}:");
    println!(
        "  threshold e^-beta = {:.4}",
        enhanced.frequency_threshold()
    );
    println!("  {:>8}  {:>10}  {:>10}", "p", "enhanced", "basic");
    for p in [0.002, 0.0048402, 0.018, 0.048402, 0.2, 0.5, 0.9] {
        println!(
            "  {:>8.4}  {:>10.4}  {:>10.4}",
            p,
            enhanced.max_ec_freq(p),
            basic.max_ec_freq(p)
        );
    }
    println!("\nnote the basic bound exceeding 1.0 for frequent values —");
    println!("the flaw Definition 3 repairs: enhanced f(p) < 1 for all p < 1.");

    // The Section 6 prose check: with beta = 1, e^-1 ~ 37% marks every
    // CENSUS salary class 'infrequent'.
    let one = BetaLikeness::new(1.0).expect("valid beta");
    println!(
        "\nwith beta = 1: e^-1 = {:.3}; the most frequent CENSUS class (4.8402%)",
        one.frequency_threshold()
    );
    println!(
        "may reach at most {:.2}% in any EC (the paper's 9.7% figure).",
        one.max_ec_freq(0.048402) * 100.0
    );
}

//! Census analytics over a perturbed release (the Section 5 pipeline).
//!
//! The data owner perturbs the salary class of every tuple with the
//! (ρ1i, ρ2i)-privacy randomized response; an analyst filters by QI
//! predicates (QIs are published verbatim), reconstructs original counts
//! via the published matrix (`N′ = PM⁻¹ × E′`), and answers range
//! aggregates — compared against ground truth and the Anatomy-style
//! baseline.
//!
//! ```text
//! cargo run --release -p betalike-bench --example census_analytics
//! ```

use betalike::model::BetaLikeness;
use betalike::perturb::perturb;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_microdata::census::{self, attr, CensusConfig};
use betalike_query::{
    estimate_anatomy, estimate_perturbed, exact_count, generate_workload, median_relative_error,
    relative_error, AggQuery, RangePred, WorkloadConfig,
};

fn main() {
    let rows = 100_000;
    let table = census::generate(&CensusConfig::new(rows, 11));
    let beta = 4.0;
    let model = BetaLikeness::new(beta).expect("valid beta");

    let published = perturb(&table, attr::SALARY, &model, 99).expect("perturbation");
    println!(
        "perturbed {rows} tuples at beta = {beta}; retention probabilities span {:.3}..{:.3}",
        published
            .plan
            .alphas()
            .iter()
            .copied()
            .fold(f64::MAX, f64::min),
        published
            .plan
            .alphas()
            .iter()
            .copied()
            .fold(f64::MIN, f64::max),
    );

    // One concrete analyst question: how many 30-to-45-year-olds with
    // 12+ years of education fall in salary classes 30..=39?
    let query = AggQuery {
        qi_preds: vec![
            RangePred {
                attr: attr::AGE,
                lo: 14,
                hi: 29,
            }, // ages 30..=45
            RangePred {
                attr: attr::EDUCATION,
                lo: 11,
                hi: 16,
            }, // education 12..=17
        ],
        sa_pred: RangePred {
            attr: attr::SALARY,
            lo: 30,
            hi: 39,
        },
    };
    let exact = exact_count(&table, &query) as f64;
    let est = estimate_perturbed(&published, &query).expect("reconstruction");
    let baseline = AnatomyBaseline::publish(&table, attr::SALARY);
    let base = estimate_anatomy(&baseline, &table, &query);
    println!("\nanalyst query (age 30-45, education 12+, salary classes 30-39):");
    println!("  exact answer:           {exact:.0}");
    println!(
        "  reconstructed estimate: {est:.0}  ({:.1}% off)",
        relative_error(est, exact).unwrap_or(0.0)
    );
    println!(
        "  anatomy baseline:       {base:.0}  ({:.1}% off)",
        relative_error(base, exact).unwrap_or(0.0)
    );

    // A 1 000-query workload, the Figure 9 measurement.
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: attr::SALARY,
            lambda: 3,
            theta: 0.1,
            num_queries: 1_000,
            seed: 5,
        },
    );
    let mut pert = Vec::new();
    let mut base_errs = Vec::new();
    for q in &workload {
        let exact = exact_count(&table, q) as f64;
        pert.push(relative_error(
            estimate_perturbed(&published, q).expect("reconstruction"),
            exact,
        ));
        base_errs.push(relative_error(
            estimate_anatomy(&baseline, &table, q),
            exact,
        ));
    }
    println!("\n1000-query workload (lambda = 3, theta = 0.1):");
    println!(
        "  perturbation median relative error: {:.2}%",
        median_relative_error(pert).unwrap_or(f64::NAN)
    );
    println!(
        "  baseline median relative error:     {:.2}%",
        median_relative_error(base_errs).unwrap_or(f64::NAN)
    );
}

//! Quickstart: publish a small table under β-likeness and inspect what the
//! recipient sees.
//!
//! ```text
//! cargo run --release -p betalike-bench --example quickstart
//! ```

use betalike::{burel, BetaLikeness, BurelConfig};
use betalike_metrics::audit::{audit_partition, ClosenessMetric};
use betalike_metrics::loss::average_information_loss;
use betalike_microdata::patients::{attr, example2_table};

fn main() {
    // The 19-tuple patient table of the paper's Example 2: QI = {weight,
    // age}, SA = disease (Figure 1 hierarchy).
    let table = example2_table();
    let qi = [attr::WEIGHT, attr::AGE];
    let beta = 2.0;

    // Publish with enhanced 2-likeness. The paper's Example 2 predicts
    // exactly three equivalence classes from this input; we pin the exact
    // Combinable variant (no slack reserve) to match the worked example.
    let mut cfg = BurelConfig::new(beta);
    cfg.bucket_slack = 0.0;
    let published = burel(&table, &qi, attr::DISEASE, &cfg).expect("anonymization succeeds");

    println!("published {} equivalence classes:", published.num_ecs());
    for (i, ec) in published.ecs().iter().enumerate() {
        let extent = published.ec_extent(&table, i);
        let weight = table.schema().attr(attr::WEIGHT);
        let age = table.schema().attr(attr::AGE);
        let diseases: Vec<String> = ec
            .iter()
            .map(|&r| table.decode_row(r)[attr::DISEASE].clone())
            .collect();
        println!(
            "  EC {i}: {} tuples, weight [{}, {}], age [{}, {}], diseases {:?}",
            ec.len(),
            weight.label(extent[0].0),
            weight.label(extent[0].1),
            age.label(extent[1].0),
            age.label(extent[1].1),
            diseases
        );
    }

    // The guarantee is verified against the definition, not the algorithm.
    let model = BetaLikeness::new(beta).expect("valid beta");
    betalike::verify(&table, &published, &model).expect("output satisfies beta-likeness");

    let audit = audit_partition(&table, &published, ClosenessMetric::EqualDistance);
    println!("\nwhat an adversary gains (audited):");
    println!(
        "  max relative confidence gain (real beta): {:.3}",
        audit.max_beta
    );
    println!(
        "  t-closeness reading (max EMD):            {:.3}",
        audit.max_closeness
    );
    println!(
        "  distinct-l-diversity reading (min):       {}",
        audit.min_distinct_l
    );
    println!(
        "\ninformation loss (AIL): {:.3}",
        average_information_loss(&table, &published)
    );
}

//! Hospital release: a categorical-SA scenario at scale.
//!
//! A hospital publishes patient records with QI = {weight, age} and a
//! disease SA drawn from the Figure 1 hierarchy. The example contrasts a
//! naive ℓ-diverse-style grouping (vulnerable to the similarity attack of
//! Section 2) with a BUREL publication, and shows how the audit quantifies
//! the difference.
//!
//! ```text
//! cargo run --release -p betalike-bench --example hospital_release
//! ```

use betalike::{burel, BurelConfig};
use betalike_attacks::skewness::similarity_leaks;
use betalike_metrics::audit::{audit_partition, ClosenessMetric};
use betalike_metrics::loss::average_information_loss;
use betalike_metrics::Partition;
use betalike_microdata::patients::disease_hierarchy;
use betalike_microdata::schema::{Attribute, Schema};
use betalike_microdata::{Table, Value};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const WEIGHT: usize = 0;
const AGE: usize = 1;
const DISEASE: usize = 2;

/// Synthesizes a hospital table: nervous diseases skew young/light,
/// circulatory ones old/heavy — realistic QI↔SA correlation.
fn hospital_table(rows: usize, seed: u64) -> Table {
    let schema = Arc::new(
        Schema::new(
            vec![
                Attribute::numeric_range("Weight", 40, 120).expect("domain"),
                Attribute::numeric_range("Age", 18, 90).expect("domain"),
                Attribute::categorical("Disease", disease_hierarchy()),
            ],
            DISEASE,
        )
        .expect("schema"),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cols: Vec<Vec<Value>> = vec![Vec::new(); 3];
    for _ in 0..rows {
        let age = rng.gen_range(18..=90u32);
        let weight = rng.gen_range(40..=120u32);
        // Older/heavier patients skew circulatory (codes 3..=5).
        let circulatory_odds =
            0.2 + 0.5 * ((age - 18) as f64 / 72.0) + 0.2 * ((weight - 40) as f64 / 80.0);
        let disease = if rng.gen::<f64>() < circulatory_odds {
            3 + rng.gen_range(0..3u32)
        } else {
            rng.gen_range(0..3u32)
        };
        cols[WEIGHT].push(weight - 40);
        cols[AGE].push(age - 18);
        cols[DISEASE].push(disease);
    }
    Table::from_columns(schema, cols).expect("valid columns")
}

fn main() {
    let table = hospital_table(5_000, 7);
    let qi = [WEIGHT, AGE];
    let hierarchy = disease_hierarchy();

    // Naive release: group by disease *category* locality — each EC ends up
    // semantically homogeneous, the textbook similarity-attack victim.
    let mut nervous = Vec::new();
    let mut circulatory = Vec::new();
    for r in 0..table.num_rows() {
        if table.value(r, DISEASE) < 3 {
            nervous.push(r);
        } else {
            circulatory.push(r);
        }
    }
    let naive = Partition::new(qi.to_vec(), DISEASE, vec![nervous, circulatory]);
    let leaks = similarity_leaks(&table, &naive, &hierarchy);
    println!("naive category-grouped release:");
    for (ec, label) in &leaks {
        println!("  EC {ec} leaks `{label}` for every patient in it");
    }
    let naive_audit = audit_partition(&table, &naive, ClosenessMetric::EqualDistance);
    println!(
        "  real beta = {:.2} (relative confidence gain of {:.0}%)\n",
        naive_audit.max_beta,
        naive_audit.max_beta * 100.0
    );

    // BUREL release at beta = 1: every disease's in-EC frequency stays
    // within (1 + min(1, -ln p)) * p of its hospital-wide rate.
    let published = burel(&table, &qi, DISEASE, &BurelConfig::new(1.0)).expect("anonymization");
    let audit = audit_partition(&table, &published, ClosenessMetric::EqualDistance);
    let burel_leaks = similarity_leaks(&table, &published, &hierarchy);
    println!("BUREL release (beta = 1):");
    println!("  equivalence classes: {}", published.num_ecs());
    println!("  similarity leaks:    {}", burel_leaks.len());
    println!("  real beta:           {:.3}", audit.max_beta);
    println!("  min distinct-l:      {}", audit.min_distinct_l);
    println!(
        "  information loss:    {:.3}",
        average_information_loss(&table, &published)
    );
    assert!(audit.max_beta <= 1.0 + 1e-9);
    // Category-pure ECs are not *forbidden* outright (each disease's own
    // frequency cap can still hold inside one), but the share of leaking
    // classes collapses compared to the naive release, and — crucially —
    // the confidence gain from any leak is bounded by beta.
    let leak_share = burel_leaks.len() as f64 / published.num_ecs() as f64;
    println!(
        "  leaking classes:     {:.1}% (naive release: 100%), every one of them
                                bounded to a {:.0}% confidence gain by beta-likeness",
        leak_share * 100.0,
        audit.max_beta * 100.0
    );
    assert!(
        leak_share < 0.5,
        "beta-likeness must break most category purity"
    );
}

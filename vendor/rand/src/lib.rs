//! Offline vendored subset of the [`rand`](https://crates.io/crates/rand) 0.8
//! API, providing exactly the surface the betalike workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] — the generator construction traits;
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` extension methods;
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The build environment has no network access to crates.io, so this crate
//! stands in for the real dependency. Semantics match `rand` 0.8 closely
//! (uniform ranges are rejection-sampled and therefore unbiased; `gen::<f64>()`
//! is uniform in `[0, 1)` with 53 bits of precision), but the exact output
//! stream for a given seed is **not** guaranteed to be bit-identical to the
//! upstream crate. All in-tree expectations were derived against this
//! implementation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// The core of a random number generator: a source of uniformly random words.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The fixed-size byte seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (deterministic across platforms).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let word = sm.next().to_le_bytes();
            let take = word.len().min(bytes.len() - i);
            bytes[i..i + take].copy_from_slice(&word[..take]);
            i += take;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that [`Rng::gen`] can produce from uniform bits.
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// A range usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                (self.start as u128 + sample_u128_below(rng, (self.end - self.start) as u128)) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                (lo as u128 + sample_u128_below(rng, (hi - lo) as u128 + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniformly samples from `[0, bound)` by rejection (unbiased).
fn sample_u128_below<R: RngCore + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    assert!(bound > 0, "cannot sample empty range");
    if bound <= u64::MAX as u128 {
        let bound64 = bound as u64;
        // Widening-multiply rejection (Lemire): unbiased and fast.
        let zone = u64::MAX - (u64::MAX - bound64 + 1) % bound64;
        loop {
            let v = rng.next_u64();
            let (hi, lo) = {
                let wide = (v as u128) * (bound64 as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo <= zone {
                return hi as u128;
            }
        }
    } else {
        let zone = u128::MAX - (u128::MAX - bound + 1) % bound;
        loop {
            let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            if v <= zone {
                return v % bound;
            }
        }
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.gen_range(0..5);
            assert!(w < 5);
            let f: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i: u32 = rng.gen_range(10..=12);
            assert!((10..=12).contains(&i));
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = Counter(11);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}

//! Offline vendored mini-criterion.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the [`criterion`](https://crates.io/crates/criterion) API used
//! by the workspace benches: [`Criterion`], [`BenchmarkGroup`],
//! [`BenchmarkId`], [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! It measures wall-clock time (median over `sample_size` samples after one
//! warm-up pass) and prints one line per benchmark. There is no statistical
//! analysis, plotting, or baseline comparison — it exists so `cargo bench
//! --workspace` compiles, runs, and reports useful relative numbers.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for drop-in compatibility with `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(&id.full_name(), self.sample_size, self.warm_up_time, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample size for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full_name());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.criterion.warm_up_time, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full_name());
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_bench(&full, samples, self.criterion.warm_up_time, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies a benchmark, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn full_name(&self) -> String {
        match &self.parameter {
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Drives timed iterations of one benchmark routine.
pub struct Bencher {
    /// Median-of-samples result, filled by [`Bencher::iter`].
    elapsed: Vec<Duration>,
    samples: usize,
}

impl Bencher {
    /// Times `routine`, recording `samples` wall-clock measurements.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.elapsed.push(start.elapsed());
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, warm_up: Duration, f: &mut F) {
    // Warm-up: run the routine once (bounded by warm_up only in spirit; a
    // single pass keeps total bench time predictable without analysis).
    let _ = warm_up;
    let mut warm = Bencher {
        elapsed: Vec::new(),
        samples: 1,
    };
    f(&mut warm);

    let mut bench = Bencher {
        elapsed: Vec::with_capacity(samples),
        samples,
    };
    f(&mut bench);
    let mut times = bench.elapsed;
    if times.is_empty() {
        println!("{name:<56} (no measurement)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let max = times[times.len() - 1];
    println!(
        "{name:<56} median {:>12?}   min {:>12?}   max {:>12?}   ({} samples)",
        median,
        min,
        max,
        times.len()
    );
}

/// Declares a group of benchmark functions with an optional config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        smoke();
    }
}

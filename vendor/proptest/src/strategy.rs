//! The [`Strategy`] trait and the built-in strategies.

use rand::{Rng, RngCore};
use rand_chacha::ChaCha8Rng;
use std::ops::Range;

/// A generator of test-case values.
///
/// Unlike upstream proptest there is no value tree / shrinking: a strategy
/// simply produces a value from the deterministic case RNG.
pub trait Strategy {
    /// The produced value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

impl Strategy for Range<u128> {
    type Value = u128;

    fn generate(&self, rng: &mut ChaCha8Rng) -> u128 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        // The workspace only uses small u128 spans; sample via u64 and
        // fall back to modulo for (unused) wide spans.
        if span <= u64::MAX as u128 {
            self.start + rng.gen_range(0..span as u64) as u128
        } else {
            let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
            self.start + wide % span
        }
    }
}

macro_rules! impl_signed_range_strategy {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut ChaCha8Rng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as $u;
                let off = rng.gen_range(0..span as u64) as i128;
                (self.start as i128 + off) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64);

impl Strategy for crate::bool::Any {
    type Value = bool;

    fn generate(&self, rng: &mut ChaCha8Rng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut ChaCha8Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// A length specification for [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec`s (see [`crate::collection::vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut ChaCha8Rng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy that always yields a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut ChaCha8Rng) -> T {
        self.0.clone()
    }
}

//! Offline vendored mini-proptest.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the [`proptest`](https://crates.io/crates/proptest) API the
//! betalike workspace uses: the [`proptest!`] macro, range / tuple /
//! [`collection::vec`] / [`bool::ANY`] strategies, `prop_assert!`-family
//! macros, `prop_assume!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from upstream, by design:
//!
//! * **Deterministic**: cases are generated from a ChaCha8 stream seeded by
//!   the test's module path and name, so every run (and every CI machine)
//!   sees the same inputs. There is no persistence file.
//! * **No shrinking**: a failing case reports its inputs via the panic
//!   message (`prop_assert!` includes the case number), but is not minimized.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod strategy;

/// Test-runner configuration ([`test_runner::ProptestConfig`]).
pub mod test_runner {
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    /// Configuration for a [`crate::proptest!`] block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Builds the deterministic generator for one test case.
    #[doc(hidden)]
    pub fn case_rng(test_path: &str, case: u32) -> ChaCha8Rng {
        // FNV-1a over the test path, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ChaCha8Rng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64))
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `size` (a fixed `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Strategies over `bool`.
pub mod bool {
    /// Strategy producing uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;
}

/// The commonly used exports.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares deterministic property tests.
///
/// Supports the upstream grammar subset used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// Doc comment.
///     #[test]
///     fn my_property(x in 0u32..10, v in proptest::collection::vec(0u64..4, 1..6)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_runner::case_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (reports the failing case number).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_len_and_elements(v in crate::collection::vec(0u64..8, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 8));
        }

        #[test]
        fn tuples_and_bools(pair in (0u64..64, 5u32..100), b in crate::bool::ANY) {
            prop_assert!(pair.0 < 64);
            prop_assert!((5..100).contains(&pair.1));
            // prop_assume! skips cases without failing them.
            prop_assume!(b);
            prop_assert!(b);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        /// Config form parses and runs.
        #[test]
        fn configured(x in 0u128..64) {
            prop_assert!(x < 64);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u32..1000, 3..9);
        let a: Vec<Vec<u32>> = (0..5)
            .map(|c| s.generate(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..5)
            .map(|c| s.generate(&mut crate::test_runner::case_rng("t", c)))
            .collect();
        assert_eq!(a, b);
    }
}

//! Offline vendored [`ChaCha8Rng`]: a real 8-round ChaCha keystream generator
//! implementing the vendored [`rand`] traits.
//!
//! The build environment has no crates.io access, so this crate stands in for
//! the upstream `rand_chacha`. The keystream is a faithful ChaCha8 (Bernstein
//! 2008) with a 64-bit block counter, so its statistical quality matches the
//! upstream crate, but the word stream for a given seed is **not** guaranteed
//! to be bit-identical to upstream `rand_chacha` (which also permutes the
//! block words). All in-tree seeds and expectations were derived against this
//! implementation.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::{RngCore, SeedableRng};

const ROUNDS: usize = 8;

/// A deterministic ChaCha8 random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// ChaCha state: 4 constant words, 8 key words, 2 counter words, 2 nonce
    /// words.
    state: [u32; 16],
    /// Current keystream block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "refill".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.block.iter_mut().zip(x.iter().zip(self.state.iter())) {
            *out = a.wrapping_add(*b);
        }
        // 64-bit little-endian block counter in words 12..14.
        let counter = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
        self.index = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // Counter and nonce start at zero.
        ChaCha8Rng {
            state,
            block: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let w = self.block[self.index];
        self.index += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_looks_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        let frac = ones as f64 / (1000.0 * 32.0);
        assert!((frac - 0.5).abs() < 0.01, "bit fraction {frac}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Offline vendored mini-rayon: a dependency-free scoped thread pool.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the data-parallel subset of [`rayon`](https://crates.io/crates/rayon)
//! the betalike workspace uses. It is built entirely on `std::thread::scope`
//! (no `unsafe`, no `'static` bound on closures) and provides three
//! primitives:
//!
//! * [`par_map`] — order-preserving parallel map over a slice;
//! * [`par_chunks_map`] — parallel map over fixed-size chunks of a slice
//!   (the chunk index is passed to the closure, so callers can reconstruct
//!   global offsets and keep per-chunk scratch buffers);
//! * [`scope`] — fork-join execution of a batch of heterogeneous tasks
//!   (part of the stable pool API; the workspace's hot paths currently all
//!   fit the two map primitives).
//!
//! # Scheduling
//!
//! Work is split into more units than workers (4 per worker) and workers
//! claim units through a shared atomic counter — the self-scheduling
//! equivalent of work stealing: a worker that finishes early immediately
//! "steals" the next unclaimed unit, so uneven unit costs still balance.
//! Workers are scoped threads spawned per call; for the workspace's
//! coarse-grained units (thousands of Hilbert transforms, a whole bucket
//! sort, a whole EC audit) the spawn cost is noise.
//!
//! # Thread count
//!
//! The worker count is resolved per call, in priority order:
//!
//! 1. a programmatic [`set_threads`] override (used by benches and the
//!    `perf` binary to sweep thread counts inside one process);
//! 2. the `BETALIKE_THREADS` environment variable;
//! 3. [`std::thread::available_parallelism`].
//!
//! With one thread every primitive runs inline on the caller's stack — no
//! threads are spawned, no synchronization happens, so the serial
//! configuration has zero overhead.
//!
//! # Determinism
//!
//! All primitives preserve input order in their outputs and therefore
//! return **bit-identical results at any thread count**; the workspace's
//! thread-count-invariance tests pin this. Nested calls (a parallel
//! primitive invoked from inside a worker) run inline serially instead of
//! spawning a second generation of threads, so thread counts never
//! multiply.
//!
//! # Panics
//!
//! A panic inside a task propagates to the caller once all workers have
//! stopped (via `std::thread::scope`'s implicit join), matching the inline
//! serial behaviour.
//!
//! ```
//! let squares = mini_rayon::par_map(&[1u64, 2, 3, 4], |&x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Process-wide thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Set while executing on a pool worker: nested primitives run inline.
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// The environment/default thread count, resolved once per process.
fn env_threads() -> usize {
    static ENV: OnceLock<usize> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("BETALIKE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            })
    })
}

/// The number of worker threads parallel calls will use.
///
/// See the crate docs for the resolution order. Always at least 1.
pub fn threads() -> usize {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads(),
        n => n,
    }
}

/// Overrides the thread count for subsequent parallel calls in this
/// process; `0` removes the override (falling back to `BETALIKE_THREADS` /
/// available parallelism).
///
/// Output never depends on the thread count (see the crate docs), so
/// concurrent readers at most observe a different degree of parallelism.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Whether the current thread is a pool worker (nested calls run inline).
fn in_pool() -> bool {
    IN_POOL.with(|f| f.get())
}

/// Runs `f` on `workers` scoped threads; each invocation claims work via
/// the shared counter inside `f`. The first worker panic is re-raised on
/// the caller with its original payload once every worker has stopped.
fn run_workers<F: Fn() + Sync>(workers: usize, f: F) {
    let panic = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|flag| flag.set(true));
                    f();
                })
            })
            .collect();
        handles.into_iter().filter_map(|h| h.join().err()).next()
    });
    if let Some(payload) = panic {
        std::panic::resume_unwind(payload);
    }
}

/// Splits `len` items into self-scheduling unit bounds of ~`4 × workers`
/// units (at least one item each).
fn unit_bounds(len: usize, workers: usize) -> Vec<(usize, usize)> {
    let units = (workers * 4).clamp(1, len);
    let unit_len = len.div_ceil(units);
    (0..len)
        .step_by(unit_len)
        .map(|lo| (lo, (lo + unit_len).min(len)))
        .collect()
}

/// Applies `f` to every element of `items` in parallel, returning the
/// results in input order.
///
/// Equivalent to `items.iter().map(f).collect()` — including output order,
/// bit-exactness and panic behaviour — but spread over [`threads`] workers.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads().min(items.len());
    if workers <= 1 || in_pool() {
        return items.iter().map(f).collect();
    }
    let bounds = unit_bounds(items.len(), workers);
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(bounds.len()));
    run_workers(workers, || {
        let mut local: Vec<(usize, Vec<R>)> = Vec::new();
        loop {
            let u = next.fetch_add(1, Ordering::Relaxed);
            let Some(&(lo, hi)) = bounds.get(u) else {
                break;
            };
            local.push((u, items[lo..hi].iter().map(&f).collect()));
        }
        done.lock().unwrap().append(&mut local);
    });
    let mut parts = done.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(u, _)| u);
    debug_assert_eq!(parts.len(), bounds.len());
    let mut out = Vec::with_capacity(items.len());
    for (_, part) in parts {
        out.extend(part);
    }
    out
}

/// Applies `f` to consecutive chunks of `items` in parallel, returning one
/// result per chunk in chunk order.
///
/// Chunk boundaries are exactly those of `items.chunks(chunk_len)`: chunk
/// `c` covers `items[c * chunk_len .. min((c + 1) * chunk_len, len)]`, and
/// `f` receives `(c, chunk)` so callers can reconstruct global offsets.
/// This is the building block for order-preserving bulk kernels that want
/// one scratch buffer per chunk rather than per element.
///
/// # Panics
///
/// Panics if `chunk_len == 0`.
pub fn par_chunks_map<T, R, F>(items: &[T], chunk_len: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    let num_chunks = items.len().div_ceil(chunk_len);
    let workers = threads().min(num_chunks);
    if workers <= 1 || in_pool() {
        return items
            .chunks(chunk_len)
            .enumerate()
            .map(|(c, chunk)| f(c, chunk))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(num_chunks));
    run_workers(workers, || {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let c = next.fetch_add(1, Ordering::Relaxed);
            if c >= num_chunks {
                break;
            }
            let lo = c * chunk_len;
            let hi = (lo + chunk_len).min(items.len());
            local.push((c, f(c, &items[lo..hi])));
        }
        done.lock().unwrap().append(&mut local);
    });
    let mut parts = done.into_inner().unwrap();
    parts.sort_unstable_by_key(|&(c, _)| c);
    debug_assert_eq!(parts.len(), num_chunks);
    parts.into_iter().map(|(_, r)| r).collect()
}

/// A queued scope task: boxed so heterogeneous closures share one list.
type Task<'env> = Box<dyn FnOnce() + Send + 'env>;

/// A fork-join scope: tasks spawned through it run when the scope closure
/// returns, and [`scope`] itself returns only after every task finished.
pub struct Scope<'env> {
    tasks: Mutex<Vec<Task<'env>>>,
}

impl<'env> Scope<'env> {
    /// Queues `task` for execution. Tasks may borrow from the environment
    /// (no `'static` bound); they start once the scope closure returns and
    /// run on up to [`threads`] workers, claimed in spawn order.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, task: F) {
        self.tasks.lock().unwrap().push(Box::new(task));
    }
}

/// Creates a fork-join scope, queues tasks via [`Scope::spawn`], runs them
/// to completion, and returns the scope closure's value.
///
/// Unlike `rayon::scope`, tasks are *deferred*: they execute after the
/// closure returns (the closure's only job is to spawn them). Task panics
/// propagate to the caller after all workers have stopped.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: FnOnce(&Scope<'env>) -> T,
{
    let s = Scope {
        tasks: Mutex::new(Vec::new()),
    };
    let out = f(&s);
    let tasks = s.tasks.into_inner().unwrap();
    let workers = threads().min(tasks.len());
    if workers <= 1 || in_pool() {
        for task in tasks {
            task();
        }
        return out;
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Task<'env>>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    run_workers(workers, || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = slots.get(i) else { break };
        let task = slot.lock().unwrap().take();
        if let Some(task) = task {
            task();
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::MutexGuard;

    /// Serializes every test that touches the process-global [`OVERRIDE`]:
    /// without this, concurrent tests would race on the thread count and
    /// assertions about a specific `threads()` value would be flaky.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    /// Pins the worker count for the duration of a test (holding the
    /// override lock), restoring the default on drop.
    struct ThreadGuard(#[allow(dead_code)] MutexGuard<'static, ()>);
    impl ThreadGuard {
        fn new(n: usize) -> Self {
            // A panicking test (several here test panic propagation) poisons
            // the mutex; the lock still serializes, so clear the poison.
            let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
            set_threads(n);
            ThreadGuard(guard)
        }
    }
    impl Drop for ThreadGuard {
        fn drop(&mut self) {
            set_threads(0);
        }
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
    }

    #[test]
    fn par_map_empty_input() {
        let _g = ThreadGuard::new(8);
        let out: Vec<u32> = par_map(&[] as &[u32], |&x| x + 1);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_preserves_order() {
        let _g = ThreadGuard::new(8);
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |&x| x * 3 + 1);
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_single_item() {
        let _g = ThreadGuard::new(8);
        assert_eq!(par_map(&[7u32], |&x| x * x), vec![49]);
    }

    #[test]
    #[should_panic(expected = "task panicked on 13")]
    fn par_map_propagates_panics() {
        let _g = ThreadGuard::new(4);
        let items: Vec<u32> = (0..64).collect();
        par_map(&items, |&x| {
            if x == 13 {
                panic!("task panicked on 13");
            }
            x
        });
    }

    #[test]
    #[should_panic(expected = "serial panic")]
    fn serial_path_propagates_panics() {
        let _g = ThreadGuard::new(1);
        par_map(&[1u32], |_| -> u32 { panic!("serial panic") });
    }

    #[test]
    fn par_chunks_map_boundaries_and_order() {
        let _g = ThreadGuard::new(8);
        let items: Vec<u32> = (0..103).collect();
        // Each chunk reports (index, first element, len): boundaries must
        // match items.chunks(10) exactly.
        let out = par_chunks_map(&items, 10, |c, chunk| (c, chunk[0], chunk.len()));
        let expected: Vec<(usize, u32, usize)> = items
            .chunks(10)
            .enumerate()
            .map(|(c, chunk)| (c, chunk[0], chunk.len()))
            .collect();
        assert_eq!(out, expected);
        assert_eq!(out.len(), 11);
        assert_eq!(out[10].2, 3, "last chunk is the remainder");
    }

    #[test]
    fn par_chunks_map_empty_input() {
        let _g = ThreadGuard::new(8);
        let out: Vec<usize> = par_chunks_map(&[] as &[u32], 16, |_, chunk| chunk.len());
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "chunk_len must be positive")]
    fn par_chunks_map_zero_chunk_panics() {
        par_chunks_map(&[1u32], 0, |_, chunk| chunk.len());
    }

    #[test]
    fn scope_runs_every_task() {
        let _g = ThreadGuard::new(4);
        let hits = AtomicU64::new(0);
        let value = scope(|s| {
            for i in 0..100u64 {
                let hits = &hits;
                s.spawn(move || {
                    hits.fetch_add(i, Ordering::Relaxed);
                });
            }
            "scope result"
        });
        assert_eq!(value, "scope result");
        assert_eq!(hits.load(Ordering::Relaxed), 99 * 100 / 2);
    }

    #[test]
    fn scope_with_no_tasks() {
        let _g = ThreadGuard::new(4);
        assert_eq!(scope(|_| 42), 42);
    }

    #[test]
    #[should_panic(expected = "scoped task panic")]
    fn scope_propagates_panics() {
        let _g = ThreadGuard::new(4);
        scope(|s| {
            s.spawn(|| panic!("scoped task panic"));
        });
    }

    #[test]
    fn nested_calls_run_inline() {
        let _g = ThreadGuard::new(4);
        // The outer call parallelizes; inner calls must not spawn another
        // generation of workers (they observe IN_POOL and run inline), and
        // results stay identical either way.
        let items: Vec<u32> = (0..32).collect();
        let out = par_map(&items, |&x| {
            let inner: Vec<u32> = (0..x).collect();
            par_map(&inner, |&y| y + 1).into_iter().sum::<u32>()
        });
        let expected: Vec<u32> = items.iter().map(|&x| (0..x).map(|y| y + 1).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn set_threads_round_trip() {
        let _g = ThreadGuard::new(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
    }

    #[test]
    fn thread_count_invariance() {
        // The crate's core promise: identical output at any thread count.
        let items: Vec<u64> = (0..5_000).map(|i| i * 2654435761 % 100_000).collect();
        let serial = {
            let _g = ThreadGuard::new(1);
            par_map(&items, |&x| (x as f64).sqrt())
        };
        for n in [2, 4, 8] {
            let _g = ThreadGuard::new(n);
            let parallel = par_map(&items, |&x| (x as f64).sqrt());
            assert!(
                serial
                    .iter()
                    .zip(&parallel)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "bit mismatch at {n} threads"
            );
        }
    }
}

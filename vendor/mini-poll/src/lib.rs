//! Offline vendored mini-poll: a minimal readiness reactor.
//!
//! The build environment has no crates.io access, so this crate stands in
//! for the tiny subset of [`mio`](https://crates.io/crates/mio) the
//! betalike server's event loops need: register file descriptors with a
//! token and an [`Interest`], block in [`Poller::wait`] until some are
//! ready, and wake a blocked loop from another thread with a [`Waker`].
//!
//! Two backends implement the same level-triggered semantics:
//!
//! * **epoll** (Linux): `epoll_create1`/`epoll_ctl`/`epoll_wait`, O(ready)
//!   per wakeup — the production backend.
//! * **poll** (portable POSIX `poll(2)`): the interest list is replayed
//!   into a `pollfd` array per call, O(registered) per wakeup — the
//!   fallback for kernels without epoll, and a second implementation the
//!   tests run every scenario against so backend parity is continuously
//!   checked.
//!
//! [`Poller::new`] picks epoll on Linux and falls back to poll; setting
//! `MINI_POLL_BACKEND=poll` forces the fallback (the CI matrix and the
//! server tests use this to cover both). All `unsafe` lives in [`sys`]'s
//! five syscall shims — this file re-denies `unsafe_code`, and
//! `vendor/mini-poll/src/sys.rs` is the only entry on the betalike-lint
//! P2 whitelist.
//!
//! Sockets themselves stay plain `std::net` types: callers put them in
//! non-blocking mode with the safe `set_nonblocking` and hand mini-poll
//! only the raw fd (borrowed, never owned — dropping the socket after
//! [`Poller::deregister`] closes it as usual).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod sys;

use std::fs::File;
use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};

/// What readiness a registration asks for. `Interest::NONE` keeps the fd
/// registered but reports nothing — the event loops use it to pause
/// reading from a connection under backpressure without a deregister/
/// re-register churn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Report when the fd is readable.
    pub readable: bool,
    /// Report when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Readable and writable.
    pub const BOTH: Interest = Interest {
        readable: true,
        writable: true,
    };
    /// Registered but silent (backpressure pause).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd is readable — or in an error/hangup state a `read` will
    /// surface (errors are folded into readability so a caller that only
    /// ever reads and writes still observes them).
    pub readable: bool,
    /// The fd is writable, or in an error state a `write` will surface.
    pub writable: bool,
    /// The peer hung up or the fd errored; no further data will arrive.
    pub closed: bool,
}

/// Which syscall family a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux `epoll` — O(ready) per wakeup.
    Epoll,
    /// Portable POSIX `poll(2)` — O(registered) per wakeup.
    Poll,
}

/// How many events one `epoll_wait` can deliver; more ready fds are
/// simply reported on the next call (level-triggered readiness persists).
const EPOLL_BATCH: usize = 1024;

/// One registration in the poll-backend interest list.
#[derive(Debug, Clone, Copy)]
struct PollEntry {
    fd: RawFd,
    token: u64,
    interest: Interest,
}

#[derive(Debug)]
enum Imp {
    Epoll {
        epfd: RawFd,
        buf: Vec<sys::EpollEvent>,
    },
    Poll {
        entries: Vec<PollEntry>,
        buf: Vec<sys::PollFd>,
    },
}

impl std::fmt::Debug for sys::EpollEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (events, data) = (self.events, self.data);
        write!(f, "EpollEvent {{ events: {events:#x}, data: {data} }}")
    }
}

impl std::fmt::Debug for sys::PollFd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "PollFd {{ fd: {}, events: {:#x}, revents: {:#x} }}",
            self.fd, self.events, self.revents
        )
    }
}

/// A readiness selector over registered fds.
#[derive(Debug)]
pub struct Poller {
    imp: Imp,
}

impl Poller {
    /// The default backend: epoll on Linux (falling back to poll if the
    /// kernel refuses), poll elsewhere. `MINI_POLL_BACKEND=poll` forces
    /// the portable backend.
    ///
    /// # Errors
    ///
    /// Propagates backend construction failure (e.g. fd exhaustion).
    pub fn new() -> io::Result<Poller> {
        let forced_poll = std::env::var("MINI_POLL_BACKEND").is_ok_and(|v| v == "poll");
        if !forced_poll && cfg!(target_os = "linux") {
            if let Ok(poller) = Poller::with_backend(Backend::Epoll) {
                return Ok(poller);
            }
        }
        Poller::with_backend(Backend::Poll)
    }

    /// A poller on a specific backend (the parity tests drive both).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failure; the poll backend cannot fail.
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        let imp = match backend {
            Backend::Epoll => Imp::Epoll {
                epfd: sys::sys_epoll_create()?,
                buf: vec![sys::EpollEvent { events: 0, data: 0 }; EPOLL_BATCH],
            },
            Backend::Poll => Imp::Poll {
                entries: Vec::new(),
                buf: Vec::new(),
            },
        };
        Ok(Poller { imp })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match self.imp {
            Imp::Epoll { .. } => Backend::Epoll,
            Imp::Poll { .. } => Backend::Poll,
        }
    }

    /// Registers `fd` under `token`. The fd must stay open until
    /// [`Poller::deregister`] (the poller borrows, never owns).
    ///
    /// # Errors
    ///
    /// `AlreadyExists` if the fd is already registered; syscall errors.
    pub fn register(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll { epfd, .. } => {
                sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_ADD, fd, epoll_mask(interest), token)
            }
            Imp::Poll { entries, .. } => {
                if entries.iter().any(|e| e.fd == fd) {
                    return Err(io::Error::new(
                        io::ErrorKind::AlreadyExists,
                        "fd is already registered",
                    ));
                }
                entries.push(PollEntry {
                    fd,
                    token,
                    interest,
                });
                Ok(())
            }
        }
    }

    /// Changes a registered fd's token and interest.
    ///
    /// # Errors
    ///
    /// `NotFound` if the fd was never registered; syscall errors.
    pub fn reregister(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll { epfd, .. } => {
                sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_MOD, fd, epoll_mask(interest), token)
            }
            Imp::Poll { entries, .. } => {
                let entry = entries.iter_mut().find(|e| e.fd == fd).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, "fd is not registered")
                })?;
                entry.token = token;
                entry.interest = interest;
                Ok(())
            }
        }
    }

    /// Removes a registered fd.
    ///
    /// # Errors
    ///
    /// `NotFound` if the fd was never registered; syscall errors.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            Imp::Epoll { epfd, .. } => sys::sys_epoll_ctl(*epfd, sys::EPOLL_CTL_DEL, fd, 0, 0),
            Imp::Poll { entries, .. } => {
                let before = entries.len();
                entries.retain(|e| e.fd != fd);
                if entries.len() == before {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        "fd is not registered",
                    ));
                }
                Ok(())
            }
        }
    }

    /// Blocks until at least one registered fd is ready or the timeout
    /// elapses, clearing and refilling `events`. `None` blocks
    /// indefinitely; `Some(0)` polls without blocking. Readiness is
    /// level-triggered: an fd that stays ready is reported again on the
    /// next call.
    ///
    /// # Errors
    ///
    /// Syscall errors other than `EINTR` (which is retried internally).
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: Option<u64>) -> io::Result<()> {
        events.clear();
        let timeout = timeout_ms.map_or(-1i32, |ms| ms.min(i32::MAX as u64) as i32);
        match &mut self.imp {
            Imp::Epoll { epfd, buf } => {
                let n = sys::sys_epoll_wait(*epfd, buf, timeout)?;
                for ev in buf.iter().take(n) {
                    let (mask, token) = (ev.events, ev.data);
                    let err = mask & (sys::EPOLLERR | sys::EPOLLHUP) != 0;
                    events.push(Event {
                        token,
                        readable: mask & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0 || err,
                        writable: mask & sys::EPOLLOUT != 0 || err,
                        closed: mask & (sys::EPOLLHUP | sys::EPOLLRDHUP | sys::EPOLLERR) != 0,
                    });
                }
            }
            Imp::Poll { entries, buf } => {
                buf.clear();
                buf.extend(entries.iter().map(|e| sys::PollFd {
                    fd: e.fd,
                    events: poll_mask(e.interest),
                    revents: 0,
                }));
                sys::sys_poll(buf, timeout)?;
                for (pfd, entry) in buf.iter().zip(entries.iter()) {
                    let r = pfd.revents;
                    if r == 0 {
                        continue;
                    }
                    let err = r & (sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0;
                    events.push(Event {
                        token: entry.token,
                        readable: r & (sys::POLLIN | sys::POLLRDHUP) != 0 || err,
                        writable: r & sys::POLLOUT != 0 || err,
                        closed: err || r & sys::POLLRDHUP != 0,
                    });
                }
            }
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Imp::Epoll { epfd, .. } = &self.imp {
            sys::sys_close(*epfd);
        }
    }
}

fn epoll_mask(interest: Interest) -> u32 {
    let mut mask = sys::EPOLLRDHUP;
    if interest.readable {
        mask |= sys::EPOLLIN;
    }
    if interest.writable {
        mask |= sys::EPOLLOUT;
    }
    mask
}

fn poll_mask(interest: Interest) -> i16 {
    let mut mask = sys::POLLRDHUP;
    if interest.readable {
        mask |= sys::POLLIN;
    }
    if interest.writable {
        mask |= sys::POLLOUT;
    }
    mask
}

/// Wakes a [`Poller`] blocked in [`Poller::wait`] from another thread: a
/// non-blocking self-pipe whose read end the loop registers like any
/// other fd. [`Waker::wake`] writes one byte (a full pipe means a wake is
/// already pending — success either way); the loop calls [`Waker::drain`]
/// when its token fires and then processes whatever state the waker
/// advertised.
#[derive(Debug)]
pub struct Waker {
    read: File,
    write: File,
}

impl Waker {
    /// Creates the self-pipe (both ends non-blocking, close-on-exec).
    ///
    /// # Errors
    ///
    /// Propagates `pipe2` failure (e.g. fd exhaustion).
    pub fn new() -> io::Result<Waker> {
        let (read, write) = sys::sys_pipe_nonblock()?;
        Ok(Waker { read, write })
    }

    /// The fd to register (readable interest) with the poller.
    pub fn fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Makes the registered fd readable, waking a blocked `wait`.
    /// Callable from any thread; a full pipe counts as success (a wake is
    /// already pending and cannot be missed — readiness is level-
    /// triggered until drained).
    pub fn wake(&self) {
        let _ = (&self.write).write(&[1u8]);
    }

    /// Consumes all pending wake bytes so the fd stops reading as ready.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while matches!((&self.read).read(&mut buf), Ok(n) if n > 0) {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn both_backends(test: impl Fn(Poller)) {
        for backend in [Backend::Epoll, Backend::Poll] {
            test(Poller::with_backend(backend).unwrap());
        }
    }

    #[test]
    fn idle_wait_times_out_empty() {
        both_backends(|mut poller| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            poller
                .register(listener.as_raw_fd(), 7, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.is_empty(), "{:?}", poller.backend());
        });
    }

    #[test]
    fn listener_becomes_readable_on_connect() {
        both_backends(|mut poller| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            poller
                .register(listener.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            let _client = TcpStream::connect(addr).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            assert!(
                events.iter().any(|e| e.token == 42 && e.readable),
                "{:?}: {events:?}",
                poller.backend()
            );
            // Level-triggered: still pending until accepted.
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.iter().any(|e| e.token == 42 && e.readable));
            let _ = listener.accept().unwrap();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.is_empty());
        });
    }

    #[test]
    fn stream_reports_data_write_readiness_and_peer_close() {
        both_backends(|mut poller| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller
                .register(server.as_raw_fd(), 1, Interest::BOTH)
                .unwrap();
            // A fresh socket with empty buffers: writable, not readable.
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            let ev = events.iter().find(|e| e.token == 1).unwrap();
            assert!(ev.writable && !ev.readable, "{ev:?}");
            // Peer data: readable. (Drop the write interest first — an
            // always-writable socket would return immediately, racing the
            // peer's bytes.)
            poller
                .reregister(server.as_raw_fd(), 1, Interest::READ)
                .unwrap();
            client.write_all(b"hi").unwrap();
            client.flush().unwrap();
            poller.wait(&mut events, None).unwrap();
            assert!(events.iter().any(|e| e.token == 1 && e.readable));
            let mut server = server;
            let mut buf = [0u8; 8];
            assert_eq!(server.read(&mut buf).unwrap(), 2);
            // Peer close: readable (EOF) and flagged closed.
            drop(client);
            poller.wait(&mut events, None).unwrap();
            let ev = events.iter().find(|e| e.token == 1).unwrap();
            assert!(ev.readable && ev.closed, "{ev:?}");
        });
    }

    #[test]
    fn reregister_changes_interest_and_none_silences() {
        both_backends(|mut poller| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut client = TcpStream::connect(addr).unwrap();
            let (server, _) = listener.accept().unwrap();
            client.write_all(b"x").unwrap();
            client.flush().unwrap();
            poller
                .register(server.as_raw_fd(), 9, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            assert!(events.iter().any(|e| e.token == 9 && e.readable));
            // Pause: data still pending, but NONE reports nothing.
            poller
                .reregister(server.as_raw_fd(), 9, Interest::NONE)
                .unwrap();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.is_empty(), "{:?}", poller.backend());
            // Resume under a new token.
            poller
                .reregister(server.as_raw_fd(), 10, Interest::READ)
                .unwrap();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.iter().any(|e| e.token == 10 && e.readable));
        });
    }

    #[test]
    fn deregistered_fds_report_nothing_and_registration_errors_are_typed() {
        both_backends(|mut poller| {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let _client = TcpStream::connect(addr).unwrap();
            poller
                .register(listener.as_raw_fd(), 3, Interest::READ)
                .unwrap();
            let dup = poller.register(listener.as_raw_fd(), 4, Interest::READ);
            assert!(dup.is_err(), "double register must fail");
            poller.deregister(listener.as_raw_fd()).unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.is_empty());
            assert!(poller.deregister(listener.as_raw_fd()).is_err());
            assert!(poller
                .reregister(listener.as_raw_fd(), 5, Interest::READ)
                .is_err());
        });
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        both_backends(|mut poller| {
            let waker = std::sync::Arc::new(Waker::new().unwrap());
            poller.register(waker.fd(), 99, Interest::READ).unwrap();
            let remote = std::sync::Arc::clone(&waker);
            let t = std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(30));
                remote.wake();
            });
            // Blocks until the remote wake (a hang here is the failure).
            let mut events = Vec::new();
            poller.wait(&mut events, None).unwrap();
            assert!(events.iter().any(|e| e.token == 99 && e.readable));
            t.join().unwrap();
            // Drained, the waker goes quiet; repeated wakes coalesce.
            waker.drain();
            poller.wait(&mut events, Some(0)).unwrap();
            assert!(events.is_empty());
            waker.wake();
            waker.wake();
            poller.wait(&mut events, Some(0)).unwrap();
            assert_eq!(events.len(), 1);
        });
    }

    #[test]
    fn default_backend_resolves_and_serves() {
        let mut poller = Poller::new().unwrap();
        if cfg!(target_os = "linux") && std::env::var("MINI_POLL_BACKEND").is_err() {
            assert_eq!(poller.backend(), Backend::Epoll);
        }
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        poller
            .register(listener.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        poller.wait(&mut events, None).unwrap();
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
    }
}

//! The syscall shims — the only `unsafe` code in the workspace.
//!
//! Everything here is a thin, narrowly-scoped wrapper over five POSIX /
//! Linux syscalls (`epoll_create1` / `epoll_ctl` / `epoll_wait`, `poll`,
//! `pipe2`, `close`) declared directly as `extern "C"` items so the
//! workspace stays dependency-free (no libc crate). Each wrapper owns one
//! `unsafe` block with a local safety argument; callers receive plain
//! `io::Result`s and never see a raw pointer. The file is whitelisted for
//! betalike-lint rule P2 in `crates/lint/unsafe_allow.txt`; the library
//! layer (`lib.rs`) re-denies `unsafe_code`, so new unsafe cannot creep in
//! outside this file.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::os::fd::{FromRawFd, RawFd};

/// `epoll_ctl` op: add a new fd to the interest set.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: remove an fd from the interest set.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's registered interest.
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never registered.
pub const EPOLLERR: u32 = 0x008;
/// Peer hangup (`EPOLLHUP`); always reported, never registered.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// Readable readiness (`POLLIN`).
pub const POLLIN: i16 = 0x001;
/// Writable readiness (`POLLOUT`).
pub const POLLOUT: i16 = 0x004;
/// Error condition (`POLLERR`).
pub const POLLERR: i16 = 0x008;
/// Peer hangup (`POLLHUP`).
pub const POLLHUP: i16 = 0x010;
/// The fd was not open (`POLLNVAL`).
pub const POLLNVAL: i16 = 0x020;
/// Peer closed its write half (`POLLRDHUP`, Linux). Plain `POLLHUP` only
/// fires on a full close/reset, so this is requested alongside the
/// interest mask to match the epoll backend's half-close reporting.
pub const POLLRDHUP: i16 = 0x2000;

/// `EPOLL_CLOEXEC` (== `O_CLOEXEC` on Linux).
const EPOLL_CLOEXEC: i32 = 0o2000000;
/// `O_CLOEXEC` for `pipe2`.
const O_CLOEXEC: i32 = 0o2000000;
/// `O_NONBLOCK` for `pipe2` (Linux generic ABI value).
const O_NONBLOCK: i32 = 0o4000;

/// One `struct epoll_event`. The kernel ABI packs this on x86-64 (no
/// padding between the 32-bit mask and the 64-bit payload); other
/// architectures use natural alignment.
#[derive(Clone, Copy)]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub struct EpollEvent {
    /// Readiness mask (`EPOLLIN` | ...).
    pub events: u32,
    /// The caller's token, returned verbatim.
    pub data: u64,
}

/// One `struct pollfd`.
#[derive(Clone, Copy)]
#[repr(C)]
pub struct PollFd {
    /// The fd to poll.
    pub fd: i32,
    /// Requested readiness (`POLLIN` | `POLLOUT`).
    pub events: i16,
    /// Returned readiness.
    pub revents: i16,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
}

/// Creates a close-on-exec epoll instance and returns its fd.
///
/// # Errors
///
/// The syscall's errno (e.g. `EMFILE`), or `ENOSYS` on kernels without
/// epoll — the caller falls back to the portable `poll(2)` backend.
pub fn sys_epoll_create() -> io::Result<RawFd> {
    // SAFETY: epoll_create1 takes no pointers; a negative return is the
    // only failure signal and is mapped to errno here.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Adds, modifies, or removes (`EPOLL_CTL_*`) one fd in an epoll set.
///
/// # Errors
///
/// The syscall's errno (`EEXIST`, `ENOENT`, `EBADF`, ...).
pub fn sys_epoll_ctl(epfd: RawFd, op: i32, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` is a live, properly-laid-out epoll_event for the
    // duration of the call; the kernel only reads it (and ignores it
    // entirely for EPOLL_CTL_DEL).
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Waits for readiness on an epoll set, filling `buf` from the front, and
/// returns how many entries are valid. Retries `EINTR` internally.
/// `timeout_ms < 0` blocks indefinitely; `0` polls.
///
/// # Errors
///
/// The syscall's errno (`EBADF`, `EFAULT`, ...) — never `EINTR`.
pub fn sys_epoll_wait(epfd: RawFd, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    if buf.is_empty() {
        return Ok(0);
    }
    loop {
        // SAFETY: `buf` is a live &mut slice; its pointer and length
        // describe exactly the memory the kernel may fill, and the
        // returned count is bounded by that length.
        let rc = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Waits for readiness with portable `poll(2)`, updating each entry's
/// `revents` in place, and returns how many fds are ready. Retries
/// `EINTR` internally. `timeout_ms < 0` blocks indefinitely; `0` polls.
///
/// # Errors
///
/// The syscall's errno — never `EINTR`.
pub fn sys_poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    if fds.is_empty() && timeout_ms < 0 {
        // poll(NULL, 0, -1) would sleep forever with nothing to wake it.
        return Ok(0);
    }
    loop {
        // SAFETY: `fds` is a live &mut slice; pointer and length describe
        // exactly the pollfd array the kernel reads and writes.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

/// Creates a non-blocking close-on-exec pipe and returns `(read, write)`
/// ends as owned [`File`]s — from here on, the waker does all its I/O
/// through safe `std` reads and writes, and `Drop` closes the fds.
///
/// # Errors
///
/// The syscall's errno (e.g. `EMFILE`).
pub fn sys_pipe_nonblock() -> io::Result<(File, File)> {
    let mut fds: [i32; 2] = [-1, -1];
    // SAFETY: `fds` is a live 2-element array, exactly what pipe2 fills.
    let rc = unsafe { pipe2(fds.as_mut_ptr(), O_CLOEXEC | O_NONBLOCK) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    // SAFETY: both fds were just returned by a successful pipe2, are valid
    // and owned by nothing else; each File takes sole ownership of one.
    let (r, w) = unsafe { (File::from_raw_fd(fds[0]), File::from_raw_fd(fds[1])) };
    Ok((r, w))
}

/// Closes an fd owned by the caller (the epoll instance fd).
pub fn sys_close(fd: RawFd) {
    // SAFETY: callers pass only fds they own and never reuse afterwards
    // (the Poller's Drop, exactly once). The return value is deliberately
    // ignored — there is no recovery from a failed close.
    let _ = unsafe { close(fd) };
}

//! CSV export/import of decoded tables.
//!
//! The experiment binaries use this to dump generated datasets and published
//! tables for external inspection. The format is plain RFC-4180-ish CSV with
//! a header row of attribute names; values are decoded labels (not codes),
//! so files are human-readable and survive schema-compatible round-trips.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::table::Table;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::sync::Arc;

fn needs_quoting(field: &str) -> bool {
    field.contains(',') || field.contains('"') || field.contains('\n')
}

fn write_field(out: &mut impl Write, field: &str) -> std::io::Result<()> {
    if needs_quoting(field) {
        write!(out, "\"{}\"", field.replace('"', "\"\""))
    } else {
        out.write_all(field.as_bytes())
    }
}

/// Writes a table as CSV with a header of attribute names.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn write_csv(table: &Table, sink: impl Write) -> Result<()> {
    let mut out = BufWriter::new(sink);
    let schema = table.schema();
    for (i, a) in schema.attributes().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_field(&mut out, a.name())?;
    }
    out.write_all(b"\n")?;
    for row in 0..table.num_rows() {
        for (i, label) in table.decode_row(row).iter().enumerate() {
            if i > 0 {
                out.write_all(b",")?;
            }
            write_field(&mut out, label)?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()?;
    Ok(())
}

/// Splits one CSV line into fields, honoring double-quote escaping.
fn split_csv_line(line: &str) -> Result<Vec<String>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' if chars.peek() == Some(&'"') => {
                    cur.push('"');
                    chars.next();
                }
                '"' => in_quotes = false,
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' if cur.is_empty() => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(Error::Csv(format!("unterminated quote in line: {line}")));
    }
    fields.push(cur);
    Ok(fields)
}

/// Reads a CSV previously produced by [`write_csv`] back into a table,
/// validating the header against `schema` and encoding labels.
///
/// # Errors
///
/// Fails on header mismatch, unknown labels, or malformed CSV.
pub fn read_csv(schema: Arc<Schema>, source: impl Read) -> Result<Table> {
    let mut reader = BufReader::new(source);
    let mut header = String::new();
    if reader.read_line(&mut header)? == 0 {
        return Err(Error::Csv("missing header row".into()));
    }
    let names = split_csv_line(header.trim_end_matches(['\r', '\n']))?;
    if names.len() != schema.arity() {
        return Err(Error::ArityMismatch {
            got: names.len(),
            expected: schema.arity(),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if schema.attr(i).name() != name {
            return Err(Error::Csv(format!(
                "header column {i} is `{name}`, schema expects `{}`",
                schema.attr(i).name()
            )));
        }
    }
    let mut builder = Table::builder(schema);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let trimmed = line.trim_end_matches(['\r', '\n']);
        if trimmed.is_empty() {
            continue;
        }
        let fields = split_csv_line(trimmed)?;
        let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
        builder.push_labels(&refs)?;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patients::{patients_schema, patients_table};

    #[test]
    fn roundtrip_patients() {
        let t = patients_table();
        let mut buf = Vec::new();
        write_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert!(text.starts_with("Weight,Age,Disease\n"));
        assert!(text.contains("70,40,headache"));
        let back = read_csv(patients_schema(), buf.as_slice()).unwrap();
        assert_eq!(back.num_rows(), t.num_rows());
        for r in 0..t.num_rows() {
            assert_eq!(back.decode_row(r), t.decode_row(r));
        }
    }

    #[test]
    fn quoting_roundtrip() {
        assert_eq!(
            split_csv_line("a,\"b,c\",\"d\"\"e\"").unwrap(),
            vec!["a", "b,c", "d\"e"]
        );
        assert!(split_csv_line("\"oops").is_err());
    }

    #[test]
    fn header_validation() {
        let csv = b"Weight,Age,Illness\n70,40,headache\n";
        assert!(read_csv(patients_schema(), csv.as_slice()).is_err());
        let short = b"Weight,Age\n";
        assert!(matches!(
            read_csv(patients_schema(), short.as_slice()),
            Err(Error::ArityMismatch { .. })
        ));
        let empty = b"";
        assert!(read_csv(patients_schema(), empty.as_slice()).is_err());
    }

    #[test]
    fn skips_blank_lines_rejects_bad_labels() {
        let csv = b"Weight,Age,Disease\n70,40,headache\n\n60,60,epilepsy\n";
        let t = read_csv(patients_schema(), csv.as_slice()).unwrap();
        assert_eq!(t.num_rows(), 2);
        let bad = b"Weight,Age,Disease\n70,40,plague\n";
        assert!(read_csv(patients_schema(), bad.as_slice()).is_err());
    }
}

//! Durable schema descriptors (JSON) for the release tooling.
//!
//! A [`SchemaSpec`] is the interchange form of a [`Schema`]: attribute
//! names, numeric domains and categorical hierarchies, plus which attribute
//! is sensitive. The `anonymize` CLI reads one next to the input CSV, and
//! publication bundles embed one so recipients can decode the release
//! without the producing binary.
//!
//! ```json
//! {
//!   "attributes": [
//!     { "type": "numeric_range", "name": "Age", "min": 16, "max": 94 },
//!     { "type": "categorical", "name": "Gender",
//!       "hierarchy": { "label": "person",
//!                      "children": [ { "label": "male" }, { "label": "female" } ] } }
//!   ],
//!   "sensitive": "Age"
//! }
//! ```

use crate::error::{Error, Result};
use crate::hierarchy::{Hierarchy, NodeSpec};
use crate::json::Json;
use crate::schema::{AttrKind, Attribute, Schema};
use std::sync::Arc;

/// Serializable hierarchy node: a label plus optional children (absent or
/// empty children ⇒ leaf).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpecJson {
    /// Node label (leaf labels are the domain values).
    pub label: String,
    /// Child nodes; a leaf omits this field.
    pub children: Vec<NodeSpecJson>,
}

impl NodeSpecJson {
    fn to_node_spec(&self) -> NodeSpec {
        if self.children.is_empty() {
            NodeSpec::leaf(self.label.clone())
        } else {
            NodeSpec::internal(
                self.label.clone(),
                self.children.iter().map(Self::to_node_spec).collect(),
            )
        }
    }

    fn from_hierarchy(h: &Hierarchy, node: usize) -> Self {
        let children = (node + 1..h.num_nodes())
            .filter(|&c| h.parent(c) == Some(node))
            .map(|c| Self::from_hierarchy(h, c))
            .collect();
        NodeSpecJson {
            label: h.label(node).to_string(),
            children,
        }
    }

    fn to_value(&self) -> Json {
        let mut members = vec![("label".to_string(), Json::from(self.label.as_str()))];
        if !self.children.is_empty() {
            members.push((
                "children".to_string(),
                Json::Arr(self.children.iter().map(Self::to_value).collect()),
            ));
        }
        Json::Obj(members)
    }

    fn from_value(value: &Json) -> Result<Self> {
        let label = value
            .get("label")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("hierarchy node needs a string `label`"))?
            .to_string();
        let children = match value.get("children") {
            None => Vec::new(),
            Some(c) => c
                .as_arr()
                .ok_or_else(|| bad("`children` must be an array"))?
                .iter()
                .map(Self::from_value)
                .collect::<Result<_>>()?,
        };
        Ok(NodeSpecJson { label, children })
    }
}

fn bad(msg: impl std::fmt::Display) -> Error {
    Error::InvalidSchema(format!("schema JSON: {msg}"))
}

fn field<'a>(value: &'a Json, key: &str) -> Result<&'a Json> {
    value
        .get(key)
        .ok_or_else(|| bad(format!("missing field `{key}`")))
}

fn str_field(value: &Json, key: &str) -> Result<String> {
    field(value, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("field `{key}` must be a string")))
}

fn int_field(value: &Json, key: &str) -> Result<i64> {
    field(value, key)?
        .as_i64()
        .ok_or_else(|| bad(format!("field `{key}` must be an integer")))
}

/// Serializable attribute descriptor. The JSON form is internally tagged:
/// a `"type"` member of `"numeric_range"`, `"numeric_values"` or
/// `"categorical"` selects the variant.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrSpec {
    /// Numeric attribute over an inclusive integer range.
    NumericRange {
        /// Attribute name.
        name: String,
        /// Smallest domain value.
        min: i64,
        /// Largest domain value.
        max: i64,
    },
    /// Numeric attribute over explicit ascending values.
    NumericValues {
        /// Attribute name.
        name: String,
        /// Ascending distinct domain values.
        values: Vec<f64>,
    },
    /// Categorical attribute with a generalization hierarchy.
    Categorical {
        /// Attribute name.
        name: String,
        /// The hierarchy (root node).
        hierarchy: NodeSpecJson,
    },
}

impl AttrSpec {
    fn name(&self) -> &str {
        match self {
            AttrSpec::NumericRange { name, .. }
            | AttrSpec::NumericValues { name, .. }
            | AttrSpec::Categorical { name, .. } => name,
        }
    }

    fn to_attribute(&self) -> Result<Attribute> {
        match self {
            AttrSpec::NumericRange { name, min, max } => Attribute::numeric_range(name, *min, *max),
            AttrSpec::NumericValues { name, values } => Attribute::numeric(name, values.clone()),
            AttrSpec::Categorical { name, hierarchy } => Ok(Attribute::categorical(
                name,
                Hierarchy::from_spec(&hierarchy.to_node_spec())?,
            )),
        }
    }

    fn from_attribute(attr: &Attribute) -> Self {
        match attr.kind() {
            AttrKind::Numeric { values } => {
                // Compact integer ranges back to the range form.
                let is_int_range = values.windows(2).all(|w| (w[1] - w[0] - 1.0).abs() < 1e-9)
                    && values.iter().all(|v| v.fract() == 0.0);
                if is_int_range {
                    AttrSpec::NumericRange {
                        name: attr.name().to_string(),
                        min: values[0] as i64,
                        max: values[values.len() - 1] as i64,
                    }
                } else {
                    AttrSpec::NumericValues {
                        name: attr.name().to_string(),
                        values: values.clone(),
                    }
                }
            }
            AttrKind::Categorical { hierarchy } => AttrSpec::Categorical {
                name: attr.name().to_string(),
                hierarchy: NodeSpecJson::from_hierarchy(hierarchy, hierarchy.root()),
            },
        }
    }

    fn to_value(&self) -> Json {
        match self {
            AttrSpec::NumericRange { name, min, max } => Json::Obj(vec![
                ("type".to_string(), Json::from("numeric_range")),
                ("name".to_string(), Json::from(name.as_str())),
                ("min".to_string(), Json::Num(*min as f64)),
                ("max".to_string(), Json::Num(*max as f64)),
            ]),
            AttrSpec::NumericValues { name, values } => Json::Obj(vec![
                ("type".to_string(), Json::from("numeric_values")),
                ("name".to_string(), Json::from(name.as_str())),
                (
                    "values".to_string(),
                    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect()),
                ),
            ]),
            AttrSpec::Categorical { name, hierarchy } => Json::Obj(vec![
                ("type".to_string(), Json::from("categorical")),
                ("name".to_string(), Json::from(name.as_str())),
                ("hierarchy".to_string(), hierarchy.to_value()),
            ]),
        }
    }

    fn from_value(value: &Json) -> Result<Self> {
        let tag = str_field(value, "type")?;
        match tag.as_str() {
            "numeric_range" => Ok(AttrSpec::NumericRange {
                name: str_field(value, "name")?,
                min: int_field(value, "min")?,
                max: int_field(value, "max")?,
            }),
            "numeric_values" => {
                let values = field(value, "values")?
                    .as_arr()
                    .ok_or_else(|| bad("`values` must be an array"))?
                    .iter()
                    .map(|v| v.as_f64().ok_or_else(|| bad("`values` must be numbers")))
                    .collect::<Result<_>>()?;
                Ok(AttrSpec::NumericValues {
                    name: str_field(value, "name")?,
                    values,
                })
            }
            "categorical" => Ok(AttrSpec::Categorical {
                name: str_field(value, "name")?,
                hierarchy: NodeSpecJson::from_value(field(value, "hierarchy")?)?,
            }),
            other => Err(bad(format!("unknown attribute type `{other}`"))),
        }
    }
}

/// A serializable schema: attributes plus the sensitive attribute's name.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaSpec {
    /// Attribute descriptors in column order.
    pub attributes: Vec<AttrSpec>,
    /// Name of the sensitive attribute.
    pub sensitive: String,
}

impl SchemaSpec {
    /// Captures an existing schema.
    pub fn from_schema(schema: &Schema) -> Self {
        SchemaSpec {
            attributes: schema
                .attributes()
                .iter()
                .map(AttrSpec::from_attribute)
                .collect(),
            sensitive: schema.attr(schema.default_sa()).name().to_string(),
        }
    }

    /// Materializes the runtime schema.
    ///
    /// # Errors
    ///
    /// Propagates domain/hierarchy validation errors; fails if `sensitive`
    /// names no attribute.
    pub fn to_schema(&self) -> Result<Arc<Schema>> {
        let attrs: Result<Vec<Attribute>> =
            self.attributes.iter().map(AttrSpec::to_attribute).collect();
        let attrs = attrs?;
        let sa = attrs
            .iter()
            .position(|a| a.name() == self.sensitive)
            .ok_or_else(|| {
                Error::InvalidSchema(format!(
                    "sensitive attribute `{}` not among the declared attributes",
                    self.sensitive
                ))
            })?;
        Ok(Arc::new(Schema::new(attrs, sa)?))
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns parse diagnostics wrapped as [`Error::InvalidSchema`].
    pub fn from_json(json: &str) -> Result<Self> {
        let doc = Json::parse(json).map_err(|e| bad(e.to_string()))?;
        let attributes = field(&doc, "attributes")?
            .as_arr()
            .ok_or_else(|| bad("`attributes` must be an array"))?
            .iter()
            .map(AttrSpec::from_value)
            .collect::<Result<_>>()?;
        Ok(SchemaSpec {
            attributes,
            sensitive: str_field(&doc, "sensitive")?,
        })
    }

    /// Renders pretty JSON.
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            (
                "attributes".to_string(),
                Json::Arr(self.attributes.iter().map(AttrSpec::to_value).collect()),
            ),
            ("sensitive".to_string(), Json::from(self.sensitive.as_str())),
        ])
        .pretty()
    }

    /// Name of an attribute by position.
    pub fn attribute_name(&self, index: usize) -> Option<&str> {
        self.attributes.get(index).map(AttrSpec::name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census_schema;
    use crate::patients::patients_schema;

    #[test]
    fn census_schema_roundtrips() {
        let schema = census_schema();
        let spec = SchemaSpec::from_schema(&schema);
        let json = spec.to_json();
        let parsed = SchemaSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
        let back = parsed.to_schema().unwrap();
        assert_eq!(back.arity(), schema.arity());
        assert_eq!(back.default_sa(), schema.default_sa());
        for i in 0..schema.arity() {
            assert_eq!(back.attr(i).name(), schema.attr(i).name());
            assert_eq!(back.attr(i).cardinality(), schema.attr(i).cardinality());
        }
        // Hierarchy structure survives: work class height 3.
        assert_eq!(back.attr(4).hierarchy().unwrap().height(), 3);
    }

    #[test]
    fn patients_schema_roundtrips() {
        let schema = patients_schema();
        let spec = SchemaSpec::from_schema(&schema);
        let back = SchemaSpec::from_json(&spec.to_json())
            .unwrap()
            .to_schema()
            .unwrap();
        assert_eq!(back.attr(2).hierarchy().unwrap().leaf_label(0), "headache");
        assert_eq!(back.default_sa(), 2);
    }

    #[test]
    fn json_form_is_stable_and_readable() {
        let schema = patients_schema();
        let json = SchemaSpec::from_schema(&schema).to_json();
        assert!(json.contains("\"type\": \"numeric_range\""));
        assert!(json.contains("\"sensitive\": \"Disease\""));
        assert!(json.contains("\"label\": \"nervous diseases\""));
    }

    #[test]
    fn unknown_sensitive_rejected() {
        let spec = SchemaSpec {
            attributes: vec![AttrSpec::NumericRange {
                name: "a".into(),
                min: 0,
                max: 4,
            }],
            sensitive: "missing".into(),
        };
        assert!(matches!(spec.to_schema(), Err(Error::InvalidSchema(_))));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(SchemaSpec::from_json("{not json").is_err());
        assert!(SchemaSpec::from_json("{\"attributes\": []}").is_err());
    }

    #[test]
    fn non_integer_domains_use_values_form() {
        let attr = Attribute::numeric("score", vec![0.5, 1.5, 4.0]).unwrap();
        let spec = AttrSpec::from_attribute(&attr);
        assert!(matches!(spec, AttrSpec::NumericValues { .. }));
        let back = spec.to_attribute().unwrap();
        assert_eq!(back.cardinality(), 3);
        assert_eq!(back.numeric_value(2), Some(4.0));
    }
}

//! Durable schema descriptors (JSON) for the release tooling.
//!
//! A [`SchemaSpec`] is the interchange form of a [`Schema`]: attribute
//! names, numeric domains and categorical hierarchies, plus which attribute
//! is sensitive. The `anonymize` CLI reads one next to the input CSV, and
//! publication bundles embed one so recipients can decode the release
//! without the producing binary.
//!
//! ```json
//! {
//!   "attributes": [
//!     { "type": "numeric_range", "name": "Age", "min": 16, "max": 94 },
//!     { "type": "categorical", "name": "Gender",
//!       "hierarchy": { "label": "person",
//!                      "children": [ { "label": "male" }, { "label": "female" } ] } }
//!   ],
//!   "sensitive": "Age"
//! }
//! ```

use crate::error::{Error, Result};
use crate::hierarchy::{Hierarchy, NodeSpec};
use crate::schema::{AttrKind, Attribute, Schema};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Serializable hierarchy node: a label plus optional children (absent or
/// empty children ⇒ leaf).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeSpecJson {
    /// Node label (leaf labels are the domain values).
    pub label: String,
    /// Child nodes; a leaf omits this field.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub children: Vec<NodeSpecJson>,
}

impl NodeSpecJson {
    fn to_node_spec(&self) -> NodeSpec {
        if self.children.is_empty() {
            NodeSpec::leaf(self.label.clone())
        } else {
            NodeSpec::internal(
                self.label.clone(),
                self.children.iter().map(Self::to_node_spec).collect(),
            )
        }
    }

    fn from_hierarchy(h: &Hierarchy, node: usize) -> Self {
        let children = (node + 1..h.num_nodes())
            .filter(|&c| h.parent(c) == Some(node))
            .map(|c| Self::from_hierarchy(h, c))
            .collect();
        NodeSpecJson {
            label: h.label(node).to_string(),
            children,
        }
    }
}

/// Serializable attribute descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "snake_case")]
pub enum AttrSpec {
    /// Numeric attribute over an inclusive integer range.
    NumericRange {
        /// Attribute name.
        name: String,
        /// Smallest domain value.
        min: i64,
        /// Largest domain value.
        max: i64,
    },
    /// Numeric attribute over explicit ascending values.
    NumericValues {
        /// Attribute name.
        name: String,
        /// Ascending distinct domain values.
        values: Vec<f64>,
    },
    /// Categorical attribute with a generalization hierarchy.
    Categorical {
        /// Attribute name.
        name: String,
        /// The hierarchy (root node).
        hierarchy: NodeSpecJson,
    },
}

impl AttrSpec {
    fn name(&self) -> &str {
        match self {
            AttrSpec::NumericRange { name, .. }
            | AttrSpec::NumericValues { name, .. }
            | AttrSpec::Categorical { name, .. } => name,
        }
    }

    fn to_attribute(&self) -> Result<Attribute> {
        match self {
            AttrSpec::NumericRange { name, min, max } => Attribute::numeric_range(name, *min, *max),
            AttrSpec::NumericValues { name, values } => Attribute::numeric(name, values.clone()),
            AttrSpec::Categorical { name, hierarchy } => Ok(Attribute::categorical(
                name,
                Hierarchy::from_spec(&hierarchy.to_node_spec())?,
            )),
        }
    }

    fn from_attribute(attr: &Attribute) -> Self {
        match attr.kind() {
            AttrKind::Numeric { values } => {
                // Compact integer ranges back to the range form.
                let is_int_range = values
                    .windows(2)
                    .all(|w| (w[1] - w[0] - 1.0).abs() < 1e-9)
                    && values.iter().all(|v| v.fract() == 0.0);
                if is_int_range {
                    AttrSpec::NumericRange {
                        name: attr.name().to_string(),
                        min: values[0] as i64,
                        max: values[values.len() - 1] as i64,
                    }
                } else {
                    AttrSpec::NumericValues {
                        name: attr.name().to_string(),
                        values: values.clone(),
                    }
                }
            }
            AttrKind::Categorical { hierarchy } => AttrSpec::Categorical {
                name: attr.name().to_string(),
                hierarchy: NodeSpecJson::from_hierarchy(hierarchy, hierarchy.root()),
            },
        }
    }
}

/// A serializable schema: attributes plus the sensitive attribute's name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaSpec {
    /// Attribute descriptors in column order.
    pub attributes: Vec<AttrSpec>,
    /// Name of the sensitive attribute.
    pub sensitive: String,
}

impl SchemaSpec {
    /// Captures an existing schema.
    pub fn from_schema(schema: &Schema) -> Self {
        SchemaSpec {
            attributes: schema
                .attributes()
                .iter()
                .map(AttrSpec::from_attribute)
                .collect(),
            sensitive: schema.attr(schema.default_sa()).name().to_string(),
        }
    }

    /// Materializes the runtime schema.
    ///
    /// # Errors
    ///
    /// Propagates domain/hierarchy validation errors; fails if `sensitive`
    /// names no attribute.
    pub fn to_schema(&self) -> Result<Arc<Schema>> {
        let attrs: Result<Vec<Attribute>> =
            self.attributes.iter().map(AttrSpec::to_attribute).collect();
        let attrs = attrs?;
        let sa = attrs
            .iter()
            .position(|a| a.name() == self.sensitive)
            .ok_or_else(|| Error::InvalidSchema(format!(
                "sensitive attribute `{}` not among the declared attributes",
                self.sensitive
            )))?;
        Ok(Arc::new(Schema::new(attrs, sa)?))
    }

    /// Parses the JSON form.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Csv`]-style parse diagnostics wrapped as
    /// [`Error::InvalidSchema`].
    pub fn from_json(json: &str) -> Result<Self> {
        serde_json::from_str(json)
            .map_err(|e| Error::InvalidSchema(format!("schema JSON: {e}")))
    }

    /// Renders pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema specs always serialize")
    }

    /// Name of an attribute by position.
    pub fn attribute_name(&self, index: usize) -> Option<&str> {
        self.attributes.get(index).map(AttrSpec::name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::census::census_schema;
    use crate::patients::patients_schema;

    #[test]
    fn census_schema_roundtrips() {
        let schema = census_schema();
        let spec = SchemaSpec::from_schema(&schema);
        let json = spec.to_json();
        let parsed = SchemaSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
        let back = parsed.to_schema().unwrap();
        assert_eq!(back.arity(), schema.arity());
        assert_eq!(back.default_sa(), schema.default_sa());
        for i in 0..schema.arity() {
            assert_eq!(back.attr(i).name(), schema.attr(i).name());
            assert_eq!(back.attr(i).cardinality(), schema.attr(i).cardinality());
        }
        // Hierarchy structure survives: work class height 3.
        assert_eq!(back.attr(4).hierarchy().unwrap().height(), 3);
    }

    #[test]
    fn patients_schema_roundtrips() {
        let schema = patients_schema();
        let spec = SchemaSpec::from_schema(&schema);
        let back = SchemaSpec::from_json(&spec.to_json())
            .unwrap()
            .to_schema()
            .unwrap();
        assert_eq!(
            back.attr(2).hierarchy().unwrap().leaf_label(0),
            "headache"
        );
        assert_eq!(back.default_sa(), 2);
    }

    #[test]
    fn json_form_is_stable_and_readable() {
        let schema = patients_schema();
        let json = SchemaSpec::from_schema(&schema).to_json();
        assert!(json.contains("\"type\": \"numeric_range\""));
        assert!(json.contains("\"sensitive\": \"Disease\""));
        assert!(json.contains("\"label\": \"nervous diseases\""));
    }

    #[test]
    fn unknown_sensitive_rejected() {
        let spec = SchemaSpec {
            attributes: vec![AttrSpec::NumericRange {
                name: "a".into(),
                min: 0,
                max: 4,
            }],
            sensitive: "missing".into(),
        };
        assert!(matches!(
            spec.to_schema(),
            Err(Error::InvalidSchema(_))
        ));
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(SchemaSpec::from_json("{not json").is_err());
        assert!(SchemaSpec::from_json("{\"attributes\": []}").is_err());
    }

    #[test]
    fn non_integer_domains_use_values_form() {
        let attr = Attribute::numeric("score", vec![0.5, 1.5, 4.0]).unwrap();
        let spec = AttrSpec::from_attribute(&attr);
        assert!(matches!(spec, AttrSpec::NumericValues { .. }));
        let back = spec.to_attribute().unwrap();
        assert_eq!(back.cardinality(), 3);
        assert_eq!(back.numeric_value(2), Some(4.0));
    }
}

//! Sensitive-attribute distributions.
//!
//! [`SaDistribution`] is the `P = (p_1, …, p_m)` of the paper (Table 2): the
//! histogram of SA values over a table or an equivalence class. All privacy
//! models in the workspace (β-likeness, t-closeness, ℓ-diversity,
//! δ-disclosure) are stated in terms of such distributions.

/// A histogram over an SA domain of cardinality `m`, with cached
/// frequencies.
#[derive(Debug, Clone, PartialEq)]
pub struct SaDistribution {
    counts: Vec<u64>,
    total: u64,
    freqs: Vec<f64>,
}

impl SaDistribution {
    /// Builds a distribution from raw counts.
    pub fn from_counts(counts: Vec<u64>) -> Self {
        let total: u64 = counts.iter().sum();
        let freqs = if total == 0 {
            vec![0.0; counts.len()]
        } else {
            counts.iter().map(|&c| c as f64 / total as f64).collect()
        };
        SaDistribution {
            counts,
            total,
            freqs,
        }
    }

    /// Builds a distribution from a slice of value codes.
    pub fn from_codes(codes: &[u32], cardinality: usize) -> Self {
        Self::from_iter(codes.iter().copied(), cardinality)
    }

    /// Builds a distribution from an iterator of value codes.
    pub fn from_iter(codes: impl Iterator<Item = u32>, cardinality: usize) -> Self {
        let mut counts = vec![0u64; cardinality];
        for c in codes {
            counts[c as usize] += 1;
        }
        Self::from_counts(counts)
    }

    /// Domain cardinality `m` (including zero-count values).
    #[inline]
    pub fn m(&self) -> usize {
        self.counts.len()
    }

    /// Total number of observations.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw counts `N_i`.
    #[inline]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Count of a single value.
    #[inline]
    pub fn count(&self, v: u32) -> u64 {
        self.counts[v as usize]
    }

    /// Frequencies `p_i = N_i / |DB|`.
    #[inline]
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Frequency of a single value.
    #[inline]
    pub fn freq(&self, v: u32) -> f64 {
        self.freqs[v as usize]
    }

    /// Number of values with a non-zero count (the "distinct ℓ" of
    /// ℓ-diversity).
    pub fn support_size(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Iterator over `(value, count)` pairs with non-zero counts.
    pub fn support(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(v, &c)| (v as u32, c))
    }

    /// The maximum frequency over the domain (`max_i q_i`).
    pub fn max_freq(&self) -> f64 {
        self.freqs.iter().copied().fold(0.0, f64::max)
    }

    /// The minimum *non-zero* frequency, or `None` for an empty histogram.
    pub fn min_support_freq(&self) -> Option<f64> {
        self.freqs
            .iter()
            .copied()
            .filter(|&f| f > 0.0)
            .fold(None, |acc, f| Some(acc.map_or(f, |a: f64| a.min(f))))
    }

    /// Values sorted by ascending frequency, ties broken by value code.
    ///
    /// This is the ordering `p_1 ≤ p_2 ≤ … ≤ p_m` required by the
    /// `DPpartition` bucketizer (Section 4.3 of the paper). Zero-frequency
    /// values are *excluded*: they cannot occur in any EC.
    pub fn values_by_ascending_freq(&self) -> Vec<u32> {
        let mut vals: Vec<u32> = self.support().map(|(v, _)| v).collect();
        vals.sort_by(|&a, &b| {
            self.counts[a as usize]
                .cmp(&self.counts[b as usize])
                .then(a.cmp(&b))
        });
        vals
    }

    /// Adds another histogram into this one (EC union).
    ///
    /// # Panics
    ///
    /// Panics if the cardinalities differ.
    pub fn merge(&mut self, other: &SaDistribution) {
        assert_eq!(
            self.m(),
            other.m(),
            "cannot merge distributions over different domains"
        );
        for (c, &o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        *self = SaDistribution::from_counts(std::mem::take(&mut self.counts));
    }

    /// Entropy in nats; 0 for an empty histogram.
    pub fn entropy(&self) -> f64 {
        self.freqs
            .iter()
            .filter(|&&p| p > 0.0)
            .map(|&p| -p * p.ln())
            .sum()
    }
}

/// Splits `total` units over `weights` proportionally using the
/// largest-remainder (Hamilton) method, so that the result sums to exactly
/// `total` and each share differs from the exact proportion by less than 1.
///
/// Used by the CENSUS generator (exact SA marginals) and by proportional
/// in-bucket drawing in the SABRE baseline.
///
/// # Panics
///
/// Panics if `weights` is empty or contains a negative/non-finite weight, or
/// if all weights are zero while `total > 0`.
pub fn largest_remainder_apportion(total: u64, weights: &[f64]) -> Vec<u64> {
    assert!(
        !weights.is_empty(),
        "apportionment needs at least one weight"
    );
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let sum: f64 = weights.iter().sum();
    if total == 0 {
        return vec![0; weights.len()];
    }
    assert!(
        sum > 0.0,
        "cannot apportion {total} units over zero weights"
    );
    let mut out = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(f64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = total as f64 * w / sum;
        let fl = exact.floor() as u64;
        out.push(fl);
        assigned += fl;
        remainders.push((exact - fl as f64, i));
    }
    let mut leftover = total - assigned;
    // Hand out the leftover units to the largest remainders (ties by index
    // for determinism).
    remainders.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1.cmp(&b.1)));
    for &(_, i) in remainders.iter() {
        if leftover == 0 {
            break;
        }
        out[i] += 1;
        leftover -= 1;
    }
    debug_assert_eq!(out.iter().sum::<u64>(), total);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_freqs() {
        let d = SaDistribution::from_codes(&[0, 1, 1, 2, 2, 2], 4);
        assert_eq!(d.m(), 4);
        assert_eq!(d.total(), 6);
        assert_eq!(d.counts(), &[1, 2, 3, 0]);
        assert!((d.freq(2) - 0.5).abs() < 1e-12);
        assert_eq!(d.freq(3), 0.0);
        assert_eq!(d.support_size(), 3);
    }

    #[test]
    fn empty_histogram() {
        let d = SaDistribution::from_counts(vec![0, 0]);
        assert_eq!(d.total(), 0);
        assert_eq!(d.freqs(), &[0.0, 0.0]);
        assert_eq!(d.max_freq(), 0.0);
        assert_eq!(d.min_support_freq(), None);
        assert_eq!(d.entropy(), 0.0);
        assert!(d.values_by_ascending_freq().is_empty());
    }

    #[test]
    fn ascending_freq_order_excludes_zeros() {
        let d = SaDistribution::from_counts(vec![5, 0, 2, 2, 9]);
        assert_eq!(d.values_by_ascending_freq(), vec![2, 3, 0, 4]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = SaDistribution::from_counts(vec![1, 0, 2]);
        let b = SaDistribution::from_counts(vec![0, 3, 1]);
        a.merge(&b);
        assert_eq!(a.counts(), &[1, 3, 3]);
        assert_eq!(a.total(), 7);
        assert!((a.freq(1) - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different domains")]
    fn merge_domain_mismatch_panics() {
        let mut a = SaDistribution::from_counts(vec![1]);
        let b = SaDistribution::from_counts(vec![1, 2]);
        a.merge(&b);
    }

    #[test]
    fn entropy_uniform_is_ln_m() {
        let d = SaDistribution::from_counts(vec![3, 3, 3, 3]);
        assert!((d.entropy() - (4.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn min_support_freq() {
        let d = SaDistribution::from_counts(vec![1, 0, 99]);
        assert!((d.min_support_freq().unwrap() - 0.01).abs() < 1e-12);
        assert!((d.max_freq() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn apportion_sums_to_total() {
        let got = largest_remainder_apportion(10, &[1.0, 1.0, 1.0]);
        assert_eq!(got.iter().sum::<u64>(), 10);
        // 10/3 = 3.33 each; one value (the lowest index on ties) gets 4.
        assert_eq!(got, vec![4, 3, 3]);
    }

    #[test]
    fn apportion_exact_proportions() {
        assert_eq!(
            largest_remainder_apportion(100, &[0.5, 0.3, 0.2]),
            vec![50, 30, 20]
        );
    }

    #[test]
    fn apportion_zero_total_and_zero_weights() {
        assert_eq!(largest_remainder_apportion(0, &[0.0, 0.0]), vec![0, 0]);
        let got = largest_remainder_apportion(7, &[0.0, 2.0, 0.0]);
        assert_eq!(got, vec![0, 7, 0]);
    }

    #[test]
    fn apportion_error_below_one() {
        let weights = [0.123, 0.456, 0.789, 0.001, 0.031];
        let total = 12_345u64;
        let got = largest_remainder_apportion(total, &weights);
        let sum: f64 = weights.iter().sum();
        for (g, w) in got.iter().zip(&weights) {
            let exact = total as f64 * w / sum;
            assert!((*g as f64 - exact).abs() < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn apportion_rejects_empty() {
        largest_remainder_apportion(1, &[]);
    }
}

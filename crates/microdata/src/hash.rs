//! The workspace's stable content hash: 64-bit FNV-1a.
//!
//! Both the content-addressed publication handles of `betalike-server`
//! (`pub-…`) and the per-section checksums of the `betalike-store` binary
//! formats need a hash that is dependency-free, fast over small inputs, and
//! *stable across platforms and releases* — a durable artifact written
//! today must verify forever. FNV-1a is all three by construction.

/// 64-bit FNV-1a over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// An incremental [`fnv1a64`]: feed bytes in any chunking, `finish` yields
/// the same digest as one shot over the concatenation. Used to checksum
/// whole artifact files without buffering them twice.
#[derive(Debug, Clone)]
pub struct Fnv1a64 {
    state: u64,
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64 {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }
}

impl Fnv1a64 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Fnv1a64::default()
    }

    /// Absorbs more bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest over everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
        assert_eq!(Fnv1a64::new().finish(), fnv1a64(b""));
    }
}

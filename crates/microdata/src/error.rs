//! Error handling for the microdata substrate.

use std::fmt;

/// Convenience result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors raised while constructing or manipulating microdata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// An attribute index was out of bounds for the schema.
    AttributeOutOfBounds {
        /// The offending attribute index.
        index: usize,
        /// Number of attributes in the schema.
        len: usize,
    },
    /// A value code was outside the attribute's domain.
    ValueOutOfDomain {
        /// Attribute name.
        attribute: String,
        /// The offending code.
        code: u32,
        /// Domain cardinality.
        cardinality: usize,
    },
    /// A label could not be resolved against an attribute domain.
    UnknownLabel {
        /// Attribute name.
        attribute: String,
        /// The unresolvable label.
        label: String,
    },
    /// Row data did not match the schema arity.
    ArityMismatch {
        /// Values provided.
        got: usize,
        /// Values expected (schema arity).
        expected: usize,
    },
    /// A hierarchy specification was structurally invalid.
    InvalidHierarchy(String),
    /// A schema-level invariant was violated (e.g. empty domain).
    InvalidSchema(String),
    /// The operation needs a non-empty table.
    EmptyTable,
    /// CSV parsing failed.
    Csv(String),
    /// Underlying I/O failure (stringified to keep the error `Clone + Eq`).
    Io(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::AttributeOutOfBounds { index, len } => {
                write!(f, "attribute index {index} out of bounds (schema has {len})")
            }
            Error::ValueOutOfDomain { attribute, code, cardinality } => write!(
                f,
                "value code {code} outside domain of attribute `{attribute}` (cardinality {cardinality})"
            ),
            Error::UnknownLabel { attribute, label } => {
                write!(f, "label `{label}` not found in domain of attribute `{attribute}`")
            }
            Error::ArityMismatch { got, expected } => {
                write!(f, "row has {got} values but schema expects {expected}")
            }
            Error::InvalidHierarchy(msg) => write!(f, "invalid hierarchy: {msg}"),
            Error::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            Error::EmptyTable => write!(f, "operation requires a non-empty table"),
            Error::Csv(msg) => write!(f, "csv error: {msg}"),
            Error::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::ValueOutOfDomain {
            attribute: "Age".into(),
            code: 99,
            cardinality: 79,
        };
        let s = e.to_string();
        assert!(s.contains("Age") && s.contains("99") && s.contains("79"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(Error::EmptyTable, Error::EmptyTable);
        assert_ne!(Error::EmptyTable, Error::Csv("x".into()));
    }
}

//! Small random tables for tests, property checks and micro-benchmarks.
//!
//! Unlike [`crate::census`], these generators make no attempt at realism;
//! they let tests sweep domain shapes (uniform / Zipf-skewed SA, arbitrary
//! QI counts) quickly and deterministically.

use crate::hierarchy::Hierarchy;
use crate::schema::{Attribute, Schema};
use crate::table::Table;
use crate::Value;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Shape of the synthetic SA marginal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SaShape {
    /// All SA values equally likely.
    Uniform,
    /// Zipf-like skew with the given exponent (`s > 0`); value 0 is the most
    /// frequent.
    Zipf(f64),
}

/// Configuration for [`random_table`].
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of rows.
    pub rows: usize,
    /// Number of numeric QI attributes (each with domain `0..qi_cardinality`).
    pub qi_attrs: usize,
    /// Cardinality of every QI attribute.
    pub qi_cardinality: usize,
    /// Cardinality of the SA domain.
    pub sa_cardinality: usize,
    /// Marginal shape of the SA.
    pub sa_shape: SaShape,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            rows: 1_000,
            qi_attrs: 2,
            qi_cardinality: 32,
            sa_cardinality: 8,
            sa_shape: SaShape::Zipf(1.0),
            seed: 0,
        }
    }
}

/// Builds the schema used by [`random_table`]: `qi_attrs` numeric QIs named
/// `q0, q1, …` plus one numeric SA named `sa` (SA generalization is never
/// needed, so a numeric domain suffices).
pub fn synthetic_schema(cfg: &SyntheticConfig) -> Arc<Schema> {
    let mut attrs = Vec::with_capacity(cfg.qi_attrs + 1);
    for i in 0..cfg.qi_attrs {
        attrs.push(
            Attribute::numeric_range(format!("q{i}"), 0, cfg.qi_cardinality as i64 - 1)
                .expect("valid domain"),
        );
    }
    attrs.push(
        Attribute::numeric_range("sa", 0, cfg.sa_cardinality as i64 - 1).expect("valid domain"),
    );
    Arc::new(Schema::new(attrs, cfg.qi_attrs).expect("valid schema"))
}

/// Generates a random table per the configuration. QI values are uniform and
/// independent; the SA marginal follows `cfg.sa_shape`.
///
/// # Panics
///
/// Panics if any cardinality or the row count is zero.
pub fn random_table(cfg: &SyntheticConfig) -> Table {
    assert!(cfg.rows > 0 && cfg.qi_cardinality > 0 && cfg.sa_cardinality > 0);
    let schema = synthetic_schema(cfg);
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let weights: Vec<f64> = match cfg.sa_shape {
        SaShape::Uniform => vec![1.0; cfg.sa_cardinality],
        SaShape::Zipf(s) => (0..cfg.sa_cardinality)
            .map(|i| 1.0 / ((i + 1) as f64).powf(s))
            .collect(),
    };
    let cum: Vec<f64> = weights
        .iter()
        .scan(0.0, |acc, &w| {
            *acc += w;
            Some(*acc)
        })
        .collect();
    let total = *cum.last().expect("non-empty weights");

    let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(cfg.rows); cfg.qi_attrs + 1];
    for _ in 0..cfg.rows {
        for col in columns.iter_mut().take(cfg.qi_attrs) {
            col.push(rng.gen_range(0..cfg.qi_cardinality as u32));
        }
        let x = rng.gen::<f64>() * total;
        let sa = cum.partition_point(|&c| c < x).min(cfg.sa_cardinality - 1);
        columns[cfg.qi_attrs].push(sa as Value);
    }
    Table::from_columns(schema, columns).expect("generated columns conform to the schema")
}

/// A tiny categorical-SA table for hierarchy-aware tests: two numeric QIs
/// and an SA with a two-level hierarchy of `groups × per_group` leaves.
pub fn random_categorical_sa_table(
    rows: usize,
    groups: usize,
    per_group: usize,
    seed: u64,
) -> Table {
    use crate::hierarchy::NodeSpec;
    assert!(rows > 0 && groups > 0 && per_group > 0);
    let children = (0..groups)
        .map(|g| {
            NodeSpec::internal(
                format!("g{g}"),
                (0..per_group)
                    .map(|l| NodeSpec::leaf(format!("v{g}_{l}")))
                    .collect(),
            )
        })
        .collect();
    let h = Hierarchy::from_spec(&NodeSpec::internal("root", children)).expect("valid spec");
    let sa_card = h.num_leaves();
    let attrs = vec![
        Attribute::numeric_range("q0", 0, 63).expect("valid domain"),
        Attribute::numeric_range("q1", 0, 63).expect("valid domain"),
        Attribute::categorical("sa", h),
    ];
    let schema = Arc::new(Schema::new(attrs, 2).expect("valid schema"));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cols: Vec<Vec<Value>> = (0..3).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        cols[0].push(rng.gen_range(0..64));
        cols[1].push(rng.gen_range(0..64));
        cols[2].push(rng.gen_range(0..sa_card as u32));
    }
    Table::from_columns(schema, cols).expect("generated columns conform to the schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_determinism() {
        let cfg = SyntheticConfig {
            rows: 500,
            qi_attrs: 3,
            seed: 9,
            ..Default::default()
        };
        let a = random_table(&cfg);
        let b = random_table(&cfg);
        assert_eq!(a.num_rows(), 500);
        assert_eq!(a.schema().arity(), 4);
        assert_eq!(a.schema().default_sa(), 3);
        for i in 0..4 {
            assert_eq!(a.column(i), b.column(i));
        }
    }

    #[test]
    fn zipf_is_skewed_uniform_is_not() {
        let mut cfg = SyntheticConfig {
            rows: 20_000,
            sa_cardinality: 10,
            sa_shape: SaShape::Zipf(1.2),
            seed: 1,
            ..Default::default()
        };
        let z = random_table(&cfg).sa_distribution(2);
        assert!(z.freq(0) > 2.0 * z.freq(5), "zipf head should dominate");
        cfg.sa_shape = SaShape::Uniform;
        let u = random_table(&cfg).sa_distribution(2);
        for v in 0..10u32 {
            assert!((u.freq(v) - 0.1).abs() < 0.02);
        }
    }

    #[test]
    fn categorical_sa_table_has_hierarchy() {
        let t = random_categorical_sa_table(200, 3, 4, 2);
        let h = t.schema().attr(2).hierarchy().unwrap();
        assert_eq!(h.num_leaves(), 12);
        assert_eq!(h.height(), 2);
        assert_eq!(t.num_rows(), 200);
    }
}

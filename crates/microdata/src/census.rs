//! Synthetic CENSUS dataset reproducing Table 3 of the paper.
//!
//! The paper evaluates on an IPUMS CENSUS extract of 500 000 tuples over six
//! attributes. That extract is not redistributable, so this module generates
//! a synthetic table with the **same schema** (names, types, cardinalities
//! and hierarchy heights as in Table 3) and the **same sensitive-value
//! frequency profile**: the least frequent salary class has frequency
//! ≈ 0.2018 % and the most frequent ≈ 4.8402 %, exactly the extremes the
//! paper reports for its dataset.
//!
//! | Attribute       | Cardinality | Type                    |
//! |-----------------|-------------|-------------------------|
//! | Age             | 79          | numerical               |
//! | Gender          | 2           | categorical (height 1)  |
//! | Education Level | 17          | numerical               |
//! | Marital Status  | 6           | categorical (height 2)  |
//! | Work Class      | 10          | categorical (height 3)  |
//! | Salary Class    | 50          | sensitive attribute     |
//!
//! Salary is *rank-coupled* to a latent score of age, education and work
//! class, so QI↔SA correlation exists (required for the aggregation-query
//! and Naïve-Bayes experiments to be meaningful), while its marginal is
//! matched to the target profile exactly via largest-remainder apportionment.
//!
//! Generation is fully deterministic given the seed.

use crate::distribution::largest_remainder_apportion;
use crate::hierarchy::{Hierarchy, NodeSpec};
use crate::schema::{Attribute, Schema};
use crate::table::Table;
use crate::Value;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Attribute indices of the CENSUS schema, in Table 3 order.
pub mod attr {
    /// Age (numeric, 79 values: 16..=94).
    pub const AGE: usize = 0;
    /// Gender (categorical, height-1 hierarchy).
    pub const GENDER: usize = 1;
    /// Education level (numeric, 17 values: 1..=17).
    pub const EDUCATION: usize = 2;
    /// Marital status (categorical, height-2 hierarchy, 6 leaves).
    pub const MARITAL: usize = 3;
    /// Work class (categorical, height-3 hierarchy, 10 leaves).
    pub const WORK_CLASS: usize = 4;
    /// Salary class (the sensitive attribute, 50 classes).
    pub const SALARY: usize = 5;
}

/// Number of salary classes (SA domain size in Table 3).
pub const SALARY_CLASSES: usize = 50;

/// Frequency of the least frequent salary class in the paper's dataset.
pub const MIN_SALARY_FREQ: f64 = 0.002018;

/// Frequency of the most frequent salary class in the paper's dataset.
pub const MAX_SALARY_FREQ: f64 = 0.048402;

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct CensusConfig {
    /// Number of tuples (the paper uses 100K–500K; default 500K).
    pub rows: usize,
    /// RNG seed; identical seeds produce identical tables.
    pub seed: u64,
    /// Fraction of tuples whose salary class is rank-coupled to the latent
    /// QI score; the rest draw independently from the marginal.
    ///
    /// Real census data shifts the salary distribution *regionally* while
    /// every class stays present everywhere; a pure rank coupling instead
    /// makes extreme classes locally exclusive, which no real population
    /// exhibits. The mixture bounds each class's local density below by
    /// `(1 − corr_mix) · p` while keeping strong aggregate correlation
    /// (default 0.5).
    pub corr_mix: f64,
}

impl Default for CensusConfig {
    fn default() -> Self {
        CensusConfig {
            rows: 500_000,
            seed: 42,
            corr_mix: 0.8,
        }
    }
}

impl CensusConfig {
    /// Convenience constructor with the default correlation mixture.
    pub fn new(rows: usize, seed: u64) -> Self {
        CensusConfig {
            rows,
            seed,
            ..Default::default()
        }
    }
}

fn marital_hierarchy() -> Hierarchy {
    Hierarchy::from_spec(&NodeSpec::internal(
        "any marital status",
        vec![
            NodeSpec::internal(
                "partnered",
                vec![NodeSpec::leaf("married"), NodeSpec::leaf("separated")],
            ),
            NodeSpec::internal(
                "formerly married",
                vec![NodeSpec::leaf("widowed"), NodeSpec::leaf("divorced")],
            ),
            NodeSpec::internal(
                "single",
                vec![
                    NodeSpec::leaf("never married"),
                    NodeSpec::leaf("domestic partner"),
                ],
            ),
        ],
    ))
    .expect("static hierarchy is valid")
}

fn work_class_hierarchy() -> Hierarchy {
    Hierarchy::from_spec(&NodeSpec::internal(
        "any work class",
        vec![
            NodeSpec::internal(
                "employed",
                vec![
                    NodeSpec::internal(
                        "private",
                        vec![
                            NodeSpec::leaf("private for-profit"),
                            NodeSpec::leaf("private non-profit"),
                        ],
                    ),
                    NodeSpec::internal(
                        "government",
                        vec![
                            NodeSpec::leaf("federal"),
                            NodeSpec::leaf("state"),
                            NodeSpec::leaf("local"),
                        ],
                    ),
                ],
            ),
            NodeSpec::internal(
                "self-employed",
                vec![NodeSpec::internal(
                    "own business",
                    vec![
                        NodeSpec::leaf("incorporated"),
                        NodeSpec::leaf("unincorporated"),
                    ],
                )],
            ),
            NodeSpec::internal(
                "not working",
                vec![
                    NodeSpec::internal(
                        "jobless",
                        vec![NodeSpec::leaf("unemployed"), NodeSpec::leaf("never worked")],
                    ),
                    NodeSpec::internal("service", vec![NodeSpec::leaf("military")]),
                ],
            ),
        ],
    ))
    .expect("static hierarchy is valid")
}

/// The CENSUS schema of Table 3 (salary class is the default SA).
pub fn census_schema() -> Arc<Schema> {
    let age = Attribute::numeric_range("Age", 16, 94).expect("static domain");
    let gender = Attribute::categorical(
        "Gender",
        Hierarchy::flat("person", &["male", "female"]).expect("static hierarchy"),
    );
    let education = Attribute::numeric_range("Education", 1, 17).expect("static domain");
    let marital = Attribute::categorical("Marital", marital_hierarchy());
    let work = Attribute::categorical("WorkClass", work_class_hierarchy());
    let salary =
        Attribute::numeric_range("SalaryClass", 0, SALARY_CLASSES as i64 - 1).expect("static");
    Arc::new(
        Schema::new(
            vec![age, gender, education, marital, work, salary],
            attr::SALARY,
        )
        .expect("static schema is valid"),
    )
}

/// Target marginal for the salary class: a discretized Gaussian bell with an
/// additive floor, calibrated so that the minimum frequency is
/// [`MIN_SALARY_FREQ`] and the maximum is [`MAX_SALARY_FREQ`].
pub fn target_salary_marginal() -> Vec<f64> {
    let m = SALARY_CLASSES;
    let center = (m as f64 - 1.0) / 2.0;

    // For a fixed Gaussian width, the floor `c` and normalizer `S` are pinned
    // by the min/max frequency constraints:
    //   (u_max + c)/S = MAX_SALARY_FREQ,  (u_min + c)/S = MIN_SALARY_FREQ.
    // The remaining constraint, Σ f_i = 1, is solved for the width by
    // bisection (the sum is monotone increasing in sigma).
    let eval = |sigma: f64| -> (Vec<f64>, f64) {
        let shape: Vec<f64> = (0..m)
            .map(|i| (-0.5 * ((i as f64 - center) / sigma).powi(2)).exp())
            .collect();
        let u_max = shape.iter().copied().fold(f64::MIN, f64::max);
        let u_min = shape.iter().copied().fold(f64::MAX, f64::min);
        let s = (u_max - u_min) / (MAX_SALARY_FREQ - MIN_SALARY_FREQ);
        let c = MAX_SALARY_FREQ * s - u_max;
        let freqs: Vec<f64> = shape.iter().map(|&u| (u + c) / s).collect();
        let sum: f64 = freqs.iter().sum();
        (freqs, sum)
    };

    let (mut lo, mut hi) = (3.0f64, 20.0f64);
    debug_assert!(eval(lo).1 < 1.0 && eval(hi).1 > 1.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if eval(mid).1 < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (freqs, sum) = eval(0.5 * (lo + hi));
    debug_assert!((sum - 1.0).abs() < 1e-9);
    debug_assert!(freqs.iter().all(|&f| f >= MIN_SALARY_FREQ - 1e-9));
    freqs
}

/// Standard normal sample via Box–Muller.
fn randn(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples an index proportionally to `weights` (need not be normalized).
fn sample_weighted(rng: &mut ChaCha8Rng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        x -= w;
        if x <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// Marital-status weights per age, in leaf order
/// (married, separated, widowed, divorced, never married, domestic partner).
fn marital_weights(age: u32) -> [f64; 6] {
    match age {
        0..=21 => [0.05, 0.01, 0.005, 0.01, 0.90, 0.025],
        22..=34 => [0.45, 0.03, 0.01, 0.06, 0.35, 0.10],
        35..=59 => [0.60, 0.04, 0.04, 0.14, 0.10, 0.08],
        _ => [0.55, 0.02, 0.25, 0.10, 0.04, 0.04],
    }
}

/// Work-class weights per (age, education), in leaf order.
fn work_class_weights(age: u32, edu: u32) -> [f64; 10] {
    let mut w: [f64; 10] = [0.40, 0.08, 0.04, 0.06, 0.08, 0.04, 0.08, 0.12, 0.06, 0.04];
    if age < 22 {
        w[7] += 0.15; // unemployed
        w[8] += 0.25; // never worked
        w[0] -= 0.20;
    }
    if age > 65 {
        w[7] += 0.20;
        w[0] -= 0.15;
    }
    if edu >= 14 {
        w[2] += 0.06; // federal
        w[5] += 0.08; // incorporated self-employment
        w[8] = (w[8] - 0.04).max(0.005);
    }
    for x in &mut w {
        *x = x.max(0.005);
    }
    w
}

/// Deterministic per-cell jitter in roughly `[-1, 1]` (triangular), keyed
/// by the generator seed and the demographic cell. Splitmix64 finalizer.
fn cell_jitter(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9E3779B97F4A7C15)
        .wrapping_add(a.wrapping_mul(0xBF58476D1CE4E5B9))
        .wrapping_add(b.wrapping_mul(0x94D049BB133111EB))
        .wrapping_add(c.wrapping_mul(0xD6E8FEB86659FD93));
    let mut next = || {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        (z ^ (z >> 31)) as f64 / u64::MAX as f64
    };
    next() + next() - 1.0
}

/// Latent salary score; salary classes are assigned by the rank of this
/// score among the coupled rows, so the mapping is monotone in the score
/// while the marginal stays fixed.
///
/// The dominant noise term is **per demographic cell** (age band ×
/// education × work class), not per row: in real census microdata, people
/// sharing a cell cluster on the same few salary classes. This cell-level
/// clumpiness is what makes locality-driven partitioners (Mondrian) collide
/// with distribution constraints — the effect the paper's Figures 5–8
/// measure — while BUREL, which assembles ECs by composition, is
/// unaffected.
fn salary_score(rng: &mut ChaCha8Rng, seed: u64, age: u32, edu: u32, work: usize) -> f64 {
    // Cell-keyed, *level-quantized* jitter: every fine demographic cell
    // (age six-band x education x work class) is assigned one of five
    // salary levels, mimicking occupation-driven salary bands. Because the
    // level of a cell is (pseudo-)independent of its neighbours, the same
    // few levels dominate every QI neighbourhood while no axis-aligned cut
    // can isolate them - the local skew that blocks Mondrian-style
    // partitioners on real census data (Figures 5-8 of the paper) without
    // introducing macro-scale distribution drift.
    const SECTOR_EFFECT: [f64; 3] = [0.35, 0.60, -1.50];
    let sector = match work {
        0..=4 => 0usize,
        5 | 6 => 1,
        _ => 2,
    };
    let edu_score = (edu as f64 - 9.0) / 4.0;
    let age_score = 1.0 - ((age as f64 - 52.0) / 20.0).powi(2);
    let raw = cell_jitter(seed, (age / 6) as u64, edu as u64, work as u64);
    let level = (raw * 2.0).round() / 2.0; // five levels in {-1,...,1}
    0.45 * edu_score
        + 0.3 * age_score
        + 0.4 * SECTOR_EFFECT[sector]
        + 1.1 * level
        + 0.15 * randn(rng)
}

/// Generates a CENSUS table per the module docs.
///
/// # Panics
///
/// Panics if `cfg.rows == 0`.
pub fn generate(cfg: &CensusConfig) -> Table {
    assert!(cfg.rows > 0, "cannot generate an empty CENSUS table");
    let schema = census_schema();
    let n = cfg.rows;
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);

    let mut age_col = Vec::with_capacity(n);
    let mut gender_col = Vec::with_capacity(n);
    let mut edu_col = Vec::with_capacity(n);
    let mut marital_col = Vec::with_capacity(n);
    let mut work_col = Vec::with_capacity(n);
    let mut scores = Vec::with_capacity(n);

    for _ in 0..n {
        let age = (40.0 + 15.0 * randn(&mut rng)).round().clamp(16.0, 94.0) as u32;
        let gender = u32::from(rng.gen_bool(0.5));
        let edu_mu = 6.0 + 8.0 * (((age as f64 - 16.0) / 30.0).clamp(0.0, 1.0));
        let edu = (edu_mu + 3.0 * randn(&mut rng)).round().clamp(1.0, 17.0) as u32;
        let marital = sample_weighted(&mut rng, &marital_weights(age)) as Value;
        let work = sample_weighted(&mut rng, &work_class_weights(age, edu));
        scores.push(salary_score(&mut rng, cfg.seed, age, edu, work));
        age_col.push(age - 16);
        gender_col.push(gender);
        edu_col.push(edu - 1);
        marital_col.push(marital);
        work_col.push(work as Value);
    }

    // Salary assignment: an exact-marginal mixture of a rank coupling (the
    // `corr_mix` fraction of rows, sorted by latent score) and independent
    // draws (the rest, a random permutation of the leftover class
    // multiset). See `CensusConfig::corr_mix`.
    let marginal = target_salary_marginal();
    let counts = largest_remainder_apportion(n as u64, &marginal);
    let mix = cfg.corr_mix.clamp(0.0, 1.0);

    // Membership: an exact-count random subset of rows is coupled.
    let coupled_target = (n as f64 * mix).round() as usize;
    let mut membership: Vec<usize> = (0..n).collect();
    membership.shuffle(&mut rng);
    let mut is_coupled = vec![false; n];
    for &r in membership.iter().take(coupled_target) {
        is_coupled[r] = true;
    }

    // Split each class's count between the groups, clamping so neither
    // group is over-assigned, then repair any deficit greedily.
    let mut coupled_counts = largest_remainder_apportion(coupled_target as u64, &marginal);
    for (c, count) in coupled_counts.iter_mut().enumerate() {
        *count = (*count).min(counts[c]);
    }
    let mut deficit = coupled_target as u64 - coupled_counts.iter().sum::<u64>();
    while deficit > 0 {
        let (best, _) = counts
            .iter()
            .zip(&coupled_counts)
            .enumerate()
            .map(|(c, (&tot, &cp))| (c, tot - cp))
            .max_by_key(|&(_, spare)| spare)
            .expect("non-empty domain");
        coupled_counts[best] += 1;
        deficit -= 1;
    }

    let mut salary_col = vec![0 as Value; n];
    // Coupled rows: ascending latent score -> ascending salary class.
    let mut coupled_rows: Vec<usize> = (0..n).filter(|&r| is_coupled[r]).collect();
    coupled_rows.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]).then(a.cmp(&b)));
    let mut cursor = 0usize;
    for (class, &count) in coupled_counts.iter().enumerate() {
        for _ in 0..count {
            salary_col[coupled_rows[cursor]] = class as Value;
            cursor += 1;
        }
    }
    debug_assert_eq!(cursor, coupled_rows.len());

    // Independent rows: a seeded random permutation of the leftover
    // multiset.
    let mut leftover: Vec<Value> = Vec::with_capacity(n - coupled_rows.len());
    for (class, (&total, &coupled)) in counts.iter().zip(&coupled_counts).enumerate() {
        for _ in 0..(total - coupled) {
            leftover.push(class as Value);
        }
    }
    leftover.shuffle(&mut rng);
    let mut li = 0usize;
    for (r, flag) in is_coupled.iter().enumerate() {
        if !flag {
            salary_col[r] = leftover[li];
            li += 1;
        }
    }
    debug_assert_eq!(li, leftover.len());

    Table::from_columns(
        schema,
        vec![
            age_col,
            gender_col,
            edu_col,
            marital_col,
            work_col,
            salary_col,
        ],
    )
    .expect("generated columns conform to the schema")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_table3() {
        let s = census_schema();
        assert_eq!(s.arity(), 6);
        let cards = [79, 2, 17, 6, 10, 50];
        for (i, &c) in cards.iter().enumerate() {
            assert_eq!(s.attr(i).cardinality(), c, "attribute {i}");
        }
        assert_eq!(s.attr(attr::GENDER).hierarchy().unwrap().height(), 1);
        assert_eq!(s.attr(attr::MARITAL).hierarchy().unwrap().height(), 2);
        assert_eq!(s.attr(attr::WORK_CLASS).hierarchy().unwrap().height(), 3);
        assert_eq!(s.default_sa(), attr::SALARY);
        assert!(s.attr(attr::AGE).is_numeric());
        assert!(s.attr(attr::EDUCATION).is_numeric());
    }

    #[test]
    fn marginal_calibrated_to_paper_extremes() {
        let m = target_salary_marginal();
        assert_eq!(m.len(), SALARY_CLASSES);
        let sum: f64 = m.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "marginal sums to {sum}");
        let max = m.iter().copied().fold(f64::MIN, f64::max);
        let min = m.iter().copied().fold(f64::MAX, f64::min);
        assert!((max - MAX_SALARY_FREQ).abs() < 1e-9);
        assert!((min - MIN_SALARY_FREQ).abs() < 1e-9);
    }

    /// Generation is a pure function of (rows, seed): the same config yields
    /// byte-identical columns, and a different seed yields different data.
    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(&CensusConfig::new(2_000, 42));
        let b = generate(&CensusConfig::new(2_000, 42));
        let c = generate(&CensusConfig::new(2_000, 43));
        assert_eq!(a.num_rows(), 2_000);
        for i in 0..a.schema().arity() {
            assert_eq!(a.column(i), b.column(i), "column {i} differs across runs");
        }
        assert!(
            (0..a.schema().arity()).any(|i| a.column(i) != c.column(i)),
            "different seeds must produce different tables"
        );
    }

    #[test]
    fn generated_marginal_matches_target() {
        let t = generate(&CensusConfig::new(50_000, 7));
        let d = t.sa_distribution(attr::SALARY);
        assert_eq!(d.support_size(), SALARY_CLASSES, "all classes occur");
        let target = target_salary_marginal();
        for (i, &p) in target.iter().enumerate() {
            let got = d.freq(i as u32);
            assert!(
                (got - p).abs() < 1.0 / 50_000.0 + 1e-9,
                "class {i}: got {got}, want {p}"
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&CensusConfig::new(2_000, 5));
        let b = generate(&CensusConfig::new(2_000, 5));
        let c = generate(&CensusConfig::new(2_000, 6));
        for attr_ix in 0..6 {
            assert_eq!(a.column(attr_ix), b.column(attr_ix));
        }
        assert!((0..6).any(|i| a.column(i) != c.column(i)));
    }

    #[test]
    fn salary_correlates_with_education() {
        let t = generate(&CensusConfig::new(20_000, 11));
        let edu = t.column(attr::EDUCATION);
        let sal = t.column(attr::SALARY);
        let mut hi_sum = 0.0;
        let mut hi_n = 0.0;
        let mut lo_sum = 0.0;
        let mut lo_n = 0.0;
        for (&e, &s) in edu.iter().zip(sal) {
            if e >= 12 {
                hi_sum += s as f64;
                hi_n += 1.0;
            } else if e <= 4 {
                lo_sum += s as f64;
                lo_n += 1.0;
            }
        }
        assert!(hi_n > 100.0 && lo_n > 100.0);
        assert!(
            hi_sum / hi_n > lo_sum / lo_n + 3.0,
            "education must push salary class up (hi {}, lo {})",
            hi_sum / hi_n,
            lo_sum / lo_n
        );
    }

    #[test]
    fn values_stay_in_domain() {
        let t = generate(&CensusConfig::new(5_000, 3));
        for a in 0..6 {
            let card = t.schema().attr(a).cardinality() as u32;
            assert!(t.column(a).iter().all(|&v| v < card));
        }
    }
}

//! Generalization hierarchies for categorical attributes.
//!
//! A hierarchy is a rooted tree whose leaves are the attribute's domain
//! values (Figure 1 of the paper shows the disease hierarchy). Generalization
//! replaces a set of leaf values by their lowest common ancestor (LCA); the
//! information loss of that replacement is `|leaves(a)| / |leaves(H)|`
//! (Equation 3 of the paper).
//!
//! The tree is stored flattened in **pre-order**, which yields two useful
//! properties exploited throughout the workspace:
//!
//! 1. Leaf codes `0..num_leaves()` enumerate leaves left-to-right, so each
//!    node covers a *contiguous* leaf-code range `[leaf_lo, leaf_hi]`.
//! 2. The LCA of any set of leaves equals the LCA of the minimum and maximum
//!    leaf codes in the set, computable in O(height) by walking parents.

use crate::error::{Error, Result};
use std::fmt;

/// Index of a node inside a [`Hierarchy`] (pre-order position; 0 = root).
pub type NodeId = usize;

/// Declarative specification of a hierarchy, consumed by
/// [`Hierarchy::from_spec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeSpec {
    /// A leaf node carrying a domain value label.
    Leaf(String),
    /// An internal node with a label and at least one child.
    Internal(String, Vec<NodeSpec>),
}

impl NodeSpec {
    /// Convenience constructor for a leaf.
    pub fn leaf(label: impl Into<String>) -> Self {
        NodeSpec::Leaf(label.into())
    }

    /// Convenience constructor for an internal node.
    pub fn internal(label: impl Into<String>, children: Vec<NodeSpec>) -> Self {
        NodeSpec::Internal(label.into(), children)
    }
}

/// A generalization hierarchy over a categorical domain.
///
/// Immutable after construction. See the module docs for the storage scheme.
#[derive(Debug, Clone, PartialEq)]
pub struct Hierarchy {
    /// Node labels in pre-order.
    labels: Vec<String>,
    /// Parent of each node (`usize::MAX` for the root).
    parent: Vec<usize>,
    /// Depth of each node (root = 0).
    depth: Vec<u32>,
    /// Inclusive leaf-code range covered by each node.
    leaf_lo: Vec<u32>,
    leaf_hi: Vec<u32>,
    /// Leaf code -> node id.
    leaf_nodes: Vec<NodeId>,
    /// Maximum depth of any leaf (the hierarchy "height" as in Table 3).
    height: u32,
}

impl Hierarchy {
    /// Builds a hierarchy from a declarative [`NodeSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidHierarchy`] if the root is a leaf with no
    /// siblings making the domain empty, if an internal node has no children,
    /// or if two leaves share a label.
    pub fn from_spec(spec: &NodeSpec) -> Result<Self> {
        let mut h = Hierarchy {
            labels: Vec::new(),
            parent: Vec::new(),
            depth: Vec::new(),
            leaf_lo: Vec::new(),
            leaf_hi: Vec::new(),
            leaf_nodes: Vec::new(),
            height: 0,
        };
        h.push_subtree(spec, usize::MAX, 0)?;
        if h.leaf_nodes.is_empty() {
            return Err(Error::InvalidHierarchy("hierarchy has no leaves".into()));
        }
        let mut seen = std::collections::BTreeSet::new();
        for &node in &h.leaf_nodes {
            if !seen.insert(h.labels[node].clone()) {
                return Err(Error::InvalidHierarchy(format!(
                    "duplicate leaf label `{}`",
                    h.labels[node]
                )));
            }
        }
        Ok(h)
    }

    /// Builds a flat hierarchy of height 1: a root with one leaf per label.
    ///
    /// This is the natural hierarchy for categorical attributes without
    /// domain semantics (e.g. *gender* in Table 3 of the paper).
    pub fn flat(root_label: impl Into<String>, leaf_labels: &[&str]) -> Result<Self> {
        let children = leaf_labels.iter().map(|l| NodeSpec::leaf(*l)).collect();
        Hierarchy::from_spec(&NodeSpec::internal(root_label, children))
    }

    fn push_subtree(&mut self, spec: &NodeSpec, parent: usize, depth: u32) -> Result<NodeId> {
        let id = self.labels.len();
        match spec {
            NodeSpec::Leaf(label) => {
                self.labels.push(label.clone());
                self.parent.push(parent);
                self.depth.push(depth);
                let code = self.leaf_nodes.len() as u32;
                self.leaf_lo.push(code);
                self.leaf_hi.push(code);
                self.leaf_nodes.push(id);
                self.height = self.height.max(depth);
            }
            NodeSpec::Internal(label, children) => {
                if children.is_empty() {
                    return Err(Error::InvalidHierarchy(format!(
                        "internal node `{label}` has no children"
                    )));
                }
                self.labels.push(label.clone());
                self.parent.push(parent);
                self.depth.push(depth);
                // Placeholders patched after the children are laid out.
                self.leaf_lo.push(u32::MAX);
                self.leaf_hi.push(0);
                for child in children {
                    self.push_subtree(child, id, depth + 1)?;
                }
                let lo = self.leaf_lo[id + 1..]
                    .iter()
                    .zip(&self.parent[id + 1..])
                    .filter(|&(_, &p)| p == id)
                    .map(|(&l, _)| l)
                    .min()
                    .unwrap_or(u32::MAX);
                // Children already carry correct ranges; this node covers the
                // union, which in pre-order is simply [first child's lo, last
                // child's hi].
                let _ = lo;
                self.leaf_lo[id] = self.leaf_lo[id + 1];
                self.leaf_hi[id] = *self.leaf_hi.last().expect("children exist");
            }
        }
        Ok(id)
    }

    /// Number of leaves, i.e. the cardinality of the attribute domain.
    #[inline]
    pub fn num_leaves(&self) -> usize {
        self.leaf_nodes.len()
    }

    /// Number of nodes (internal + leaves).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.labels.len()
    }

    /// Maximum leaf depth — the hierarchy "height" reported in Table 3.
    #[inline]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Node id of the root (always 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        0
    }

    /// The node storing a leaf code.
    ///
    /// # Panics
    ///
    /// Panics if `code` is outside the domain.
    #[inline]
    pub fn leaf_node(&self, code: u32) -> NodeId {
        self.leaf_nodes[code as usize]
    }

    /// Label of a node.
    #[inline]
    pub fn label(&self, node: NodeId) -> &str {
        &self.labels[node]
    }

    /// Label of a leaf code.
    #[inline]
    pub fn leaf_label(&self, code: u32) -> &str {
        self.label(self.leaf_node(code))
    }

    /// Resolves a leaf label to its code, if present.
    pub fn leaf_code(&self, label: &str) -> Option<u32> {
        self.leaf_nodes
            .iter()
            .position(|&n| self.labels[n] == label)
            .map(|c| c as u32)
    }

    /// Depth of a node (root = 0).
    #[inline]
    pub fn node_depth(&self, node: NodeId) -> u32 {
        self.depth[node]
    }

    /// Parent of a node, or `None` for the root.
    #[inline]
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let p = self.parent[node];
        (p != usize::MAX).then_some(p)
    }

    /// Whether the node is a leaf.
    #[inline]
    pub fn is_leaf(&self, node: NodeId) -> bool {
        self.leaf_lo[node] == self.leaf_hi[node]
            && self.leaf_nodes[self.leaf_lo[node] as usize] == node
    }

    /// Number of leaves under a node (`|leaves(a)|` in Equation 3).
    #[inline]
    pub fn leaves_under(&self, node: NodeId) -> usize {
        (self.leaf_hi[node] - self.leaf_lo[node] + 1) as usize
    }

    /// Inclusive leaf-code range covered by a node.
    #[inline]
    pub fn leaf_range(&self, node: NodeId) -> (u32, u32) {
        (self.leaf_lo[node], self.leaf_hi[node])
    }

    /// Lowest common ancestor of two leaf codes.
    ///
    /// Because the set of leaves between `lo` and `hi` in pre-order is
    /// exactly the set of leaves under `lca(lo, hi)`, this is also the LCA of
    /// *any* leaf set with these extremes — the workhorse of Equation 3.
    ///
    /// # Panics
    ///
    /// Panics if either code is outside the domain.
    pub fn lca_of_leaves(&self, a: u32, b: u32) -> NodeId {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut node = self.leaf_node(lo);
        while self.leaf_hi[node] < hi {
            node = self.parent[node];
            debug_assert_ne!(node, usize::MAX, "root covers all leaves");
        }
        node
    }

    /// Information loss of generalizing the leaf-code range `[lo, hi]` to its
    /// LCA, per Equation 3 of the paper: 0 if a single leaf, otherwise
    /// `|leaves(lca)| / |leaves(H)|`.
    pub fn range_loss(&self, lo: u32, hi: u32) -> f64 {
        let lca = self.lca_of_leaves(lo, hi);
        let covered = self.leaves_under(lca);
        if covered == 1 {
            0.0
        } else {
            covered as f64 / self.num_leaves() as f64
        }
    }

    /// All ancestors of a node from its parent up to the root.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.depth[node] as usize);
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Iterator over leaf codes `0..num_leaves()`.
    pub fn leaf_codes(&self) -> impl Iterator<Item = u32> {
        0..self.num_leaves() as u32
    }
}

impl fmt::Display for Hierarchy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for node in 0..self.num_nodes() {
            let indent = "  ".repeat(self.depth[node] as usize);
            let marker = if self.is_leaf(node) { "-" } else { "+" };
            writeln!(f, "{indent}{marker} {}", self.labels[node])?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The disease hierarchy of Figure 1 in the paper.
    fn diseases() -> Hierarchy {
        Hierarchy::from_spec(&NodeSpec::internal(
            "nervous and circulatory diseases",
            vec![
                NodeSpec::internal(
                    "nervous diseases",
                    vec![
                        NodeSpec::leaf("headache"),
                        NodeSpec::leaf("epilepsy"),
                        NodeSpec::leaf("brain tumors"),
                    ],
                ),
                NodeSpec::internal(
                    "circulatory diseases",
                    vec![
                        NodeSpec::leaf("anemia"),
                        NodeSpec::leaf("angina"),
                        NodeSpec::leaf("heart murmur"),
                    ],
                ),
            ],
        ))
        .unwrap()
    }

    #[test]
    fn figure1_structure() {
        let h = diseases();
        assert_eq!(h.num_leaves(), 6);
        assert_eq!(h.num_nodes(), 9);
        assert_eq!(h.height(), 2);
        assert_eq!(h.leaf_label(0), "headache");
        assert_eq!(h.leaf_label(5), "heart murmur");
        assert_eq!(h.leaf_code("angina"), Some(4));
        assert_eq!(h.leaf_code("flu"), None);
    }

    #[test]
    fn lca_within_subtree() {
        let h = diseases();
        // headache(0) and brain tumors(2) meet at "nervous diseases".
        let lca = h.lca_of_leaves(0, 2);
        assert_eq!(h.label(lca), "nervous diseases");
        assert_eq!(h.leaves_under(lca), 3);
    }

    #[test]
    fn lca_across_subtrees_is_root() {
        let h = diseases();
        let lca = h.lca_of_leaves(2, 3);
        assert_eq!(lca, h.root());
        assert_eq!(h.leaves_under(lca), 6);
    }

    #[test]
    fn lca_is_symmetric_and_idempotent() {
        let h = diseases();
        assert_eq!(h.lca_of_leaves(1, 4), h.lca_of_leaves(4, 1));
        let leaf = h.lca_of_leaves(3, 3);
        assert!(h.is_leaf(leaf));
        assert_eq!(h.label(leaf), "anemia");
    }

    #[test]
    fn range_loss_matches_equation3() {
        let h = diseases();
        // Single value: zero loss.
        assert_eq!(h.range_loss(2, 2), 0.0);
        // Within "nervous diseases": 3/6.
        assert!((h.range_loss(0, 2) - 0.5).abs() < 1e-12);
        // Across the root: 6/6 = 1.
        assert!((h.range_loss(0, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat("person", &["male", "female"]).unwrap();
        assert_eq!(h.height(), 1);
        assert_eq!(h.num_leaves(), 2);
        assert_eq!(h.lca_of_leaves(0, 1), h.root());
        // Generalizing both genders covers the whole domain.
        assert!((h.range_loss(0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_internal() {
        let bad = NodeSpec::internal("root", vec![NodeSpec::internal("empty", vec![])]);
        assert!(matches!(
            Hierarchy::from_spec(&bad),
            Err(Error::InvalidHierarchy(_))
        ));
    }

    #[test]
    fn rejects_duplicate_leaves() {
        let bad = NodeSpec::internal("root", vec![NodeSpec::leaf("x"), NodeSpec::leaf("x")]);
        assert!(matches!(
            Hierarchy::from_spec(&bad),
            Err(Error::InvalidHierarchy(_))
        ));
    }

    #[test]
    fn single_leaf_domain() {
        let h = Hierarchy::from_spec(&NodeSpec::internal("root", vec![NodeSpec::leaf("only")]))
            .unwrap();
        assert_eq!(h.num_leaves(), 1);
        assert_eq!(h.range_loss(0, 0), 0.0);
    }

    #[test]
    fn ancestors_walk_to_root() {
        let h = diseases();
        let leaf = h.leaf_node(4); // angina
        let anc = h.ancestors(leaf);
        assert_eq!(anc.len(), 2);
        assert_eq!(h.label(anc[0]), "circulatory diseases");
        assert_eq!(anc[1], h.root());
        assert!(h.ancestors(h.root()).is_empty());
    }

    #[test]
    fn display_renders_tree() {
        let h = diseases();
        let s = h.to_string();
        assert!(s.contains("+ nervous diseases"));
        assert!(s.contains("- angina"));
    }

    #[test]
    fn deep_unbalanced_hierarchy() {
        // root -> a -> b -> leaf1 ; root -> leaf2
        let h = Hierarchy::from_spec(&NodeSpec::internal(
            "root",
            vec![
                NodeSpec::internal(
                    "a",
                    vec![NodeSpec::internal("b", vec![NodeSpec::leaf("l1")])],
                ),
                NodeSpec::leaf("l2"),
            ],
        ))
        .unwrap();
        assert_eq!(h.height(), 3);
        assert_eq!(h.num_leaves(), 2);
        assert_eq!(h.lca_of_leaves(0, 1), h.root());
        assert_eq!(h.node_depth(h.leaf_node(0)), 3);
        assert_eq!(h.node_depth(h.leaf_node(1)), 1);
    }
}

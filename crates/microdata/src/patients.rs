//! The running example of the paper: Table 1 (six patient records) with the
//! disease hierarchy of Figure 1.
//!
//! Used by unit tests, the `model_tour` example, and the documentation; it is
//! small enough to verify the paper's worked examples by hand (Examples 1
//! and 2, the similarity-attack discussion in Section 2).

use crate::hierarchy::{Hierarchy, NodeSpec};
use crate::schema::{Attribute, Schema};
use crate::table::Table;
use std::sync::Arc;

/// Attribute indices of the patients schema.
pub mod attr {
    /// Weight (numeric).
    pub const WEIGHT: usize = 0;
    /// Age (numeric).
    pub const AGE: usize = 1;
    /// Disease — the sensitive attribute.
    pub const DISEASE: usize = 2;
}

/// The disease generalization hierarchy of Figure 1.
///
/// ```text
/// nervous and circulatory diseases
/// ├── nervous diseases:     headache, epilepsy, brain tumors
/// └── circulatory diseases: anemia, angina, heart murmur
/// ```
pub fn disease_hierarchy() -> Hierarchy {
    Hierarchy::from_spec(&NodeSpec::internal(
        "nervous and circulatory diseases",
        vec![
            NodeSpec::internal(
                "nervous diseases",
                vec![
                    NodeSpec::leaf("headache"),
                    NodeSpec::leaf("epilepsy"),
                    NodeSpec::leaf("brain tumors"),
                ],
            ),
            NodeSpec::internal(
                "circulatory diseases",
                vec![
                    NodeSpec::leaf("anemia"),
                    NodeSpec::leaf("angina"),
                    NodeSpec::leaf("heart murmur"),
                ],
            ),
        ],
    ))
    .expect("static hierarchy is valid")
}

/// Schema of Table 1: QI = {weight, age}, SA = disease.
pub fn patients_schema() -> Arc<Schema> {
    let weight = Attribute::numeric_range("Weight", 50, 80).expect("static domain");
    let age = Attribute::numeric_range("Age", 40, 70).expect("static domain");
    let disease = Attribute::categorical("Disease", disease_hierarchy());
    Arc::new(Schema::new(vec![weight, age, disease], attr::DISEASE).expect("static schema"))
}

/// The six patient records of Table 1 (identifiers dropped, as the paper
/// assumes de-identified input).
///
/// | Weight | Age | Disease      |
/// |--------|-----|--------------|
/// | 70     | 40  | headache     |
/// | 60     | 60  | epilepsy     |
/// | 50     | 50  | brain tumors |
/// | 70     | 50  | heart murmur |
/// | 80     | 50  | anemia       |
/// | 60     | 70  | angina       |
pub fn patients_table() -> Table {
    let schema = patients_schema();
    let mut b = Table::builder(schema);
    for row in [
        ["70", "40", "headache"],
        ["60", "60", "epilepsy"],
        ["50", "50", "brain tumors"],
        ["70", "50", "heart murmur"],
        ["80", "50", "anemia"],
        ["60", "70", "angina"],
    ] {
        b.push_labels(&row).expect("static rows are valid");
    }
    b.build()
}

/// The table of Example 2 in the paper: 19 tuples whose disease counts are
/// 2 × headache, 3 × epilepsy, 3 × brain tumors, 3 × anemia, 4 × angina,
/// 4 × heart murmur (QI values are synthesized on a small grid; Example 2
/// only reasons about the SA histogram).
pub fn example2_table() -> Table {
    let schema = patients_schema();
    let diseases = [
        ("headache", 2),
        ("epilepsy", 3),
        ("brain tumors", 3),
        ("anemia", 3),
        ("angina", 4),
        ("heart murmur", 4),
    ];
    let mut b = Table::builder(schema);
    let mut i = 0u32;
    for (name, count) in diseases {
        for _ in 0..count {
            let weight = 50 + 5 * (i % 7);
            let age = 40 + 2 * (i % 16);
            b.push_labels(&[&weight.to_string(), &age.to_string(), name])
                .expect("static rows are valid");
            i += 1;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape() {
        let t = patients_table();
        assert_eq!(t.num_rows(), 6);
        assert_eq!(t.schema().arity(), 3);
        assert_eq!(t.decode_row(2), vec!["50", "50", "brain tumors"]);
        // Every disease occurs exactly once.
        let d = t.sa_distribution(attr::DISEASE);
        assert!(d.counts().iter().all(|&c| c == 1));
    }

    #[test]
    fn example2_histogram() {
        let t = example2_table();
        assert_eq!(t.num_rows(), 19);
        let d = t.sa_distribution(attr::DISEASE);
        assert_eq!(d.counts(), &[2, 3, 3, 3, 4, 4]);
        // Matches the paper's P = (2/19, 3/19, 3/19, 3/19, 4/19, 4/19).
        assert!((d.freq(0) - 2.0 / 19.0).abs() < 1e-12);
        assert!((d.freq(5) - 4.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_attack_structure() {
        // The first three tuples of Table 1 all carry nervous diseases: a
        // 3-diverse EC over them still leaks the disease category (the
        // similarity attack of Section 2).
        let t = patients_table();
        let h = disease_hierarchy();
        let (lo, hi) = t.code_extent(attr::DISEASE, &[0, 1, 2]).unwrap();
        let lca = h.lca_of_leaves(lo, hi);
        assert_eq!(h.label(lca), "nervous diseases");
    }
}

//! Attribute and schema descriptions.
//!
//! A [`Schema`] is an ordered list of [`Attribute`]s. Attributes are either
//! numeric (a sorted list of domain values; generalization produces value
//! ranges, Equation 2 of the paper) or categorical (a generalization
//! [`Hierarchy`]; generalization produces subtree ranges, Equation 3).
//!
//! The schema does not hard-wire which attributes are QIs and which is the
//! SA: the paper's experiments vary the QI set (Figures 6, 8c, 9c), so the
//! anonymization APIs take the QI indices and SA index as parameters. The
//! schema records a *default* SA index for convenience.

use crate::error::{Error, Result};
use crate::hierarchy::Hierarchy;
use crate::Value;

/// The typed domain of an attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrKind {
    /// A numeric attribute; `values` is the sorted domain. Code `i` encodes
    /// `values[i]`.
    Numeric {
        /// Sorted distinct domain values.
        values: Vec<f64>,
    },
    /// A categorical attribute with a generalization hierarchy. Code `i`
    /// encodes the `i`-th leaf in pre-order.
    Categorical {
        /// The generalization hierarchy over the domain.
        hierarchy: Hierarchy,
    },
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    name: String,
    kind: AttrKind,
}

impl Attribute {
    /// Creates a numeric attribute over an integer range `lo..=hi`
    /// (inclusive), the common case for CENSUS attributes such as *age*.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSchema`] if `lo > hi`.
    pub fn numeric_range(name: impl Into<String>, lo: i64, hi: i64) -> Result<Self> {
        if lo > hi {
            return Err(Error::InvalidSchema(format!(
                "numeric range {lo}..={hi} is empty"
            )));
        }
        let values = (lo..=hi).map(|v| v as f64).collect();
        Ok(Attribute {
            name: name.into(),
            kind: AttrKind::Numeric { values },
        })
    }

    /// Creates a numeric attribute from explicit domain values.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSchema`] if `values` is empty, unsorted, or
    /// contains duplicates / non-finite entries.
    pub fn numeric(name: impl Into<String>, values: Vec<f64>) -> Result<Self> {
        if values.is_empty() {
            return Err(Error::InvalidSchema("numeric domain is empty".into()));
        }
        if values.iter().any(|v| !v.is_finite()) {
            return Err(Error::InvalidSchema(
                "numeric domain has non-finite values".into(),
            ));
        }
        if values.windows(2).any(|w| w[0] >= w[1]) {
            return Err(Error::InvalidSchema(
                "numeric domain must be strictly ascending".into(),
            ));
        }
        Ok(Attribute {
            name: name.into(),
            kind: AttrKind::Numeric { values },
        })
    }

    /// Creates a categorical attribute from a hierarchy.
    pub fn categorical(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        Attribute {
            name: name.into(),
            kind: AttrKind::Categorical { hierarchy },
        }
    }

    /// Attribute name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attribute kind (numeric or categorical).
    #[inline]
    pub fn kind(&self) -> &AttrKind {
        &self.kind
    }

    /// Domain cardinality.
    #[inline]
    pub fn cardinality(&self) -> usize {
        match &self.kind {
            AttrKind::Numeric { values } => values.len(),
            AttrKind::Categorical { hierarchy } => hierarchy.num_leaves(),
        }
    }

    /// Whether the attribute is numeric.
    #[inline]
    pub fn is_numeric(&self) -> bool {
        matches!(self.kind, AttrKind::Numeric { .. })
    }

    /// The hierarchy of a categorical attribute, if any.
    #[inline]
    pub fn hierarchy(&self) -> Option<&Hierarchy> {
        match &self.kind {
            AttrKind::Categorical { hierarchy } => Some(hierarchy),
            AttrKind::Numeric { .. } => None,
        }
    }

    /// Decodes a value code to its numeric domain value (numeric attributes
    /// only).
    #[inline]
    pub fn numeric_value(&self, code: Value) -> Option<f64> {
        match &self.kind {
            AttrKind::Numeric { values } => values.get(code as usize).copied(),
            AttrKind::Categorical { .. } => None,
        }
    }

    /// Human-readable label for a value code.
    pub fn label(&self, code: Value) -> String {
        match &self.kind {
            AttrKind::Numeric { values } => values
                .get(code as usize)
                .map(|v| {
                    if v.fract() == 0.0 {
                        format!("{}", *v as i64)
                    } else {
                        format!("{v}")
                    }
                })
                .unwrap_or_else(|| format!("<bad:{code}>")),
            AttrKind::Categorical { hierarchy } => {
                if (code as usize) < hierarchy.num_leaves() {
                    hierarchy.leaf_label(code).to_string()
                } else {
                    format!("<bad:{code}>")
                }
            }
        }
    }

    /// Resolves a label (or numeric literal) to a value code.
    pub fn code_of(&self, label: &str) -> Result<Value> {
        match &self.kind {
            AttrKind::Numeric { values } => {
                let v: f64 = label.trim().parse().map_err(|_| Error::UnknownLabel {
                    attribute: self.name.clone(),
                    label: label.to_string(),
                })?;
                values
                    .iter()
                    .position(|&x| (x - v).abs() < 1e-9)
                    .map(|i| i as Value)
                    .ok_or_else(|| Error::UnknownLabel {
                        attribute: self.name.clone(),
                        label: label.to_string(),
                    })
            }
            AttrKind::Categorical { hierarchy } => {
                hierarchy
                    .leaf_code(label)
                    .ok_or_else(|| Error::UnknownLabel {
                        attribute: self.name.clone(),
                        label: label.to_string(),
                    })
            }
        }
    }

    /// Normalized width of the code range `[lo, hi]` relative to the full
    /// domain, used by the information-loss metric:
    ///
    /// * numeric: `(v[hi] − v[lo]) / (v[max] − v[min])` (Equation 2);
    /// * categorical: `|leaves(lca(lo, hi))| / |leaves(H)|`, 0 for a single
    ///   value (Equation 3).
    pub fn normalized_span(&self, lo: Value, hi: Value) -> f64 {
        debug_assert!(lo <= hi);
        match &self.kind {
            AttrKind::Numeric { values } => {
                let full = values[values.len() - 1] - values[0];
                if full == 0.0 {
                    0.0
                } else {
                    (values[hi as usize] - values[lo as usize]) / full
                }
            }
            AttrKind::Categorical { hierarchy } => hierarchy.range_loss(lo, hi),
        }
    }
}

/// An ordered collection of attributes with a default sensitive attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    default_sa: usize,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSchema`] if `attributes` is empty, names
    /// collide, or `default_sa` is out of bounds.
    pub fn new(attributes: Vec<Attribute>, default_sa: usize) -> Result<Self> {
        if attributes.is_empty() {
            return Err(Error::InvalidSchema("schema has no attributes".into()));
        }
        if default_sa >= attributes.len() {
            return Err(Error::InvalidSchema(format!(
                "default SA index {default_sa} out of bounds ({} attributes)",
                attributes.len()
            )));
        }
        let mut names = std::collections::BTreeSet::new();
        for a in &attributes {
            if !names.insert(a.name().to_string()) {
                return Err(Error::InvalidSchema(format!(
                    "duplicate attribute name `{}`",
                    a.name()
                )));
            }
        }
        Ok(Schema {
            attributes,
            default_sa,
        })
    }

    /// Number of attributes.
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Attribute at `index`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::AttributeOutOfBounds`] if the index is invalid.
    pub fn attribute(&self, index: usize) -> Result<&Attribute> {
        self.attributes
            .get(index)
            .ok_or(Error::AttributeOutOfBounds {
                index,
                len: self.attributes.len(),
            })
    }

    /// Attribute at `index` without bounds diagnostics (panics on misuse).
    #[inline]
    pub fn attr(&self, index: usize) -> &Attribute {
        &self.attributes[index]
    }

    /// Position of an attribute by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name() == name)
    }

    /// The schema's default sensitive-attribute index.
    #[inline]
    pub fn default_sa(&self) -> usize {
        self.default_sa
    }

    /// All indices except the default SA — the candidate QI attributes.
    pub fn default_qi(&self) -> Vec<usize> {
        (0..self.arity())
            .filter(|&i| i != self.default_sa)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::NodeSpec;

    fn gender() -> Attribute {
        Attribute::categorical(
            "Gender",
            Hierarchy::flat("person", &["male", "female"]).unwrap(),
        )
    }

    #[test]
    fn numeric_range_domain() {
        let age = Attribute::numeric_range("Age", 16, 94).unwrap();
        assert_eq!(age.cardinality(), 79);
        assert_eq!(age.numeric_value(0), Some(16.0));
        assert_eq!(age.numeric_value(78), Some(94.0));
        assert_eq!(age.label(3), "19");
        assert_eq!(age.code_of("94").unwrap(), 78);
        assert!(age.code_of("95").is_err());
    }

    #[test]
    fn numeric_rejects_bad_domains() {
        assert!(Attribute::numeric_range("x", 5, 4).is_err());
        assert!(Attribute::numeric("x", vec![]).is_err());
        assert!(Attribute::numeric("x", vec![1.0, 1.0]).is_err());
        assert!(Attribute::numeric("x", vec![2.0, 1.0]).is_err());
        assert!(Attribute::numeric("x", vec![f64::NAN]).is_err());
    }

    #[test]
    fn normalized_span_numeric_matches_eq2() {
        let age = Attribute::numeric_range("Age", 16, 94).unwrap();
        // Full domain -> 1.
        assert!((age.normalized_span(0, 78) - 1.0).abs() < 1e-12);
        // [20, 32] as in the paper's generalization example: (32-20)/(94-16).
        let lo = age.code_of("20").unwrap();
        let hi = age.code_of("32").unwrap();
        assert!((age.normalized_span(lo, hi) - 12.0 / 78.0).abs() < 1e-12);
        // Single value -> 0.
        assert_eq!(age.normalized_span(5, 5), 0.0);
    }

    #[test]
    fn normalized_span_categorical_matches_eq3() {
        let h = Hierarchy::from_spec(&NodeSpec::internal(
            "root",
            vec![
                NodeSpec::internal("a", vec![NodeSpec::leaf("x"), NodeSpec::leaf("y")]),
                NodeSpec::leaf("z"),
            ],
        ))
        .unwrap();
        let attr = Attribute::categorical("C", h);
        assert_eq!(attr.normalized_span(0, 0), 0.0);
        assert!((attr.normalized_span(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((attr.normalized_span(0, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn schema_validation() {
        let a = Attribute::numeric_range("Age", 0, 9).unwrap();
        let g = gender();
        assert!(Schema::new(vec![], 0).is_err());
        assert!(Schema::new(vec![a.clone()], 5).is_err());
        let dup = Schema::new(vec![a.clone(), a.clone()], 0);
        assert!(dup.is_err());
        let ok = Schema::new(vec![a, g], 1).unwrap();
        assert_eq!(ok.arity(), 2);
        assert_eq!(ok.default_sa(), 1);
        assert_eq!(ok.default_qi(), vec![0]);
        assert_eq!(ok.index_of("Gender"), Some(1));
        assert_eq!(ok.index_of("Nope"), None);
        assert!(ok.attribute(7).is_err());
    }

    #[test]
    fn categorical_labels_roundtrip() {
        let g = gender();
        assert_eq!(g.label(1), "female");
        assert_eq!(g.code_of("female").unwrap(), 1);
        assert!(g.code_of("other").is_err());
        assert!(g.hierarchy().is_some());
        assert!(g.numeric_value(0).is_none());
    }
}

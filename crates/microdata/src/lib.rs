//! # betalike-microdata
//!
//! Microdata substrate for the `betalike` workspace: typed relational tables
//! with quasi-identifier (QI) and sensitive attributes (SA), generalization
//! hierarchies for categorical attributes, sensitive-value distributions, and
//! the synthetic CENSUS dataset used throughout the evaluation of
//!
//! > Jianneng Cao, Panagiotis Karras: *Publishing Microdata with a Robust
//! > Privacy Guarantee*. PVLDB 5(11), 2012.
//!
//! The crate is deliberately dependency-light and columnar: every attribute
//! value is stored as a `u32` *code* into the attribute's domain, so scans,
//! histograms and partitioning are cache-friendly even at the paper's default
//! scale of 500 000 tuples.
//!
//! ## Layout
//!
//! * [`hierarchy`] — generalization hierarchies (Figure 1 of the paper) as
//!   flattened pre-order trees with O(height) lowest-common-ancestor queries.
//! * [`schema`] — attribute and schema descriptions (numeric / categorical).
//! * [`table`] — the columnar [`Table`] and its builder.
//! * [`distribution`] — sensitive-attribute histograms ([`SaDistribution`]).
//! * [`census`] — a seeded generator reproducing Table 3 of the paper
//!   (500K × 6 CENSUS) with realistic QI↔SA correlation.
//! * [`patients`] — the six-tuple patient example (Table 1 + Figure 1).
//! * [`synthetic`] — small random tables for tests and property checks.
//! * [`io`] — CSV export/import of decoded tables.
//! * [`json`] — a small JSON kernel backing [`spec`] and the perturbation
//!   plan release (the build is offline, so no `serde`).
//! * [`hash`] — the stable FNV-1a content hash behind publication handles
//!   and snapshot checksums.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod census;
pub mod distribution;
pub mod error;
pub mod hash;
pub mod hierarchy;
pub mod io;
pub mod json;
pub mod patients;
pub mod schema;
pub mod spec;
pub mod synthetic;
pub mod table;

pub use distribution::SaDistribution;
pub use error::{Error, Result};
pub use hierarchy::{Hierarchy, NodeId, NodeSpec};
pub use schema::{AttrKind, Attribute, Schema};
pub use spec::SchemaSpec;
pub use table::{Table, TableBuilder};

/// An encoded attribute value: an index into the attribute's domain.
///
/// * For numeric attributes, code `i` denotes the `i`-th smallest domain
///   value (see [`AttrKind::Numeric`]).
/// * For categorical attributes, code `i` denotes the `i`-th leaf of the
///   generalization hierarchy in pre-order (see [`AttrKind::Categorical`]).
pub type Value = u32;

/// A row index into a [`Table`].
pub type RowId = usize;

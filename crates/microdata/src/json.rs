//! A minimal JSON value model, parser and pretty-printer.
//!
//! The workspace's durable artifacts ([`crate::spec::SchemaSpec`] and the
//! perturbation plan release in `betalike`) are interchanged as JSON. The
//! build environment has no crates.io access, so instead of `serde` /
//! `serde_json` this module provides a small, dependency-free JSON kernel:
//!
//! * [`Json`] — an ordered value tree (object keys keep insertion order, so
//!   rendered documents are stable);
//! * [`Json::parse`] — a strict recursive-descent parser with byte-offset
//!   diagnostics;
//! * [`Json::pretty`] — two-space-indented rendering in the conventional
//!   `"key": value` style.
//!
//! Numbers are held as `f64`, which is lossless for every numeric field the
//! workspace serializes (attribute codes and probabilities).

use std::fmt;

/// A JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (rejects trailing input).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] describing the first syntax problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }

    /// Renders the value with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Renders the value on a single line with no whitespace — the form the
    /// newline-delimited wire protocol of `betalike-server` requires (a
    /// pretty-printed document would span several frames).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => out.push_str(&format_number(*n)),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    push_indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, depth + 1);
                }
                out.push('\n');
                push_indent(out, depth);
                out.push('}');
            }
        }
    }

    /// Object member lookup by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if it is one exactly
    /// (no fractional part, within `u64` range).
    pub fn as_u64(&self) -> Option<u64> {
        // `u64::MAX as f64` rounds *up* to 2^64, so the range test must be
        // exclusive there — 2^64 itself would otherwise saturate the cast.
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n < u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Json::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// [`Json::as_u64`] narrowed to `u32` — the workspace's attribute-code
    /// type, so wire parsers need no ad-hoc range dance.
    pub fn as_u32(&self) -> Option<u32> {
        self.as_u64().and_then(|n| u32::try_from(n).ok())
    }

    /// The numeric payload as a signed integer, if it is one exactly (no
    /// fractional part, within `i64` range).
    pub fn as_i64(&self) -> Option<i64> {
        // `i64::MIN as f64` is exactly -2^63 (inclusive); `i64::MAX as f64`
        // rounds *up* to 2^63, so the upper test must be exclusive there.
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n < i64::MAX as f64 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Self {
        Json::Num(n)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn format_number(n: f64) -> String {
    if n.is_finite() {
        // Rust's shortest-roundtrip Display: "10" for 10.0, "0.25" for 0.25.
        format!("{n}")
    } else {
        // JSON has no non-finite numbers; degrade to null like serde_json.
        "null".to_string()
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode `\uD8xx\uDCxx` sequences.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid surrogate pair"));
                                    }
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is valid UTF-8 by
                    // construction: we were handed a &str).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let s =
                        std::str::from_utf8(&rest[..len]).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    /// Consumes one or more digits; errors if there are none.
    fn digits(&mut self, context: &str) -> Result<(), JsonError> {
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err(context));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        Ok(())
    }

    /// RFC 8259 number grammar: `-? (0 | [1-9][0-9]*) (\.[0-9]+)? ([eE][+-]?[0-9]+)?`.
    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        // Integer part: a lone `0`, or a nonzero digit followed by more —
        // leading zeros are invalid JSON.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            _ => self.digits("expected digit in number")?,
        }
        if matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("leading zeros are not allowed"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits("expected digit after decimal point")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("expected digit in exponent")?;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            message: format!("invalid number `{text}`"),
            offset: start,
        })
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("a \"b\"\n".into())),
            ("n".into(), Json::Num(10.0)),
            ("frac".into(), Json::Num(0.25)),
            ("flag".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            ("empty".into(), Json::Arr(vec![])),
            (
                "items".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Obj(vec![])]),
            ),
        ]);
        let text = doc.pretty();
        assert!(text.contains("\"n\": 10"));
        assert!(text.contains("\"frac\": 0.25"));
        assert!(text.contains("\"empty\": []"));
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn compact_is_single_line_and_roundtrips() {
        let doc = Json::Obj(vec![
            ("op".into(), Json::Str("count".into())),
            ("n".into(), Json::Num(10.0)),
            ("frac".into(), Json::Num(0.25)),
            (
                "flags".into(),
                Json::Arr(vec![Json::Bool(true), Json::Null]),
            ),
            (
                "nested".into(),
                Json::Obj(vec![("k".into(), Json::Num(1.0))]),
            ),
            ("text".into(), Json::Str("line\nbreak".into())),
        ]);
        let line = doc.compact();
        assert!(!line.contains('\n'), "compact must stay on one line");
        assert_eq!(
            line,
            r#"{"op":"count","n":10,"frac":0.25,"flags":[true,null],"nested":{"k":1},"text":"line\nbreak"}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), doc);
        assert_eq!(Json::Arr(vec![]).compact(), "[]");
        assert_eq!(Json::Obj(vec![]).compact(), "{}");
    }

    #[test]
    fn integer_and_bool_accessors() {
        assert_eq!(Json::Num(42.0).as_u64(), Some(42));
        assert_eq!(Json::Num(42.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        // 2^64 is exactly `u64::MAX as f64` but outside u64 range; it must
        // be rejected, not saturated to u64::MAX.
        assert_eq!(Json::Num(18446744073709551616.0).as_u64(), None);
        // The largest f64 below 2^64 still fits.
        assert_eq!(
            Json::Num(18446744073709549568.0).as_u64(),
            Some(18446744073709549568)
        );
        assert_eq!(Json::Str("42".into()).as_u64(), None);
        assert_eq!(Json::Num(7.0).as_usize(), Some(7));
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
        assert_eq!(Json::Null.as_bool(), None);
    }

    #[test]
    fn signed_and_narrow_accessors() {
        assert_eq!(Json::Num(-42.0).as_i64(), Some(-42));
        assert_eq!(Json::Num(42.0).as_i64(), Some(42));
        assert_eq!(Json::Num(-0.5).as_i64(), None);
        // -2^63 is exactly representable and in range; 2^63 is not in range.
        assert_eq!(Json::Num(-9223372036854775808.0).as_i64(), Some(i64::MIN));
        assert_eq!(Json::Num(9223372036854775808.0).as_i64(), None);
        assert_eq!(Json::Str("1".into()).as_i64(), None);
        assert_eq!(Json::Num(4294967295.0).as_u32(), Some(u32::MAX));
        assert_eq!(Json::Num(4294967296.0).as_u32(), None);
        assert_eq!(Json::Num(-1.0).as_u32(), None);
        assert_eq!(Json::Num(3.5).as_u32(), None);
    }

    #[test]
    fn parses_standard_forms() {
        let v = Json::parse(r#"{"a": [1, -2.5, 1e3], "b": "xA\n"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(1000.0));
        assert_eq!(v.get("b").unwrap().as_str().unwrap(), "xA\n");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "{not json",
            "",
            "[1,]extra",
            "[1, 2",
            "{\"a\" 1}",
            "\"unterminated",
            "nul",
            // RFC 8259 number grammar violations.
            "01",
            "-01",
            "1.",
            ".5",
            "1e",
            "1e+",
            // Broken surrogate pairs.
            "\"\\uD800\\u0041\"",
            "\"\\uD800x\"",
            "\"\\uDC00\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        // Trailing garbage after a valid document.
        assert!(Json::parse("[1] [2]").is_err());
    }

    #[test]
    fn shortest_roundtrip_numbers_are_exact() {
        for &x in &[0.1, 1.0 / 3.0, 123456.789, 2.0_f64.powi(52) + 1.0] {
            let text = Json::Num(x).pretty();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits());
        }
    }

    #[test]
    fn surrogate_pairs_decode() {
        let v = Json::parse("\"\\uD83D\\uDE00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "😀");
    }
}

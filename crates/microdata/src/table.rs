//! The columnar microdata [`Table`].
//!
//! Tables are immutable after construction and store one `Vec<u32>` of value
//! codes per attribute. The schema is shared behind an [`Arc`] so derived
//! tables (row subsets, prefixes) are cheap to create.

use crate::distribution::SaDistribution;
use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::{RowId, Value};
use std::sync::Arc;

/// An immutable columnar microdata table.
///
/// Equality is structural — same schema, same codes — which is what the
/// snapshot round-trip tests of `betalike-store` assert.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Arc<Schema>,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// Assembles a table from pre-encoded columns.
    ///
    /// # Errors
    ///
    /// Returns an error if the column count does not match the schema arity,
    /// columns have differing lengths, or any code is outside its domain.
    pub fn from_columns(schema: Arc<Schema>, columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.len() != schema.arity() {
            return Err(Error::ArityMismatch {
                got: columns.len(),
                expected: schema.arity(),
            });
        }
        let rows = columns.first().map_or(0, Vec::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(Error::InvalidSchema(format!(
                    "column {i} has {} rows, expected {rows}",
                    col.len()
                )));
            }
            let card = schema.attr(i).cardinality() as Value;
            if let Some(&bad) = col.iter().find(|&&v| v >= card) {
                return Err(Error::ValueOutOfDomain {
                    attribute: schema.attr(i).name().to_string(),
                    code: bad,
                    cardinality: card as usize,
                });
            }
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// Starts building a table row by row.
    pub fn builder(schema: Arc<Schema>) -> TableBuilder {
        TableBuilder {
            columns: vec![Vec::new(); schema.arity()],
            schema,
        }
    }

    /// The table's schema.
    #[inline]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Shared handle to the schema.
    #[inline]
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Whether the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The full column of an attribute.
    #[inline]
    pub fn column(&self, attr: usize) -> &[Value] {
        &self.columns[attr]
    }

    /// A single cell.
    #[inline]
    pub fn value(&self, row: RowId, attr: usize) -> Value {
        self.columns[attr][row]
    }

    /// Decodes an entire row into human-readable labels.
    pub fn decode_row(&self, row: RowId) -> Vec<String> {
        (0..self.schema.arity())
            .map(|a| self.schema.attr(a).label(self.value(row, a)))
            .collect()
    }

    /// Histogram of the sensitive attribute over the whole table.
    pub fn sa_distribution(&self, sa: usize) -> SaDistribution {
        SaDistribution::from_codes(self.column(sa), self.schema.attr(sa).cardinality())
    }

    /// Histogram of the sensitive attribute over a row subset.
    pub fn sa_distribution_of(&self, sa: usize, rows: &[RowId]) -> SaDistribution {
        let col = self.column(sa);
        SaDistribution::from_iter(
            rows.iter().map(|&r| col[r]),
            self.schema.attr(sa).cardinality(),
        )
    }

    /// Materializes a new table containing the given rows (in order).
    pub fn select_rows(&self, rows: &[RowId]) -> Table {
        let columns = self
            .columns
            .iter()
            .map(|col| rows.iter().map(|&r| col[r]).collect())
            .collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            rows: rows.len(),
        }
    }

    /// Materializes the first `n` rows (used by the dataset-size sweep of
    /// Figure 7; the generator already shuffles rows, so a prefix is a
    /// uniform sample).
    pub fn prefix(&self, n: usize) -> Table {
        let n = n.min(self.rows);
        let columns = self.columns.iter().map(|col| col[..n].to_vec()).collect();
        Table {
            schema: Arc::clone(&self.schema),
            columns,
            rows: n,
        }
    }

    /// Minimum and maximum code of `attr` over the given rows.
    ///
    /// Returns `None` when `rows` is empty.
    pub fn code_extent(&self, attr: usize, rows: &[RowId]) -> Option<(Value, Value)> {
        let col = self.column(attr);
        let mut it = rows.iter().map(|&r| col[r]);
        let first = it.next()?;
        let mut lo = first;
        let mut hi = first;
        for v in it {
            if v < lo {
                lo = v;
            }
            if v > hi {
                hi = v;
            }
        }
        Some((lo, hi))
    }
}

/// Row-oriented builder for [`Table`].
#[derive(Debug)]
pub struct TableBuilder {
    schema: Arc<Schema>,
    columns: Vec<Vec<Value>>,
}

impl TableBuilder {
    /// Appends a row of pre-encoded value codes.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or out-of-domain codes.
    pub fn push_codes(&mut self, codes: &[Value]) -> Result<&mut Self> {
        if codes.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                got: codes.len(),
                expected: self.schema.arity(),
            });
        }
        for (i, &code) in codes.iter().enumerate() {
            let card = self.schema.attr(i).cardinality();
            if code as usize >= card {
                return Err(Error::ValueOutOfDomain {
                    attribute: self.schema.attr(i).name().to_string(),
                    code,
                    cardinality: card,
                });
            }
        }
        for (col, &code) in self.columns.iter_mut().zip(codes) {
            col.push(code);
        }
        Ok(self)
    }

    /// Appends a row of human-readable labels, encoding them via the schema.
    ///
    /// # Errors
    ///
    /// Returns an error on arity mismatch or unresolvable labels.
    pub fn push_labels(&mut self, labels: &[&str]) -> Result<&mut Self> {
        if labels.len() != self.schema.arity() {
            return Err(Error::ArityMismatch {
                got: labels.len(),
                expected: self.schema.arity(),
            });
        }
        let mut codes = Vec::with_capacity(labels.len());
        for (i, label) in labels.iter().enumerate() {
            codes.push(self.schema.attr(i).code_of(label)?);
        }
        self.push_codes(&codes)
    }

    /// Number of rows buffered so far.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Vec::len)
    }

    /// Whether no rows have been buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finishes the build.
    pub fn build(self) -> Table {
        let rows = self.len();
        Table {
            schema: self.schema,
            columns: self.columns,
            rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;
    use crate::schema::Attribute;

    fn small_schema() -> Arc<Schema> {
        let age = Attribute::numeric_range("Age", 20, 29).unwrap();
        let gender = Attribute::categorical("Gender", Hierarchy::flat("p", &["m", "f"]).unwrap());
        let disease = Attribute::categorical(
            "Disease",
            Hierarchy::flat("any", &["flu", "hiv", "cold"]).unwrap(),
        );
        Arc::new(Schema::new(vec![age, gender, disease], 2).unwrap())
    }

    #[test]
    fn builder_roundtrip() {
        let schema = small_schema();
        let mut b = Table::builder(Arc::clone(&schema));
        b.push_labels(&["25", "m", "flu"]).unwrap();
        b.push_labels(&["21", "f", "hiv"]).unwrap();
        b.push_codes(&[9, 0, 2]).unwrap();
        let t = b.build();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.value(0, 0), 5); // age 25 -> code 5
        assert_eq!(t.decode_row(1), vec!["21", "f", "hiv"]);
        assert_eq!(t.decode_row(2), vec!["29", "m", "cold"]);
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let schema = small_schema();
        let mut b = Table::builder(schema);
        assert!(b.push_codes(&[0, 0]).is_err()); // arity
        assert!(b.push_codes(&[10, 0, 0]).is_err()); // age out of domain
        assert!(b.push_labels(&["25", "x", "flu"]).is_err()); // unknown label
        assert!(b.is_empty());
    }

    #[test]
    fn from_columns_validates() {
        let schema = small_schema();
        assert!(Table::from_columns(Arc::clone(&schema), vec![vec![0]; 2]).is_err());
        assert!(
            Table::from_columns(Arc::clone(&schema), vec![vec![0], vec![0, 1], vec![0]]).is_err()
        );
        assert!(Table::from_columns(Arc::clone(&schema), vec![vec![0], vec![5], vec![0]]).is_err());
        let t = Table::from_columns(schema, vec![vec![0, 1], vec![1, 0], vec![2, 2]]).unwrap();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn select_rows_and_prefix() {
        let schema = small_schema();
        let t = Table::from_columns(
            schema,
            vec![vec![0, 1, 2, 3], vec![0, 1, 0, 1], vec![0, 1, 2, 0]],
        )
        .unwrap();
        let s = t.select_rows(&[3, 1]);
        assert_eq!(s.num_rows(), 2);
        assert_eq!(s.value(0, 0), 3);
        assert_eq!(s.value(1, 2), 1);
        let p = t.prefix(2);
        assert_eq!(p.num_rows(), 2);
        assert_eq!(p.value(1, 0), 1);
        assert_eq!(t.prefix(100).num_rows(), 4);
    }

    #[test]
    fn sa_distribution_counts() {
        let schema = small_schema();
        let t = Table::from_columns(
            schema,
            vec![vec![0, 1, 2, 3], vec![0, 1, 0, 1], vec![0, 1, 0, 2]],
        )
        .unwrap();
        let d = t.sa_distribution(2);
        assert_eq!(d.counts(), &[2, 1, 1]);
        let sub = t.sa_distribution_of(2, &[0, 2]);
        assert_eq!(sub.counts(), &[2, 0, 0]);
    }

    #[test]
    fn code_extent() {
        let schema = small_schema();
        let t =
            Table::from_columns(schema, vec![vec![5, 1, 7], vec![0, 1, 0], vec![0, 1, 2]]).unwrap();
        assert_eq!(t.code_extent(0, &[0, 1, 2]), Some((1, 7)));
        assert_eq!(t.code_extent(0, &[2]), Some((7, 7)));
        assert_eq!(t.code_extent(0, &[]), None);
    }
}

//! A bounded LRU cache of `count` responses, keyed by the compiled query.
//!
//! Every artifact is content-addressed and every estimator deterministic,
//! so a `count` response is a pure function of `(handle, predicates,
//! SA range, exact?)` — the cache stores the *response document itself*
//! and replays it verbatim, making a hit byte-identical to the miss that
//! populated it. Entries are invalidated per handle whenever the handle's
//! resident artifact could change: a fresh publish (e.g. recomputation
//! after a quarantine) or a stored artifact being quarantined.
//!
//! The map is a `BTreeMap` (betalike-lint rule D1: no `HashMap` in
//! serving crates) with a second tick-ordered index providing O(log n)
//! least-recently-used eviction. Hit/miss/size gauges surface through the
//! `health` op.

use betalike_microdata::json::Json;
use betalike_query::RangePred;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Result-cache capacity (entries) of [`crate::server::ServerConfig`]'s
/// `Default` impl. `result_cache: 0` disables caching entirely.
pub const DEFAULT_RESULT_CACHE: usize = 1024;

/// Point-in-time cache gauges for the `health` op.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CacheStats {
    /// Lookups answered from the cache since startup.
    pub hits: u64,
    /// Lookups that fell through to the answerer since startup.
    pub misses: u64,
    /// Entries currently resident.
    pub len: usize,
}

#[derive(Debug, Default)]
struct Inner {
    /// key → (last-use tick, cached response).
    map: BTreeMap<String, (u64, Json)>,
    /// last-use tick → key; the smallest tick is the LRU victim.
    order: BTreeMap<u64, String>,
    /// Monotone use counter; ticks are never reused.
    tick: u64,
}

/// The cache. Capacity `0` turns every operation into a no-op.
#[derive(Debug)]
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// The canonical cache key for one `count` request: handle, the QI
/// predicates *in request order*, the SA range, and the exact flag. Two
/// requests map to the same key exactly when the wire protocol guarantees
/// them the same response document.
pub(crate) fn cache_key(
    handle: &str,
    qi_preds: &[RangePred],
    sa_lo: u32,
    sa_hi: u32,
    exact: bool,
) -> String {
    use std::fmt::Write;
    let mut key = String::with_capacity(handle.len() + 16 + 16 * qi_preds.len());
    key.push_str(handle);
    key.push('|');
    for p in qi_preds {
        let _ = write!(key, "{}:{}-{},", p.attr, p.lo, p.hi);
    }
    let _ = write!(key, "|{sa_lo}-{sa_hi}|{}", u8::from(exact));
    key
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ResultCache {
            inner: Mutex::new(Inner::default()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// The cached response for `key`, refreshing its recency on a hit.
    pub(crate) fn get(&self, key: &str) -> Option<Json> {
        if self.capacity == 0 {
            return None;
        }
        let mut guard = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let inner = &mut *guard;
        let Some((tick, response)) = inner.map.get_mut(key) else {
            drop(guard);
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        inner.order.remove(tick);
        inner.tick += 1;
        *tick = inner.tick;
        inner.order.insert(inner.tick, key.to_string());
        let response = response.clone();
        self.hits.fetch_add(1, Ordering::Relaxed);
        Some(response)
    }

    /// Caches `response` under `key`, evicting the least-recently-used
    /// entry when full. Racing inserts of the same key both store the same
    /// deterministic document, so last-writer-wins is harmless.
    pub(crate) fn insert(&self, key: String, response: Json) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((old_tick, _)) = inner.map.get(&key) {
            let old_tick = *old_tick;
            inner.order.remove(&old_tick);
        } else if inner.map.len() >= self.capacity {
            if let Some((&victim_tick, _)) = inner.order.iter().next() {
                if let Some(victim_key) = inner.order.remove(&victim_tick) {
                    inner.map.remove(&victim_key);
                }
            }
        }
        inner.tick += 1;
        let tick = inner.tick;
        inner.order.insert(tick, key.clone());
        inner.map.insert(key, (tick, response));
    }

    /// Drops every entry belonging to `handle`. Called when the handle's
    /// artifact is (re)computed or its stored form is quarantined.
    pub(crate) fn invalidate(&self, handle: &str) {
        if self.capacity == 0 {
            return;
        }
        let prefix = format!("{handle}|");
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let doomed: Vec<String> = inner
            .map
            .range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(&prefix))
            .map(|(k, _)| k.clone())
            .collect();
        for key in doomed {
            if let Some((tick, _)) = inner.map.remove(&key) {
                inner.order.remove(&tick);
            }
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let len = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.map.len()
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(n: f64) -> Json {
        Json::Obj(vec![("estimate".into(), Json::Num(n))])
    }

    #[test]
    fn hit_replays_the_stored_document_verbatim() {
        let cache = ResultCache::new(8);
        let key = cache_key("pub-a", &[], 0, 3, false);
        assert!(cache.get(&key).is_none());
        cache.insert(key.clone(), doc(41.0));
        let hit = cache.get(&key).expect("hit");
        assert_eq!(hit.compact(), doc(41.0).compact());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (1, 1, 1));
    }

    #[test]
    fn keys_distinguish_preds_order_range_and_exact() {
        let p = |attr, lo, hi| RangePred { attr, lo, hi };
        let base = cache_key("pub-a", &[p(0, 1, 2), p(1, 3, 4)], 0, 5, false);
        for other in [
            cache_key("pub-b", &[p(0, 1, 2), p(1, 3, 4)], 0, 5, false),
            cache_key("pub-a", &[p(1, 3, 4), p(0, 1, 2)], 0, 5, false),
            cache_key("pub-a", &[p(0, 1, 2), p(1, 3, 4)], 0, 6, false),
            cache_key("pub-a", &[p(0, 1, 2), p(1, 3, 4)], 0, 5, true),
            cache_key("pub-a", &[p(0, 1, 2)], 0, 5, false),
        ] {
            assert_ne!(base, other);
        }
    }

    #[test]
    fn eviction_removes_the_least_recently_used() {
        let cache = ResultCache::new(2);
        cache.insert("a|x".into(), doc(1.0));
        cache.insert("b|y".into(), doc(2.0));
        assert!(cache.get("a|x").is_some()); // refresh `a|x`; `b|y` is now LRU
        cache.insert("c|z".into(), doc(3.0));
        assert!(cache.get("b|y").is_none(), "LRU entry evicted");
        assert!(cache.get("a|x").is_some());
        assert!(cache.get("c|z").is_some());
        assert_eq!(cache.stats().len, 2);
    }

    #[test]
    fn invalidation_is_per_handle() {
        let cache = ResultCache::new(8);
        cache.insert(cache_key("pub-a", &[], 0, 1, false), doc(1.0));
        cache.insert(cache_key("pub-a", &[], 0, 2, false), doc(2.0));
        cache.insert(cache_key("pub-b", &[], 0, 1, false), doc(3.0));
        cache.invalidate("pub-a");
        assert!(cache.get(&cache_key("pub-a", &[], 0, 1, false)).is_none());
        assert!(cache.get(&cache_key("pub-a", &[], 0, 2, false)).is_none());
        assert!(cache.get(&cache_key("pub-b", &[], 0, 1, false)).is_some());
    }

    #[test]
    fn zero_capacity_disables_everything() {
        let cache = ResultCache::new(0);
        cache.insert("a|x".into(), doc(1.0));
        assert!(cache.get("a|x").is_none());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.len), (0, 0, 0));
    }
}

//! Published artifacts: one publish request's cached output.
//!
//! An [`Artifact`] owns everything needed to serve queries against one
//! publication — the [`PublishedAnswerer`] (per-EC boxes, perturbation
//! plan, or Anatomy histogram), the partition for audits, and the dataset
//! handle — all behind [`Arc`]s so any number of worker threads can answer
//! from it concurrently. The privacy audit is computed at most once, on
//! first request.

use crate::registry::{Dataset, Registry};
use crate::wire::{Algo, PublishRequest};
use betalike::model::{BetaLikeness, BoundKind};
use betalike::{burel_with_keys, perturb, BurelConfig};
use betalike_baselines::constraints::LikenessConstraint;
use betalike_baselines::mondrian::{mondrian, MondrianConfig};
use betalike_baselines::sabre::{sabre_with_keys, SabreConfig};
use betalike_metrics::audit::{audit_partition, ClosenessMetric, PartitionAudit};
use betalike_metrics::Partition;
use betalike_microdata::json::Json;
use betalike_query::{CatalogStats, PublishedAnswerer};
use std::sync::{Arc, OnceLock};

/// The closeness metric audits report (the workspace default, matching the
/// figure binaries).
pub const AUDIT_METRIC: ClosenessMetric = ClosenessMetric::EqualDistance;

/// One cached publication, shared by every connection that queries its
/// handle.
#[derive(Debug)]
pub struct Artifact {
    /// The content-addressed handle (`pub-…`).
    pub handle: String,
    /// The normalized request that produced this artifact.
    pub request: PublishRequest,
    /// The dataset the artifact was published from.
    pub dataset: Arc<Dataset>,
    /// The QI attributes that were generalized (empty for perturbation /
    /// Anatomy, which publish QIs verbatim).
    pub qi: Vec<usize>,
    /// The resident query answerer.
    pub answerer: PublishedAnswerer,
    /// The partition, for generalization-based schemes.
    pub partition: Option<Arc<Partition>>,
    /// Retention probabilities, for the perturbation scheme.
    pub alphas: Option<Vec<f64>>,
    audit: OnceLock<Option<PartitionAudit>>,
}

impl Artifact {
    /// Runs a publish request against the registry. Expensive — callers
    /// cache the result per handle (see `server::State`).
    ///
    /// # Errors
    ///
    /// Returns a wire-level message for invalid parameters or an algorithm
    /// failure (e.g. an unsatisfiable β).
    pub fn publish(registry: &Registry, request: &PublishRequest) -> Result<Arc<Self>, String> {
        Self::publish_opt(registry, request, true)
    }

    /// [`Artifact::publish`] with the aggregate catalog optional. A server
    /// started with `--no-catalog` passes `false` and serves every count
    /// through the scan path; answers are bit-identical either way.
    ///
    /// # Errors
    ///
    /// As [`Artifact::publish`].
    pub fn publish_opt(
        registry: &Registry,
        request: &PublishRequest,
        catalog: bool,
    ) -> Result<Arc<Self>, String> {
        Self::publish_with(registry, request, catalog, None)
    }

    /// [`Artifact::publish_opt`] with optional plan-classification
    /// counters wired into the catalog (the server passes registry-backed
    /// [`CatalogStats`] so its `metrics` op reports query plan shapes).
    ///
    /// # Errors
    ///
    /// As [`Artifact::publish`].
    pub fn publish_with(
        registry: &Registry,
        request: &PublishRequest,
        catalog: bool,
        stats: Option<CatalogStats>,
    ) -> Result<Arc<Self>, String> {
        let request = request.clone().normalized();
        let dataset = registry.dataset(&request.dataset);
        let table = Arc::clone(&dataset.table);
        let sa = dataset.sa;
        let needs_qi = matches!(request.algo, Algo::Burel | Algo::Sabre | Algo::Mondrian);
        if needs_qi && !(1..=dataset.qi_pool.len()).contains(&request.qi) {
            return Err(format!(
                "`qi` must be within 1..={} for dataset `{}`",
                dataset.qi_pool.len(),
                dataset.key
            ));
        }
        let qi: Vec<usize> = if needs_qi {
            // betalike-lint: allow(P1, reason = "request.qi <= qi_pool.len() was rejected above")
            dataset.qi_pool[..request.qi].to_vec()
        } else {
            Vec::new()
        };

        let mut partition = None;
        let mut alphas = None;
        let mut answerer = match request.algo {
            Algo::Burel => {
                let keys = registry.hilbert_keys(&dataset, &qi);
                let cfg = BurelConfig::new(request.beta).with_seed(request.seed);
                let p = burel_with_keys(&table, &qi, sa, &cfg, &keys).map_err(|e| e.to_string())?;
                let ans = PublishedAnswerer::generalized_opt(Arc::clone(&table), &p, catalog);
                partition = Some(Arc::new(p));
                ans
            }
            Algo::Sabre => {
                let keys = registry.hilbert_keys(&dataset, &qi);
                let cfg = SabreConfig::new(request.t).with_seed(request.seed);
                let p = sabre_with_keys(&table, &qi, sa, &cfg, &keys).map_err(|e| e.to_string())?;
                let ans = PublishedAnswerer::generalized_opt(Arc::clone(&table), &p, catalog);
                partition = Some(Arc::new(p));
                ans
            }
            Algo::Mondrian => {
                let model = BetaLikeness::with_bound(request.beta, BoundKind::Enhanced)
                    .map_err(|e| e.to_string())?;
                let c = LikenessConstraint::new(&table, sa, model);
                let p = mondrian(&table, &qi, sa, &c, &MondrianConfig::default())
                    .map_err(|e| e.to_string())?;
                let ans = PublishedAnswerer::generalized_opt(Arc::clone(&table), &p, catalog);
                partition = Some(Arc::new(p));
                ans
            }
            Algo::Anatomy => PublishedAnswerer::anatomy_opt(Arc::clone(&table), sa, catalog),
            Algo::Perturb => {
                let model = BetaLikeness::new(request.beta).map_err(|e| e.to_string())?;
                let published =
                    perturb(&table, sa, &model, request.seed).map_err(|e| e.to_string())?;
                alphas = Some(published.plan.alphas().to_vec());
                PublishedAnswerer::perturbed_opt(Arc::clone(&table), published, catalog)
            }
        };
        if let Some(stats) = stats {
            answerer.attach_catalog_stats(stats);
        }
        Ok(Arc::new(Artifact {
            handle: request.handle(),
            request,
            dataset,
            qi,
            answerer,
            partition,
            alphas,
            audit: OnceLock::new(),
        }))
    }

    /// Reassembles an artifact from persisted parts (see [`crate::persist`])
    /// without running any pipeline stage. A stored audit is injected into
    /// the once-cell so [`Artifact::audit`] serves the publish-time numbers
    /// verbatim; partition-backed artifacts lacking one (not produced by
    /// this writer, but tolerated) fall back to lazy recomputation — which
    /// is deterministic, hence still bit-identical.
    #[allow(clippy::too_many_arguments)] // a constructor mirroring the struct
    pub fn restored(
        handle: String,
        request: PublishRequest,
        dataset: Arc<Dataset>,
        qi: Vec<usize>,
        answerer: PublishedAnswerer,
        partition: Option<Arc<Partition>>,
        alphas: Option<Vec<f64>>,
        stored_audit: Option<PartitionAudit>,
    ) -> Arc<Self> {
        let audit = OnceLock::new();
        match (&partition, stored_audit) {
            (Some(_), Some(a)) => {
                let _ = audit.set(Some(a));
            }
            (None, _) => {
                // Forms without ECs audit to `None`; pre-resolve it.
                let _ = audit.set(None);
            }
            (Some(_), None) => {}
        }
        Arc::new(Artifact {
            handle,
            request,
            dataset,
            qi,
            answerer,
            partition,
            alphas,
            audit,
        })
    }

    /// The cross-model privacy audit, computed once per artifact. `None`
    /// for publication forms without equivalence classes.
    pub fn audit(&self) -> Option<&PartitionAudit> {
        self.audit
            .get_or_init(|| {
                self.partition
                    .as_ref()
                    .map(|p| audit_partition(self.answerer.source(), p, AUDIT_METRIC))
            })
            .as_ref()
    }

    /// The audit response document for this artifact's form.
    pub fn audit_json(&self) -> Json {
        let kind = self.answerer.kind();
        let mut members = vec![("kind".to_string(), Json::Str(kind.into()))];
        if let Some(a) = self.audit() {
            members.extend([
                ("max_beta".to_string(), Json::Num(a.max_beta)),
                ("avg_beta".to_string(), Json::Num(a.avg_beta)),
                ("max_closeness".to_string(), Json::Num(a.max_closeness)),
                ("avg_closeness".to_string(), Json::Num(a.avg_closeness)),
                (
                    "min_distinct_l".to_string(),
                    Json::Num(a.min_distinct_l as f64),
                ),
                ("avg_distinct_l".to_string(), Json::Num(a.avg_distinct_l)),
                (
                    "min_inv_max_freq_l".to_string(),
                    Json::Num(a.min_inv_max_freq_l),
                ),
                ("max_delta".to_string(), Json::Num(a.max_delta)),
                ("min_ec_size".to_string(), Json::Num(a.min_ec_size as f64)),
                ("num_ecs".to_string(), Json::Num(a.num_ecs as f64)),
            ]);
        } else if let Some(alphas) = &self.alphas {
            let min = alphas.iter().copied().fold(f64::INFINITY, f64::min);
            let avg = alphas.iter().sum::<f64>() / alphas.len().max(1) as f64;
            members.extend([
                ("m".to_string(), Json::Num(alphas.len() as f64)),
                ("min_alpha".to_string(), Json::Num(min)),
                ("avg_alpha".to_string(), Json::Num(avg)),
                ("beta".to_string(), Json::Num(self.request.beta)),
            ]);
        }
        Json::Obj(members)
    }

    /// Number of equivalence classes, for partition-backed artifacts.
    pub fn num_ecs(&self) -> Option<usize> {
        self.partition.as_ref().map(|p| p.num_ecs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::DatasetSpec;
    use betalike_metrics::audit::achieved_beta;

    fn census_request(algo: Algo) -> PublishRequest {
        PublishRequest::new(
            DatasetSpec::Census {
                rows: 1_500,
                seed: 11,
            },
            algo,
        )
    }

    #[test]
    fn publish_every_scheme() {
        let reg = Registry::new();
        for algo in [
            Algo::Burel,
            Algo::Sabre,
            Algo::Mondrian,
            Algo::Anatomy,
            Algo::Perturb,
        ] {
            let art = Artifact::publish(&reg, &census_request(algo)).unwrap();
            assert_eq!(art.handle, census_request(algo).handle());
            match algo {
                Algo::Burel | Algo::Sabre | Algo::Mondrian => {
                    let p = art.partition.as_ref().expect("partition-backed");
                    assert!(p.num_ecs() > 0);
                    assert_eq!(art.qi.len(), 3);
                    let audit = art.audit().expect("partition audit");
                    assert_eq!(audit.num_ecs, p.num_ecs());
                }
                Algo::Anatomy | Algo::Perturb => {
                    assert!(art.partition.is_none());
                    assert!(art.audit().is_none());
                    assert!(art.qi.is_empty());
                }
            }
        }
    }

    #[test]
    fn burel_artifact_honors_beta() {
        let reg = Registry::new();
        let req = census_request(Algo::Burel);
        let art = Artifact::publish(&reg, &req).unwrap();
        let p = art.partition.as_ref().unwrap();
        let achieved = achieved_beta(art.answerer.source(), p);
        assert!(achieved <= req.beta + 1e-9, "achieved β {achieved}");
        let audit = art.audit().unwrap();
        assert_eq!(audit.max_beta.to_bits(), achieved.to_bits());
    }

    #[test]
    fn qi_out_of_range_is_rejected() {
        let reg = Registry::new();
        let mut req = census_request(Algo::Burel);
        req.qi = 9;
        assert!(Artifact::publish(&reg, &req).unwrap_err().contains("1..=5"));
    }

    #[test]
    fn audit_json_forms() {
        let reg = Registry::new();
        let gen = Artifact::publish(&reg, &census_request(Algo::Burel)).unwrap();
        let doc = gen.audit_json();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("generalized"));
        assert!(doc.get("max_beta").unwrap().as_f64().unwrap() > 0.0);
        let pert = Artifact::publish(&reg, &census_request(Algo::Perturb)).unwrap();
        let doc = pert.audit_json();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("perturbed"));
        assert!(doc.get("min_alpha").unwrap().as_f64().unwrap() > 0.0);
    }
}

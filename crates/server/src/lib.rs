//! # betalike-server
//!
//! A resident publish-and-query service over the BUREL pipeline: the
//! missing layer between "a library every consumer relinks" and the
//! paper's actual end product — a *published* table that downstream
//! analysts query with `COUNT(*)` workloads (Sections 5–6).
//!
//! The server holds a [`registry::Registry`] of generator-backed datasets
//! and a content-addressed cache of [`artifact::Artifact`]s: one publish
//! request (dataset × scheme × parameters) is computed once — partition,
//! per-EC query view, Hilbert keys, perturbation plan — and then served to
//! any number of concurrent clients over a newline-delimited JSON TCP
//! protocol ([`wire`]). Because every generator and algorithm in the
//! workspace is seeded and thread-count invariant, a served answer is
//! bit-identical to the same computation done in process; the integration
//! tests and the CI `server-smoke` step assert exactly that.
//!
//! ```text
//! betalike-serve --addr 127.0.0.1:7878 --threads 8 --preload census:10000:42
//! betalike-client --addr 127.0.0.1:7878 smoke
//! ```
//!
//! With `--data-dir DIR` the server is *durable*: fresh publishes are
//! written through to a checksummed on-disk store (`betalike-store`
//! crate) and a restarted server lazily loads previously published
//! handles, answering `count`/`audit` for them bit-identically with zero
//! pipeline recomputation (see [`persist`]).
//!
//! See `DESIGN.md` §8–§9 for the architecture and the README "Serving" /
//! "Durable publications" quickstarts for worked sessions.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
// Backstops betalike-lint rule P1 (request/decode paths are panic-free)
// with rustc's own machinery; test code is exempt, matching P1's scope.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod artifact;
pub mod client;
pub mod conn;
pub mod event;
pub(crate) mod obs;
pub mod persist;
pub mod registry;
pub(crate) mod result_cache;
pub mod server;
pub mod wire;

pub use client::{retry_call, with_retries, Client, ClientError, CountReply, PublishReply};
pub use conn::{Conn, FramedRequest, DEFAULT_MAX_LINE_BYTES};
pub use event::MAX_PIPELINE_INFLIGHT;
pub use registry::{Dataset, DatasetSpec, Registry};
pub use server::{serve, LocalServer, ServerConfig, ServerHandle};
pub use wire::{Algo, CountRequest, PublishRequest};

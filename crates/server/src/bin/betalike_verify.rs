//! `betalike-verify` — the independent conformance oracle on the command
//! line, over every artifact source the stack has.
//!
//! ```text
//! betalike-verify <source> [--battery] [--out REPORT.json]
//!
//! sources (exactly one):
//!   --file F.bpub [--file ...]   verify serialized publication file(s)
//!   --data-dir DIR [--handle H]  verify a betalike-serve data directory
//!                                (every stored artifact, or one handle)
//!   --addr HOST:PORT --handle H  ask a running server to verify one of
//!                                its published handles (server-side
//!                                oracle over the artifact cache/store)
//!
//! flags:
//!   --battery                    also run the adversarial attack battery
//!                                (naive-bayes, definetti, skewness,
//!                                corruption) and assert the paper's
//!                                predicted bounds
//!   --out FILE                   write the machine-readable verdict
//!                                report (a JSON array, one entry per
//!                                artifact) — the CI conformance job
//!                                uploads this artifact
//!
//! exit codes: 0 every artifact passed, 1 any failure, 2 usage error.
//! ```
//!
//! The oracle shares no verification code with the pipeline it audits —
//! see the `betalike-conformance` crate and `DESIGN.md` §10.

use betalike_conformance::{run_battery_snapshot, verify_snapshot, BatteryReport, OracleReport};
use betalike_microdata::json::Json;
use betalike_server::Client;
use betalike_store::{publication_from_slice, ArtifactStore, PublicationSnapshot};
use std::collections::BTreeMap;

fn main() {
    match run() {
        Ok(()) => {}
        Err(Failure { message, code }) => {
            eprintln!("betalike-verify: {message}");
            std::process::exit(code);
        }
    }
}

struct Failure {
    message: String,
    code: i32,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            code: 2,
        }
    }

    fn error(message: impl std::fmt::Display) -> Self {
        Failure {
            message: message.to_string(),
            code: 1,
        }
    }
}

struct Args {
    flags: BTreeMap<String, Vec<String>>,
}

impl Args {
    fn parse() -> Result<Args, Failure> {
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            let Some(key) = arg.strip_prefix("--") else {
                return Err(Failure::usage(format!(
                    "unexpected positional argument `{arg}`"
                )));
            };
            if key == "battery" {
                flags.entry(key.into()).or_default().push("true".into());
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| Failure::usage(format!("--{key} expects a value")))?;
            flags.entry(key.into()).or_default().push(value);
        }
        Ok(Args { flags })
    }

    fn one(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn many(&self, key: &str) -> &[String] {
        self.flags.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// One verified artifact: where it came from, the oracle verdict, and the
/// battery verdict when requested.
struct Verified {
    source: String,
    report: OracleReport,
    battery: Option<Result<BatteryReport, String>>,
}

impl Verified {
    fn pass(&self) -> bool {
        self.report.pass()
            && match &self.battery {
                None => true,
                Some(Ok(b)) => b.pass(),
                Some(Err(_)) => false,
            }
    }

    fn to_json(&self) -> Json {
        let mut members = vec![
            ("source".to_string(), Json::Str(self.source.clone())),
            ("pass".to_string(), Json::Bool(self.pass())),
            ("report".to_string(), self.report.to_json()),
        ];
        match &self.battery {
            None => {}
            Some(Ok(b)) => members.push(("battery".to_string(), b.to_json())),
            Some(Err(e)) => members.push(("battery_error".to_string(), Json::Str(e.clone()))),
        }
        Json::Obj(members)
    }
}

fn verify_one(source: String, snap: &PublicationSnapshot, battery: bool) -> Verified {
    let report = verify_snapshot(snap);
    // A structurally broken artifact cannot host the battery; record the
    // refusal instead of panicking inside an attack.
    let battery = battery.then(|| run_battery_snapshot(snap));
    Verified {
        source,
        report,
        battery,
    }
}

fn run() -> Result<(), Failure> {
    let args = Args::parse()?;
    let battery = args.one("battery").is_some();
    let files = args.many("file");
    let data_dir = args.one("data-dir");
    let addr = args.one("addr");
    let sources = [!files.is_empty(), data_dir.is_some(), addr.is_some()]
        .iter()
        .filter(|&&s| s)
        .count();
    if sources != 1 {
        return Err(Failure::usage(
            "pick exactly one source: --file F.bpub | --data-dir DIR | --addr HOST:PORT",
        ));
    }

    let mut results: Vec<Verified> = Vec::new();
    let mut remote: Vec<(String, Json, bool)> = Vec::new();

    if !files.is_empty() {
        for file in files {
            let bytes =
                std::fs::read(file).map_err(|e| Failure::error(format!("read {file}: {e}")))?;
            let snap = publication_from_slice(&bytes)
                .map_err(|e| Failure::error(format!("{file}: {e}")))?;
            results.push(verify_one(file.clone(), &snap, battery));
        }
    } else if let Some(dir) = data_dir {
        let (store, quarantined) = ArtifactStore::open(dir).map_err(Failure::error)?;
        for handle in &quarantined {
            eprintln!("betalike-verify: quarantined corrupt artifact `{handle}` on open");
        }
        let handles = match args.one("handle") {
            Some(h) => vec![h.to_string()],
            None => store.handles(),
        };
        if handles.is_empty() {
            // A verification gate that verified nothing must not report
            // success — an empty store usually means persistence failed
            // upstream (which `betalike-serve` deliberately only logs).
            return Err(Failure::error(format!(
                "no stored artifacts to verify under {dir}"
            )));
        }
        for handle in handles {
            let snap = store
                .load(&handle)
                .map_err(|e| Failure::error(format!("{handle}: {e}")))?
                .ok_or_else(|| Failure::error(format!("unknown handle `{handle}`")))?;
            results.push(verify_one(format!("{dir}/{handle}"), &snap, battery));
        }
    } else if let Some(addr) = addr {
        let handle = args
            .one("handle")
            .ok_or_else(|| Failure::usage("--addr needs --handle H"))?;
        let mut client =
            Client::connect(addr).map_err(|e| Failure::error(format!("connect {addr}: {e}")))?;
        let doc = client
            .verify(handle, battery)
            .map_err(|e| Failure::error(format!("op `verify` failed: {e}")))?;
        let pass = doc.get("pass").and_then(Json::as_bool).unwrap_or(false)
            && doc
                .get("battery_pass")
                .and_then(Json::as_bool)
                .unwrap_or(true);
        remote.push((format!("{addr}/{handle}"), doc, pass));
    }

    // Print one summary line per artifact, write the report, exit by
    // verdict.
    let mut all_pass = true;
    let mut rows = Vec::new();
    for v in &results {
        all_pass &= v.pass();
        println!("{} {}", if v.pass() { "PASS" } else { "FAIL" }, v.source);
        for check in v.report.failures() {
            println!("  check `{}`: {}", check.name, check.detail);
        }
        match &v.battery {
            Some(Ok(b)) => {
                for verdict in b.verdicts.iter().filter(|x| !x.pass) {
                    println!("  attack `{}`: {}", verdict.attack, verdict.detail);
                }
            }
            Some(Err(e)) => println!("  battery refused: {e}"),
            None => {}
        }
        rows.push(v.to_json());
    }
    for (source, doc, pass) in &remote {
        all_pass &= pass;
        println!(
            "{} {source} (server-side oracle)",
            if *pass { "PASS" } else { "FAIL" }
        );
        rows.push(Json::Obj(vec![
            ("source".to_string(), Json::Str(source.clone())),
            ("pass".to_string(), Json::Bool(*pass)),
            ("response".to_string(), doc.clone()),
        ]));
    }

    if let Some(out) = args.one("out") {
        let doc = Json::Arr(rows);
        std::fs::write(out, doc.pretty() + "\n")
            .map_err(|e| Failure::error(format!("write {out}: {e}")))?;
        println!("wrote {out}");
    }

    if all_pass {
        Ok(())
    } else {
        Err(Failure::error("conformance verification failed"))
    }
}

//! `betalike-client` — a command-line client for `betalike-serve`.
//!
//! ```text
//! betalike-client --addr HOST:PORT [--retries N] [--retry-seed S] <command> [flags]
//!
//! commands:
//!   ping                       round-trip a ping
//!   datasets                   list loaded datasets, resident published
//!                              handles, and stored handles
//!   publish                    publish a dataset; prints the handle
//!     --dataset SPEC           census[:ROWS[:SEED]] | patients | synthetic[:ROWS[:SEED]]
//!     --algo NAME              burel | sabre | mondrian | anatomy | perturb
//!     --qi N --beta B --t T --seed S
//!   count                      one COUNT(*) query against a handle
//!     --handle H [--pred A:LO:HI]... --sa LO:HI [--exact]
//!   audit --handle H           the privacy audit of a handle
//!   verify --handle H          the independent conformance oracle's
//!     [--battery]              verdict (plus the attack battery); exit 1
//!                              if the artifact fails
//!   health                     the server's health document: status,
//!                              queue depth, shed count, store state
//!   metrics                    the server's metrics snapshot as
//!                              Prometheus exposition text (counters,
//!                              gauges, per-op latency histograms with
//!                              p50/p99/p999); `--json` prints the raw
//!                              reply document instead
//!   smoke [--rows N]           full publish → count → audit round trip,
//!                              cross-checked bit-for-bit against the same
//!                              computation done in-process; non-zero exit
//!                              on any mismatch (the CI server-smoke step),
//!                              naming the op that failed
//!   pipeline                   write a batch of requests without waiting
//!     [--depth N]              (depth per connection, default 32) and
//!     [--clients N]            assert the pipelined responses are
//!                              byte-identical to a serial connection's,
//!                              arrive in request order, and pair 1:1 by
//!                              `trace_id`; `--clients` runs N such
//!                              connections concurrently (default 1) —
//!                              the CI pipeline-stress step. See
//!                              docs/WIRE.md "Pipelining".
//!   shutdown                   stop the server
//!
//! `--retries N` re-runs a command up to N extra times when the failure is
//! *retryable* — the server answered `overloaded` / `degraded` /
//! `deadline`, or closed the connection (a restart) — reconnecting before
//! each attempt and backing off with the deterministic jittered schedule
//! of `betalike_faults::RetryPolicy` (`--retry-seed` picks the jitter
//! stream, default 0). Fatal rejections and mismatches never retry.
//!
//! exit codes:
//!   0  success
//!   1  runtime error (connect failure, server-side rejection, mismatch,
//!      retryable refusals still failing after the retry budget)
//!   2  usage error (unknown command, missing or malformed flags) —
//!      reported before any connection is opened
//!   3  the server closed the connection before or during a response
//!      (after exhausting any retry budget)
//! ```

use betalike::model::BetaLikeness;
use betalike::{burel, perturb, BurelConfig};
use betalike_faults::{RetryPolicy, Sleeper, ThreadSleeper};
use betalike_metrics::audit::audit_partition;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::json::Json;
use betalike_query::{generate_workload, AggQuery, PublishedAnswerer, RangePred, WorkloadConfig};
use betalike_server::artifact::AUDIT_METRIC;
use betalike_server::{Algo, Client, ClientError, CountRequest, DatasetSpec, PublishRequest};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

/// Exit code for a usage error — unknown command, missing or malformed
/// flags. Distinct from runtime errors (1) so scripts can tell "my
/// invocation is wrong, retrying is pointless" from "the server rejected
/// this request". Usage errors are reported before any connection is
/// opened: whether the invocation parses must not depend on whether a
/// server happens to be reachable.
const EXIT_USAGE: i32 = 2;

/// Exit code for a connection the server closed before or mid-response —
/// scripts can tell "server went away" (retry / restart) from "request was
/// wrong" without scraping messages.
const EXIT_DISCONNECTED: i32 = 3;

/// A failure with the process exit code it maps to, and whether a
/// reconnect-and-retry could clear it (drives `--retries`).
struct Failure {
    message: String,
    code: i32,
    retryable: bool,
}

impl Failure {
    fn usage(message: impl Into<String>) -> Self {
        Failure {
            message: message.into(),
            code: EXIT_USAGE,
            retryable: false,
        }
    }
}

impl From<String> for Failure {
    fn from(message: String) -> Self {
        Failure {
            message,
            code: 1,
            retryable: false,
        }
    }
}

impl From<&str> for Failure {
    fn from(message: &str) -> Self {
        Failure::from(message.to_string())
    }
}

/// Maps a client error during `op` to a [`Failure`], naming the op,
/// giving mid-response disconnections their distinct exit code, and
/// carrying the wire-level retryable classification through.
fn op_failed(op: &str) -> impl Fn(ClientError) -> Failure + '_ {
    move |e| Failure {
        code: match e {
            ClientError::Disconnected(_) => EXIT_DISCONNECTED,
            _ => 1,
        },
        retryable: e.is_retryable(),
        message: format!("op `{op}` failed: {e}"),
    }
}

fn main() {
    let result = run();
    let code = exit_code(&result);
    if let Err(Failure { message, .. }) = result {
        eprintln!("betalike-client: {message}");
    }
    std::process::exit(code);
}

/// The single place the documented exit-code contract is realized — the
/// per-code unit tests drive this.
fn exit_code(result: &Result<(), Failure>) -> i32 {
    match result {
        Ok(()) => 0,
        Err(f) => f.code,
    }
}

struct Args {
    command: String,
    flags: BTreeMap<String, Vec<String>>,
}

impl Args {
    fn parse() -> Result<Args, String> {
        let mut command = None;
        let mut flags: BTreeMap<String, Vec<String>> = BTreeMap::new();
        let mut it = std::env::args().skip(1);
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                if key == "exact" || key == "battery" || key == "json" {
                    flags.entry(key.into()).or_default().push("true".into());
                    continue;
                }
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                flags.entry(key.into()).or_default().push(value);
            } else if command.is_none() {
                command = Some(arg);
            } else {
                return Err(format!("unexpected positional argument `{arg}`"));
            }
        }
        Ok(Args {
            command: command
                .ok_or_else(|| format!("no command (expected one of: {})", COMMANDS.join(" | ")))?,
            flags,
        })
    }

    fn one(&self, key: &str) -> Option<&str> {
        self.flags
            .get(key)
            .and_then(|v| v.last())
            .map(String::as_str)
    }

    fn required(&self, key: &str) -> Result<&str, String> {
        self.one(key).ok_or_else(|| format!("--{key} is required"))
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.one(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
        }
    }
}

/// Every command the client understands, in the order the doc header
/// lists them. Checked before any connection is opened so an unknown
/// command is a usage error regardless of whether a server is reachable.
const COMMANDS: &[&str] = &[
    "ping", "datasets", "publish", "count", "audit", "verify", "health", "metrics", "smoke",
    "pipeline", "shutdown",
];

/// Dials `addr` and runs one command attempt per fresh connection,
/// re-running *retryable* failures with the policy's deterministic
/// jittered backoff. Connect failures are fatal — "nothing is listening"
/// is not an overload signal — and the last attempt's failure is returned
/// as-is, so exit codes (1 vs 3) survive the retry wrapper.
fn attempt(
    addr: &str,
    policy: &RetryPolicy,
    mut f: impl FnMut(&mut Client) -> Result<(), Failure>,
) -> Result<(), Failure> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        let mut client =
            Client::connect(addr).map_err(|e| Failure::from(format!("connect {addr}: {e}")))?;
        match f(&mut client) {
            Ok(()) => return Ok(()),
            Err(failure) => {
                if attempt >= attempts || !failure.retryable {
                    return Err(failure);
                }
                eprintln!(
                    "betalike-client: attempt {attempt}/{attempts} failed retryably \
                     ({}); backing off",
                    failure.message
                );
                ThreadSleeper.sleep(Duration::from_millis(policy.delay_ms(attempt)));
            }
        }
    }
    Err(Failure::from("retry loop made no attempt"))
}

fn run() -> Result<(), Failure> {
    let args = Args::parse().map_err(Failure::usage)?;
    if !COMMANDS.contains(&args.command.as_str()) {
        return Err(Failure::usage(format!(
            "unknown command `{}` (expected one of: {})",
            args.command,
            COMMANDS.join(" | ")
        )));
    }
    let addr = args.required("addr").map_err(Failure::usage)?;
    let retries: u32 = args.num("retries", 0u32).map_err(Failure::usage)?;
    let retry_seed: u64 = args.num("retry-seed", 0u64).map_err(Failure::usage)?;
    let policy = RetryPolicy::standard(retries.saturating_add(1), retry_seed);
    match args.command.as_str() {
        "ping" => attempt(addr, &policy, |client| {
            client.ping().map_err(op_failed("ping"))?;
            println!("pong");
            Ok(())
        }),
        "datasets" => attempt(addr, &policy, |client| {
            let doc = client.datasets().map_err(op_failed("datasets"))?;
            println!("{}", doc.pretty());
            Ok(())
        }),
        "publish" => {
            let request = publish_request(&args).map_err(Failure::usage)?;
            attempt(addr, &policy, |client| {
                let reply = client.publish(&request).map_err(op_failed("publish"))?;
                println!(
                    "{} kind={} cached={}{}",
                    reply.handle,
                    reply.kind,
                    reply.cached,
                    reply.ecs.map(|n| format!(" ecs={n}")).unwrap_or_default()
                );
                Ok(())
            })
        }
        "count" => {
            let request = count_request(&args).map_err(Failure::usage)?;
            attempt(addr, &policy, |client| {
                let reply = client.count(&request).map_err(op_failed("count"))?;
                match reply.exact {
                    Some(exact) => println!("estimate={} exact={exact}", reply.estimate),
                    None => println!("estimate={}", reply.estimate),
                }
                Ok(())
            })
        }
        "audit" => {
            let handle = args.required("handle").map_err(Failure::usage)?;
            attempt(addr, &policy, |client| {
                let doc = client.audit(handle).map_err(op_failed("audit"))?;
                println!("{}", doc.pretty());
                Ok(())
            })
        }
        "verify" => {
            let handle = args.required("handle").map_err(Failure::usage)?;
            let battery = args.one("battery").is_some();
            attempt(addr, &policy, |client| {
                let doc = client
                    .verify(handle, battery)
                    .map_err(op_failed("verify"))?;
                println!("{}", doc.pretty());
                let pass = doc.get("pass").and_then(Json::as_bool).unwrap_or(false);
                let battery_pass = doc
                    .get("battery_pass")
                    .and_then(Json::as_bool)
                    .unwrap_or(true);
                if !(pass && battery_pass) {
                    return Err(Failure::from("artifact failed conformance verification"));
                }
                Ok(())
            })
        }
        "health" => attempt(addr, &policy, |client| {
            let doc = client.health().map_err(op_failed("health"))?;
            println!("{}", doc.pretty());
            Ok(())
        }),
        "metrics" => {
            let raw = args.one("json").is_some();
            attempt(addr, &policy, |client| {
                let doc = client.metrics().map_err(op_failed("metrics"))?;
                if raw {
                    println!("{}", doc.pretty());
                } else {
                    // The scrape format: what a Prometheus exporter serves.
                    match doc.get("prometheus").and_then(Json::as_str) {
                        Some(text) => print!("{text}"),
                        None => return Err(Failure::from("metrics reply missing `prometheus`")),
                    }
                }
                Ok(())
            })
        }
        // The smoke is idempotent end to end (publishes are
        // content-addressed), so the whole round trip re-runs per attempt.
        "smoke" => {
            let rows = args.num("rows", 2_000usize).map_err(Failure::usage)?;
            attempt(addr, &policy, |client| smoke(client, rows))
        }
        "pipeline" => {
            let depth = args.num("depth", 32usize).map_err(Failure::usage)?;
            let clients = args.num("clients", 1usize).map_err(Failure::usage)?;
            if depth == 0 || clients == 0 {
                return Err(Failure::usage("--depth and --clients must be at least 1"));
            }
            pipeline_stress(addr, depth, clients)
        }
        "shutdown" => attempt(addr, &policy, |client| {
            client.shutdown_server().map_err(op_failed("shutdown"))?;
            println!("server stopping");
            Ok(())
        }),
        // Unreachable: the command was validated against COMMANDS above.
        other => Err(Failure::usage(format!("unknown command `{other}`"))),
    }
}

/// The deterministic request mix one pipelined connection sends: pings,
/// `datasets` listings, and a `count` against an unknown handle (a
/// deterministic *error* response, so ordering is checked across the
/// error path too), each tagged with a unique `trace_id`.
fn pipeline_requests(client_id: usize, depth: usize) -> Vec<String> {
    (0..depth)
        .map(|i| {
            let trace = format!("c{client_id}-{i}");
            match i % 3 {
                0 => format!("{{\"op\":\"ping\",\"trace_id\":\"{trace}\"}}"),
                1 => format!("{{\"op\":\"datasets\",\"trace_id\":\"{trace}\"}}"),
                _ => format!(
                    "{{\"op\":\"count\",\"handle\":\"no-such-handle\",\
                     \"sa\":{{\"lo\":0,\"hi\":1}},\"trace_id\":\"{trace}\"}}"
                ),
            }
        })
        .collect()
}

/// One connection's pipelining check: the batch of `depth` requests is
/// first answered serially (one call, one read) for a reference
/// transcript, then written all at once — the responses must come back
/// byte-identical, in request order, each echoing its request's
/// `trace_id`.
fn pipeline_once(addr: &str, client_id: usize, depth: usize) -> Result<(), Failure> {
    let lines = pipeline_requests(client_id, depth);
    let mut serial =
        Client::connect(addr).map_err(|e| Failure::from(format!("connect {addr}: {e}")))?;
    let mut reference = Vec::with_capacity(depth);
    for line in &lines {
        reference.push(serial.call_raw(line).map_err(|e| {
            Failure::from(format!("client {client_id}: serial reference failed: {e}"))
        })?);
    }
    let mut piped =
        Client::connect(addr).map_err(|e| Failure::from(format!("connect {addr}: {e}")))?;
    let answers = piped
        .pipeline_raw(&lines)
        .map_err(|e| Failure::from(format!("client {client_id}: pipelined batch failed: {e}")))?;
    for (i, (got, want)) in answers.iter().zip(&reference).enumerate() {
        if got != want {
            return Err(Failure::from(format!(
                "client {client_id}: response {i} diverged from the serial transcript:\n  \
                 pipelined: {got}\n  serial:    {want}"
            )));
        }
        let trace = Json::parse(got)
            .ok()
            .and_then(|doc| doc.get("trace_id").and_then(Json::as_str).map(String::from))
            .unwrap_or_default();
        let expected = format!("c{client_id}-{i}");
        if trace != expected {
            return Err(Failure::from(format!(
                "client {client_id}: response {i} echoes trace_id `{trace}`, expected \
                 `{expected}` — responses are out of request order"
            )));
        }
    }
    Ok(())
}

/// `clients` concurrent connections, each pipelining `depth` requests
/// and checking its own transcript — the CI pipeline-stress workload.
/// Concurrency goes through the workspace pool (one worker per client)
/// so thread creation stays centrally controlled.
fn pipeline_stress(addr: &str, depth: usize, clients: usize) -> Result<(), Failure> {
    mini_rayon::set_threads(clients.clamp(1, 64));
    let ids: Vec<usize> = (0..clients).collect();
    let results = mini_rayon::par_map(&ids, |&id| pipeline_once(addr, id, depth));
    if let Some(first) = results.into_iter().find_map(Result::err) {
        return Err(first);
    }
    println!("PIPELINE OK: {clients} clients x depth {depth} byte-identical and in order");
    Ok(())
}

fn publish_request(args: &Args) -> Result<PublishRequest, String> {
    let dataset = DatasetSpec::parse_cli(args.one("dataset").unwrap_or("census"))?;
    let algo = Algo::parse(args.one("algo").unwrap_or("burel"))?;
    Ok(PublishRequest {
        dataset,
        algo,
        qi: args.num("qi", 3usize)?,
        beta: args.num("beta", 4.0f64)?,
        t: args.num("t", 0.2f64)?,
        seed: args.num("seed", 42u64)?,
    }
    .normalized())
}

fn count_request(args: &Args) -> Result<CountRequest, String> {
    let triple = |text: &str| -> Result<Vec<u32>, String> {
        text.split(':')
            .map(|p| p.parse().map_err(|_| format!("bad code `{p}` in `{text}`")))
            .collect()
    };
    let mut qi_preds = Vec::new();
    for pred in args.flags.get("pred").map(Vec::as_slice).unwrap_or(&[]) {
        match triple(pred)?.as_slice() {
            &[attr, lo, hi] => qi_preds.push(RangePred {
                attr: attr as usize,
                lo,
                hi,
            }),
            _ => return Err(format!("--pred expects A:LO:HI, got `{pred}`")),
        }
    }
    let sa = triple(args.required("sa")?)?;
    let &[sa_lo, sa_hi] = sa.as_slice() else {
        return Err("--sa expects LO:HI".into());
    };
    Ok(CountRequest {
        handle: args.required("handle")?.to_string(),
        qi_preds,
        sa_lo,
        sa_hi,
        exact: args.one("exact").is_some(),
    })
}

/// The CI round trip: publish BUREL and perturbation artifacts over TCP,
/// then verify every served count, exact count and audit field is
/// bit-identical to the same computation done in this process. Every
/// failure names the op that broke (and mismatches name the query), so a
/// red CI smoke points at the offending request, not just "smoke failed".
fn smoke(client: &mut Client, rows: usize) -> Result<(), Failure> {
    client.ping().map_err(op_failed("ping"))?;

    let dataset = DatasetSpec::Census { rows, seed: 42 };
    let table = Arc::new(census::generate(&CensusConfig::new(rows, 42)));
    let qi: Vec<usize> = (0..3).collect();
    let sa = census::attr::SALARY;
    let queries = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: qi.clone(),
            sa,
            lambda: 2,
            theta: 0.15,
            num_queries: 40,
            seed: 7,
        },
    );

    // BUREL over TCP vs in process.
    let request = PublishRequest::new(dataset.clone(), Algo::Burel);
    let reply = client
        .publish(&request)
        .map_err(op_failed("publish burel"))?;
    let partition = burel(
        &table,
        &qi,
        sa,
        &BurelConfig::new(request.beta).with_seed(request.seed),
    )
    .map_err(|e| Failure::from(e.to_string()))?;
    let answerer = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
    if reply.ecs != Some(partition.num_ecs() as u64) {
        return Err(Failure::from(format!(
            "op `publish burel` answer mismatch: served {:?} ECs, local {}",
            reply.ecs,
            partition.num_ecs()
        )));
    }
    check_counts(client, "count (burel)", &reply.handle, &answerer, &queries)?;

    // Audit fields, bitwise.
    let served = client
        .audit(&reply.handle)
        .map_err(op_failed("audit (burel)"))?;
    let local = audit_partition(&table, &partition, AUDIT_METRIC);
    for (key, want) in [
        ("max_beta", local.max_beta),
        ("avg_beta", local.avg_beta),
        ("max_closeness", local.max_closeness),
        ("avg_closeness", local.avg_closeness),
        ("min_ec_size", local.min_ec_size as f64),
        ("num_ecs", local.num_ecs as f64),
    ] {
        let got = served
            .get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| Failure::from(format!("audit reply missing `{key}`")))?;
        if got.to_bits() != want.to_bits() {
            return Err(Failure::from(format!(
                "op `audit (burel)` mismatch on `{key}`: served {got}, local {want}"
            )));
        }
    }

    // Perturbation over TCP vs in process.
    let request = PublishRequest::new(dataset.clone(), Algo::Perturb);
    let reply = client
        .publish(&request)
        .map_err(op_failed("publish perturb"))?;
    let model = BetaLikeness::new(request.beta).map_err(|e| Failure::from(e.to_string()))?;
    let published =
        perturb(&table, sa, &model, request.seed).map_err(|e| Failure::from(e.to_string()))?;
    let answerer = PublishedAnswerer::perturbed(Arc::clone(&table), published);
    check_counts(
        client,
        "count (perturb)",
        &reply.handle,
        &answerer,
        &queries,
    )?;

    // A republish must be a cache hit on the same handle.
    let again = client
        .publish(&PublishRequest::new(dataset, Algo::Burel))
        .map_err(op_failed("republish burel"))?;
    if !again.cached {
        return Err(Failure::from(
            "op `republish burel`: not served from the artifact cache",
        ));
    }

    println!(
        "SMOKE OK: {} queries x 2 schemes bit-identical over TCP (census {rows} rows)",
        queries.len()
    );
    Ok(())
}

fn check_counts(
    client: &mut Client,
    op: &str,
    handle: &str,
    answerer: &PublishedAnswerer,
    queries: &[AggQuery],
) -> Result<(), Failure> {
    for query in queries {
        let request = CountRequest {
            handle: handle.to_string(),
            qi_preds: query.qi_preds.clone(),
            sa_lo: query.sa_pred.lo,
            sa_hi: query.sa_pred.hi,
            exact: true,
        };
        let served = client.count(&request).map_err(op_failed(op))?;
        let local = answerer
            .estimate(query)
            .map_err(|e| Failure::from(e.to_string()))?;
        if served.estimate.to_bits() != local.to_bits() {
            return Err(Failure::from(format!(
                "op `{op}` estimate mismatch on {query:?}: served {}, local {local}",
                served.estimate
            )));
        }
        let exact = answerer.exact(query);
        if served.exact != Some(exact) {
            return Err(Failure::from(format!(
                "op `{op}` exact mismatch on {query:?}: served {:?}, local {exact}",
                served.exact
            )));
        }
    }
    Ok(())
}

// One test per documented exit code, all driven through `exit_code` — the
// same function `main` uses — so the doc-header contract cannot drift
// from the implementation silently.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_exits_0() {
        assert_eq!(exit_code(&Ok(())), 0);
    }

    #[test]
    fn runtime_errors_exit_1() {
        let rejection = op_failed("publish")(ClientError::Server("β out of range".into()));
        assert_eq!(exit_code(&Err(rejection)), 1);
        let mismatch = Failure::from("op `count` estimate mismatch".to_string());
        assert_eq!(exit_code(&Err(mismatch)), 1);
    }

    #[test]
    fn usage_errors_exit_2() {
        assert_eq!(exit_code(&Err(Failure::usage("unknown command `pong`"))), 2);
        assert_eq!(EXIT_USAGE, 2);
    }

    #[test]
    fn disconnects_exit_3() {
        let gone = op_failed("count")(ClientError::Disconnected("mid-response close".into()));
        assert_eq!(exit_code(&Err(gone)), EXIT_DISCONNECTED);
        assert_eq!(EXIT_DISCONNECTED, 3);
    }

    #[test]
    fn unknown_commands_are_usage_errors_and_name_the_roster() {
        // The roster the error message offers must be exactly the command
        // set `run` accepts (every arm in its match).
        for cmd in COMMANDS {
            assert!([
                "ping", "datasets", "publish", "count", "audit", "verify", "health", "metrics",
                "smoke", "pipeline", "shutdown"
            ]
            .contains(cmd));
        }
    }

    #[test]
    fn io_errors_are_runtime_not_disconnect() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "reset");
        assert_eq!(exit_code(&Err(op_failed("ping")(ClientError::Io(io)))), 1);
    }

    #[test]
    fn retryable_classification_flows_into_failures() {
        // Wire-level retryable refusals drive `--retries`; fatal
        // rejections and local mismatches never do.
        let shed = op_failed("publish")(ClientError::Retryable {
            code: "overloaded".into(),
            message: "queue full".into(),
        });
        assert!(shed.retryable);
        assert_eq!(exit_code(&Err(shed)), 1);
        let gone = op_failed("count")(ClientError::Disconnected("mid-response".into()));
        assert!(gone.retryable, "a restarting server is worth re-dialing");
        assert!(!op_failed("publish")(ClientError::Server("β out of range".into())).retryable);
        assert!(!Failure::from("op `count` estimate mismatch").retryable);
        assert!(!Failure::usage("unknown flag").retryable);
    }
}

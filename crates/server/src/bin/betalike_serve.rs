//! `betalike-serve` — the resident publication server.
//!
//! ```text
//! betalike-serve [--addr HOST:PORT] [--threads N] [--preload SPEC]
//!                [--data-dir DIR]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:7878`; port `0` binds an ephemeral
//!   port. Once bound, the server prints `LISTENING <addr>` on stdout (the
//!   CI smoke script scrapes this line to find the port).
//! * `--threads` sizes the worker pool (default `max(8, cores)`).
//! * `--preload` materializes a dataset before accepting traffic, e.g.
//!   `census:10000:42`, `patients`, `synthetic:1000:7`.
//! * `--data-dir` enables durable publications: fresh publishes are
//!   written through to `DIR/artifacts/` and handles published by earlier
//!   processes are lazily loaded and served bit-identically — no
//!   recomputation on restart. Inspect the directory offline with
//!   `betalike-store`.
//!
//! The process runs until a client sends `{"op":"shutdown"}`.

use betalike_server::{serve, DatasetSpec, ServerConfig};
use std::io::Write;

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..Default::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--threads" => {
                cfg.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            "--preload" => match DatasetSpec::parse_cli(&value("--preload")) {
                Ok(spec) => cfg.preload = Some(spec),
                Err(e) => {
                    eprintln!("--preload: {e}");
                    std::process::exit(2);
                }
            },
            "--data-dir" => cfg.data_dir = Some(value("--data-dir").into()),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: betalike-serve [--addr HOST:PORT] [--threads N] [--preload SPEC] \
                     [--data-dir DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    let handle = match serve(&cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // The contract with scripts: exactly one LISTENING line, flushed before
    // any client could need it.
    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("server stopped");
}

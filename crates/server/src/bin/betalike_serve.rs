//! `betalike-serve` — the resident publication server.
//!
//! ```text
//! betalike-serve [--addr HOST:PORT] [--threads N] [--preload SPEC]
//!                [--data-dir DIR] [--queue N] [--read-timeout-ms MS]
//!                [--idle-timeout-ms MS] [--request-timeout-ms MS]
//!                [--no-catalog] [--result-cache N] [--no-obs]
//!                [--log-level LEVEL] [--log-json] [--slow-query-ms MS]
//!                [--event-loops N] [--max-line-bytes N]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:7878`; port `0` binds an ephemeral
//!   port. Once bound, the server prints `LISTENING <addr>` on stdout (the
//!   CI smoke script scrapes this line to find the port).
//! * `--threads` sizes the worker pool (default `max(8, cores)`).
//! * `--preload` materializes a dataset before accepting traffic, e.g.
//!   `census:10000:42`, `patients`, `synthetic:1000:7`.
//! * `--data-dir` enables durable publications: fresh publishes are
//!   written through to `DIR/artifacts/` and handles published by earlier
//!   processes are lazily loaded and served bit-identically — no
//!   recomputation on restart. Inspect the directory offline with
//!   `betalike-store`.
//! * `--queue` bounds the admission queue (default 64): connections
//!   beyond busy workers + queue are refused with one retryable
//!   `overloaded` error line instead of piling up unread.
//! * `--read-timeout-ms` sets the worker read poll tick (default 200) —
//!   the shutdown-latency bound and the resolution of the two timeouts
//!   below. `--idle-timeout-ms` closes connections idle between requests
//!   (0 = never, the default); `--request-timeout-ms` bounds how long a
//!   started request line may take to finish (0 = never), answering a
//!   retryable `deadline` error on expiry. See DESIGN.md §12.
//! * `--no-catalog` publishes and restores artifacts without aggregate
//!   catalogs, forcing every `count` through the row-scan path — answers
//!   are bit-identical, only slower (the A/B the `perf catalog` benchmark
//!   measures; see DESIGN.md §13 and the README "Query performance"
//!   quickstart).
//! * `--result-cache` caps the per-process `count` result cache in
//!   entries (default 1024; `0` disables it). Hits replay the stored
//!   response byte-identically; `health` reports hit/miss/size gauges.
//! * `--no-obs` turns request *timings* off: per-op latency histograms,
//!   pipeline spans, and the slow-query log stop reading the clock.
//!   Counters and gauges (`health`, `metrics`) still update, and
//!   responses are byte-identical either way (see DESIGN.md §14).
//! * `--log-level` sets the structured stderr log level
//!   (`off | error | warn | info | debug`; default `warn`, or the
//!   `BETALIKE_LOG` environment variable when set). `--log-json` emits
//!   one JSON object per line instead of `key=value` text.
//! * `--slow-query-ms` logs one `warn` line, with the request's per-span
//!   timing breakdown, for every request slower than MS milliseconds
//!   (`0`, the default, disables the slow-query log).
//! * `--event-loops` selects the event-driven core with N readiness
//!   loops (`0`, the default, keeps the threaded core). Connections are
//!   multiplexed over non-blocking sockets and clients may *pipeline*
//!   requests — responses come back in request order with `trace_id`s
//!   echoed for pairing; `--threads` sizes the compute pool behind the
//!   loops. See DESIGN.md §15 and docs/WIRE.md "Pipelining".
//! * `--max-line-bytes` bounds a request line (default 1 MiB). An
//!   oversized line is answered with one parseable fatal `too_large`
//!   error and the connection closes — under either core.
//!
//! Each timing/queue flag also reads an environment fallback when the
//! flag is absent: `BETALIKE_READ_TIMEOUT_MS`, `BETALIKE_IDLE_TIMEOUT_MS`,
//! `BETALIKE_REQUEST_TIMEOUT_MS`, `BETALIKE_QUEUE`,
//! `BETALIKE_RESULT_CACHE`, `BETALIKE_EVENT_LOOPS`,
//! `BETALIKE_MAX_LINE_BYTES` — so a supervisor can retune a deployment
//! without editing its unit files.
//!
//! The process runs until a client sends `{"op":"shutdown"}`.

use betalike_obs::{Level, Logger};
use betalike_server::{serve, DatasetSpec, ServerConfig};
use std::io::Write;

/// The flag value, or its `BETALIKE_*` environment fallback, parsed — a
/// malformed value from either source is a usage error (exit 2).
fn numeric(flag: &str, env: &str, cli: Option<String>) -> u64 {
    let (source, text) = match cli {
        Some(text) => (flag.to_string(), text),
        None => match std::env::var(env) {
            Ok(text) => (env.to_string(), text),
            Err(_) => return 0,
        },
    };
    text.parse().unwrap_or_else(|_| {
        eprintln!("{source} expects a non-negative number, got `{text}`");
        std::process::exit(2);
    })
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7878".into(),
        ..Default::default()
    };
    let mut read_timeout = None;
    let mut idle_timeout = None;
    let mut request_timeout = None;
    let mut queue = None;
    let mut result_cache = None;
    let mut slow_query = None;
    let mut event_loops = None;
    let mut max_line_bytes = None;
    cfg.log_level = Logger::level_from_env().unwrap_or(Level::Warn);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => cfg.addr = value("--addr"),
            "--threads" => {
                cfg.threads = value("--threads").parse().unwrap_or_else(|_| {
                    eprintln!("--threads expects a number");
                    std::process::exit(2);
                })
            }
            "--preload" => match DatasetSpec::parse_cli(&value("--preload")) {
                Ok(spec) => cfg.preload = Some(spec),
                Err(e) => {
                    eprintln!("--preload: {e}");
                    std::process::exit(2);
                }
            },
            "--data-dir" => cfg.data_dir = Some(value("--data-dir").into()),
            "--read-timeout-ms" => read_timeout = Some(value("--read-timeout-ms")),
            "--idle-timeout-ms" => idle_timeout = Some(value("--idle-timeout-ms")),
            "--request-timeout-ms" => request_timeout = Some(value("--request-timeout-ms")),
            "--queue" => queue = Some(value("--queue")),
            "--no-catalog" => cfg.catalog = false,
            "--result-cache" => result_cache = Some(value("--result-cache")),
            "--no-obs" => cfg.obs = false,
            "--log-level" => {
                let text = value("--log-level");
                cfg.log_level = Level::parse(&text).unwrap_or_else(|| {
                    eprintln!("--log-level expects off|error|warn|info|debug, got `{text}`");
                    std::process::exit(2);
                })
            }
            "--log-json" => cfg.log_json = true,
            "--slow-query-ms" => slow_query = Some(value("--slow-query-ms")),
            "--event-loops" => event_loops = Some(value("--event-loops")),
            "--max-line-bytes" => max_line_bytes = Some(value("--max-line-bytes")),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: betalike-serve [--addr HOST:PORT] [--threads N] [--preload SPEC] \
                     [--data-dir DIR] [--queue N] [--read-timeout-ms MS] [--idle-timeout-ms MS] \
                     [--request-timeout-ms MS] [--no-catalog] [--result-cache N] [--no-obs] \
                     [--log-level LEVEL] [--log-json] [--slow-query-ms MS] [--event-loops N] \
                     [--max-line-bytes N]"
                );
                std::process::exit(2);
            }
        }
    }
    cfg.read_timeout_ms = numeric(
        "--read-timeout-ms",
        "BETALIKE_READ_TIMEOUT_MS",
        read_timeout,
    );
    cfg.idle_timeout_ms = numeric(
        "--idle-timeout-ms",
        "BETALIKE_IDLE_TIMEOUT_MS",
        idle_timeout,
    );
    cfg.request_timeout_ms = numeric(
        "--request-timeout-ms",
        "BETALIKE_REQUEST_TIMEOUT_MS",
        request_timeout,
    );
    cfg.queue = numeric("--queue", "BETALIKE_QUEUE", queue) as usize;
    cfg.slow_query_ms = numeric("--slow-query-ms", "BETALIKE_SLOW_QUERY_MS", slow_query);
    cfg.event_loops = numeric("--event-loops", "BETALIKE_EVENT_LOOPS", event_loops) as usize;
    cfg.max_line_bytes = numeric(
        "--max-line-bytes",
        "BETALIKE_MAX_LINE_BYTES",
        max_line_bytes,
    ) as usize;
    // Unlike the flags above, the cache default is non-zero (`0` means
    // *disabled*), so only an explicit flag or environment value overrides.
    if result_cache.is_some() || std::env::var("BETALIKE_RESULT_CACHE").is_ok() {
        cfg.result_cache =
            numeric("--result-cache", "BETALIKE_RESULT_CACHE", result_cache) as usize;
    }
    let handle = match serve(&cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {}: {e}", cfg.addr);
            std::process::exit(1);
        }
    };
    // The contract with scripts: exactly one LISTENING line, flushed before
    // any client could need it.
    println!("LISTENING {}", handle.addr());
    let _ = std::io::stdout().flush();
    handle.join();
    println!("server stopped");
}

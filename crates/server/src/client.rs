//! A tiny blocking client for the wire protocol — what the integration
//! tests, the perf harness's `serve` mode, and the `betalike-client`
//! binary all speak through.

use crate::wire::{CountRequest, PublishRequest};
use betalike_microdata::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// Everything a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(std::io::Error),
    /// The server closed the connection instead of answering (before any
    /// response byte, or mid-line). Distinct from [`ClientError::Io`] so
    /// callers — `betalike-client` maps this to its own exit code — can
    /// tell "the server went away" from "my network is broken", and
    /// distinct from [`ClientError::Protocol`] so a truncated response is
    /// not misreported as malformed JSON.
    Disconnected(String),
    /// The server answered `ok: false`.
    Server(String),
    /// The server answered something that is not a protocol response.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful publish acknowledgment.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishReply {
    /// The content-addressed artifact handle.
    pub handle: String,
    /// The publication form (`generalized` / `perturbed` / `anatomy`).
    pub kind: String,
    /// Equivalence classes, for partition-backed artifacts.
    pub ecs: Option<u64>,
    /// Whether the artifact was already resident (a republish).
    pub cached: bool,
}

/// A successful count answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReply {
    /// The estimate from the published form.
    pub estimate: f64,
    /// The exact count, when the request asked for it.
    pub exact: Option<u64>,
}

/// One blocking connection to a `betalike-serve` instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // One round trip per request line: Nagle + delayed ACK would add
        // ~40ms to every call.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (without the trailing newline). The byte-identity tests compare
    /// these lines directly.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a server that closes the connection
    /// instead of answering is `UnexpectedEof` — both the empty read and
    /// the *partial* line without a terminating `\n` (a mid-response
    /// close, which would otherwise be misdiagnosed downstream as a JSON
    /// parse error).
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        if !response.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed the connection mid-response ({n} bytes of a partial line)"),
            ));
        }
        Ok(response.trim_end_matches(['\n', '\r']).to_string())
    }

    /// Sends one request document and returns the parsed `ok: true`
    /// response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server rejects the request,
    /// [`ClientError::Protocol`] when the response is not protocol JSON,
    /// [`ClientError::Disconnected`] when the server closes the connection
    /// before or during the response.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        let line = self.call_raw(&request.compact()).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ClientError::Disconnected(e.to_string())
            } else {
                ClientError::Io(e)
            }
        })?;
        let doc =
            Json::parse(&line).map_err(|e| ClientError::Protocol(format!("{e} in `{line}`")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => Err(ClientError::Server(
                doc.get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string(),
            )),
            None => Err(ClientError::Protocol(format!("no `ok` member in `{line}`"))),
        }
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("ping".into()),
        )]))
        .map(|_| ())
    }

    /// Lists what the server knows: loaded dataset keys, resident
    /// published handles, and (when a store is attached) stored handles.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the reply
    /// lacks the `datasets` array.
    pub fn datasets(&mut self) -> Result<Json, ClientError> {
        let doc = self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("datasets".into()),
        )]))?;
        if doc.get("datasets").is_none() {
            return Err(ClientError::Protocol(
                "datasets reply missing `datasets`".into(),
            ));
        }
        Ok(doc)
    }

    /// Publishes (or re-addresses) an artifact.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the
    /// acknowledgment is malformed.
    pub fn publish(&mut self, request: &PublishRequest) -> Result<PublishReply, ClientError> {
        let doc = self.call(&request.to_json())?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("publish reply missing `{key}`")))
        };
        Ok(PublishReply {
            handle: field("handle")?,
            kind: field("kind")?,
            ecs: doc.get("ecs").and_then(Json::as_u64),
            cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Runs one count query against a published handle.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the answer is
    /// malformed.
    pub fn count(&mut self, request: &CountRequest) -> Result<CountReply, ClientError> {
        let doc = self.call(&request.to_json())?;
        let estimate = doc
            .get("estimate")
            .and_then(Json::as_f64)
            .ok_or_else(|| ClientError::Protocol("count reply missing `estimate`".into()))?;
        Ok(CountReply {
            estimate,
            exact: doc.get("exact").and_then(Json::as_u64),
        })
    }

    /// Fetches the privacy audit of a published handle.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn audit(&mut self, handle: &str) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![
            ("op".to_string(), Json::Str("audit".into())),
            ("handle".to_string(), Json::Str(handle.into())),
        ]))
    }

    /// Runs the server-side conformance oracle over a published handle
    /// (optionally with the adversarial attack battery) and returns the
    /// verdict document.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn verify(&mut self, handle: &str, battery: bool) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![
            ("op".to_string(), Json::Str("verify".into())),
            ("handle".to_string(), Json::Str(handle.into())),
            ("battery".to_string(), Json::Bool(battery)),
        ]))
    }

    /// Asks the server to stop accepting connections and drain.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("shutdown".into()),
        )]))
        .map(|_| ())
    }
}

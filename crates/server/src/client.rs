//! A tiny blocking client for the wire protocol — what the integration
//! tests, the perf harness's `serve` mode, and the `betalike-client`
//! binary all speak through.
//!
//! Retry-aware: the server's *retryable* refusals (`overloaded`,
//! `degraded`, `deadline` — see DESIGN.md §12) surface as
//! [`ClientError::Retryable`], and [`with_retries`] re-dials with a
//! deterministic jittered backoff ([`betalike_faults::RetryPolicy`]) until
//! the call succeeds, a fatal error appears, or attempts run out.

use crate::wire::{CountRequest, PublishRequest};
use betalike_faults::{RetryPolicy, Sleeper};
use betalike_microdata::json::Json;
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// The connection broke.
    Io(std::io::Error),
    /// The server closed the connection instead of answering (before any
    /// response byte, or mid-line). Distinct from [`ClientError::Io`] so
    /// callers — `betalike-client` maps this to its own exit code — can
    /// tell "the server went away" from "my network is broken", and
    /// distinct from [`ClientError::Protocol`] so a truncated response is
    /// not misreported as malformed JSON.
    Disconnected(String),
    /// The server refused the request *retryably* (`retryable: true` on
    /// the wire): it shed the connection under overload, its store is
    /// degraded, or a deadline expired. `code` is the stable machine code
    /// (`overloaded` / `degraded` / `deadline`); backing off and retrying
    /// the identical request is expected to eventually succeed.
    Retryable {
        /// Stable machine code from the wire response.
        code: String,
        /// Human-readable server message.
        message: String,
    },
    /// The server answered `ok: false` (fatal for the request as written).
    Server(String),
    /// The server answered something that is not a protocol response.
    Protocol(String),
}

impl ClientError {
    /// Whether backing off and retrying the identical request can
    /// succeed: explicit [`ClientError::Retryable`] refusals, plus
    /// [`ClientError::Disconnected`] (a draining or restarting server —
    /// re-dialing reaches its successor).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Retryable { .. } | ClientError::Disconnected(_)
        )
    }
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Disconnected(msg) => write!(f, "disconnected: {msg}"),
            ClientError::Retryable { code, message } => {
                write!(f, "retryable ({code}): {message}")
            }
            ClientError::Server(msg) => write!(f, "server: {msg}"),
            ClientError::Protocol(msg) => write!(f, "protocol: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A successful publish acknowledgment.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishReply {
    /// The content-addressed artifact handle.
    pub handle: String,
    /// The publication form (`generalized` / `perturbed` / `anatomy`).
    pub kind: String,
    /// Equivalence classes, for partition-backed artifacts.
    pub ecs: Option<u64>,
    /// Whether the artifact was already resident (a republish).
    pub cached: bool,
}

/// A successful count answer.
#[derive(Debug, Clone, PartialEq)]
pub struct CountReply {
    /// The estimate from the published form.
    pub estimate: f64,
    /// The exact count, when the request asked for it.
    pub exact: Option<u64>,
}

/// One blocking connection to a `betalike-serve` instance.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connect/clone failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        // One round trip per request line: Nagle + delayed ACK would add
        // ~40ms to every call.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Sends one raw request line and returns the raw response line
    /// (without the trailing newline). The byte-identity tests compare
    /// these lines directly.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; a server that closes the connection
    /// instead of answering is `UnexpectedEof` — both the empty read and
    /// the *partial* line without a terminating `\n` (a mid-response
    /// close, which would otherwise be misdiagnosed downstream as a JSON
    /// parse error). A send that dies on a peer close (`BrokenPipe` /
    /// `ConnectionReset` / `ConnectionAborted` — a shedding server writes
    /// its one refusal line and hangs up, racing our write) first drains
    /// any buffered response so the caller sees the refusal's code, and
    /// otherwise surfaces as `UnexpectedEof` like every other disconnect.
    pub fn call_raw(&mut self, line: &str) -> std::io::Result<String> {
        let sent = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush());
        if let Err(e) = sent {
            use std::io::ErrorKind::{BrokenPipe, ConnectionAborted, ConnectionReset};
            if !matches!(e.kind(), BrokenPipe | ConnectionReset | ConnectionAborted) {
                return Err(e);
            }
            let mut response = String::new();
            if let Ok(n) = self.reader.read_line(&mut response) {
                if n > 0 && response.ends_with('\n') {
                    return Ok(response.trim_end_matches(['\n', '\r']).to_string());
                }
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed the connection before the request was sent ({e})"),
            ));
        }
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ));
        }
        if !response.ends_with('\n') {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!("server closed the connection mid-response ({n} bytes of a partial line)"),
            ));
        }
        Ok(response.trim_end_matches(['\n', '\r']).to_string())
    }

    /// *Pipelines* a batch: writes every request line up front, then
    /// reads exactly one response line per request, in order. Against an
    /// event-driven server (`--event-loops`) the requests are serviced
    /// concurrently while responses still come back in request order
    /// (DESIGN.md §15); against a threaded server this degrades
    /// gracefully to serial service over one round trip. Response lines
    /// are returned raw (no trailing newline), so byte-identity tests
    /// can compare them against [`Client::call_raw`] transcripts.
    ///
    /// # Errors
    ///
    /// As [`Client::call_raw`]: I/O failures, and a connection closed
    /// before all responses arrived is `UnexpectedEof` (responses that
    /// did arrive are lost to the caller — pipelining is all-or-nothing).
    pub fn pipeline_raw(&mut self, lines: &[String]) -> std::io::Result<Vec<String>> {
        let mut batch = String::new();
        for line in lines {
            batch.push_str(line);
            batch.push('\n');
        }
        self.writer.write_all(batch.as_bytes())?;
        self.writer.flush()?;
        let mut responses = Vec::with_capacity(lines.len());
        for _ in 0..lines.len() {
            let mut response = String::new();
            let n = self.reader.read_line(&mut response)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "server closed the connection after {} of {} pipelined responses",
                        responses.len(),
                        lines.len()
                    ),
                ));
            }
            if !response.ends_with('\n') {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-response",
                ));
            }
            responses.push(response.trim_end_matches(['\n', '\r']).to_string());
        }
        Ok(responses)
    }

    /// Sends one request document and returns the parsed `ok: true`
    /// response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the server rejects the request,
    /// [`ClientError::Protocol`] when the response is not protocol JSON,
    /// [`ClientError::Disconnected`] when the server closes the connection
    /// before the request is fully sent, or before or during the
    /// response.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        let line = self.call_raw(&request.compact()).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                ClientError::Disconnected(e.to_string())
            } else {
                ClientError::Io(e)
            }
        })?;
        let doc =
            Json::parse(&line).map_err(|e| ClientError::Protocol(format!("{e} in `{line}`")))?;
        match doc.get("ok").and_then(Json::as_bool) {
            Some(true) => Ok(doc),
            Some(false) => {
                let message = doc
                    .get("error")
                    .and_then(Json::as_str)
                    .unwrap_or("unspecified server error")
                    .to_string();
                if doc.get("retryable").and_then(Json::as_bool) == Some(true) {
                    let code = doc
                        .get("code")
                        .and_then(Json::as_str)
                        .unwrap_or("retryable")
                        .to_string();
                    return Err(ClientError::Retryable { code, message });
                }
                Err(ClientError::Server(message))
            }
            None => Err(ClientError::Protocol(format!("no `ok` member in `{line}`"))),
        }
    }

    /// Round-trips a `ping`.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("ping".into()),
        )]))
        .map(|_| ())
    }

    /// Lists what the server knows: loaded dataset keys, resident
    /// published handles, and (when a store is attached) stored handles.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the reply
    /// lacks the `datasets` array.
    pub fn datasets(&mut self) -> Result<Json, ClientError> {
        let doc = self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("datasets".into()),
        )]))?;
        if doc.get("datasets").is_none() {
            return Err(ClientError::Protocol(
                "datasets reply missing `datasets`".into(),
            ));
        }
        Ok(doc)
    }

    /// Publishes (or re-addresses) an artifact.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the
    /// acknowledgment is malformed.
    pub fn publish(&mut self, request: &PublishRequest) -> Result<PublishReply, ClientError> {
        let doc = self.call(&request.to_json())?;
        let field = |key: &str| {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| ClientError::Protocol(format!("publish reply missing `{key}`")))
        };
        Ok(PublishReply {
            handle: field("handle")?,
            kind: field("kind")?,
            ecs: doc.get("ecs").and_then(Json::as_u64),
            cached: doc.get("cached").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Runs one count query against a published handle.
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the answer is
    /// malformed.
    pub fn count(&mut self, request: &CountRequest) -> Result<CountReply, ClientError> {
        let doc = self.call(&request.to_json())?;
        let estimate = doc
            .get("estimate")
            .and_then(Json::as_f64)
            .ok_or_else(|| ClientError::Protocol("count reply missing `estimate`".into()))?;
        Ok(CountReply {
            estimate,
            exact: doc.get("exact").and_then(Json::as_u64),
        })
    }

    /// Fetches the privacy audit of a published handle.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn audit(&mut self, handle: &str) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![
            ("op".to_string(), Json::Str("audit".into())),
            ("handle".to_string(), Json::Str(handle.into())),
        ]))
    }

    /// Runs the server-side conformance oracle over a published handle
    /// (optionally with the adversarial attack battery) and returns the
    /// verdict document.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn verify(&mut self, handle: &str, battery: bool) -> Result<Json, ClientError> {
        self.call(&Json::Obj(vec![
            ("op".to_string(), Json::Str("verify".into())),
            ("handle".to_string(), Json::Str(handle.into())),
            ("battery".to_string(), Json::Bool(battery)),
        ]))
    }

    /// Fetches the server's health document: status, worker/queue gauges,
    /// shed count, and store state (see DESIGN.md §12).
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the reply
    /// lacks the `status` member.
    pub fn health(&mut self) -> Result<Json, ClientError> {
        let doc = self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("health".into()),
        )]))?;
        if doc.get("status").is_none() {
            return Err(ClientError::Protocol(
                "health reply missing `status`".into(),
            ));
        }
        Ok(doc)
    }

    /// Fetches the server's metrics snapshot: every counter, gauge, and
    /// latency histogram (count / sum / p50 / p99 / p999 nanoseconds),
    /// plus the same snapshot as Prometheus exposition text under the
    /// `prometheus` member (see DESIGN.md §14).
    ///
    /// # Errors
    ///
    /// As [`Client::call`], plus [`ClientError::Protocol`] if the reply
    /// lacks the `counters` member.
    pub fn metrics(&mut self) -> Result<Json, ClientError> {
        let doc = self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("metrics".into()),
        )]))?;
        if doc.get("counters").is_none() {
            return Err(ClientError::Protocol(
                "metrics reply missing `counters`".into(),
            ));
        }
        Ok(doc)
    }

    /// Asks the server to stop accepting connections and drain.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        self.call(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("shutdown".into()),
        )]))
        .map(|_| ())
    }
}

/// Runs `f` against an existing connection, retrying *explicitly
/// retryable* server refusals ([`ClientError::Retryable`] — the server
/// answered, so the connection is still usable) with the policy's
/// deterministic backoff. Disconnects are NOT retried here: a dead
/// connection cannot carry another attempt — use [`with_retries`] to
/// re-dial.
///
/// # Errors
///
/// The first non-retryable error, or the last error once
/// `policy.max_attempts` attempts are exhausted.
pub fn retry_call<T>(
    client: &mut Client,
    policy: &RetryPolicy,
    sleeper: &dyn Sleeper,
    mut f: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        match f(client) {
            Ok(v) => return Ok(v),
            Err(e) => {
                let retry_here = matches!(e, ClientError::Retryable { .. });
                if attempt >= attempts || !retry_here {
                    return Err(e);
                }
                sleeper.sleep(Duration::from_millis(policy.delay_ms(attempt)));
            }
        }
    }
    Err(ClientError::Protocol("retry loop made no attempt".into()))
}

/// Dials `addr` and runs `f` on a fresh connection, retrying retryable
/// failures — [`ClientError::Retryable`] refusals *and*
/// [`ClientError::Disconnected`] — with the policy's deterministic
/// jittered backoff, reconnecting before every attempt. Connect failures
/// are fatal ([`ClientError::Io`]): "nothing is listening" is not an
/// overload signal.
///
/// The closure must be idempotent: an attempt that was answered but lost
/// mid-response is re-run in full.
///
/// # Errors
///
/// The first fatal error, or the last retryable error once
/// `policy.max_attempts` attempts are exhausted (so an exhausted
/// [`ClientError::Disconnected`] still maps to `betalike-client`'s
/// disconnect exit code).
pub fn with_retries<T>(
    addr: &str,
    policy: &RetryPolicy,
    sleeper: &dyn Sleeper,
    mut f: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let attempts = policy.max_attempts.max(1);
    for attempt in 1..=attempts {
        let mut client = Client::connect(addr)?;
        match f(&mut client) {
            Ok(v) => return Ok(v),
            Err(e) => {
                if attempt >= attempts || !e.is_retryable() {
                    return Err(e);
                }
                sleeper.sleep(Duration::from_millis(policy.delay_ms(attempt)));
            }
        }
    }
    Err(ClientError::Protocol("retry loop made no attempt".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{error_response, ok_response, retryable_error, ERR_OVERLOADED};
    use betalike_faults::RecordingSleeper;
    use std::net::TcpListener;

    /// A scripted one-shot server: each accepted connection reads one
    /// request line, writes the next scripted reply (empty string =
    /// close without answering), and hangs up.
    fn scripted(replies: Vec<String>) -> (String, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let handle = std::thread::spawn(move || {
            for reply in replies {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                if reply.is_empty() {
                    continue; // drop: the client sees a disconnect
                }
                let mut stream = stream;
                stream.write_all((reply + "\n").as_bytes()).unwrap();
                stream.flush().unwrap();
            }
        });
        (addr, handle)
    }

    fn ping(client: &mut Client) -> Result<(), ClientError> {
        client.ping()
    }

    #[test]
    fn retryable_refusals_are_classified_with_their_code() {
        let (addr, server) = scripted(vec![retryable_error(ERR_OVERLOADED, "busy").compact()]);
        let mut client = Client::connect(&addr).unwrap();
        let err = client.ping().unwrap_err();
        match &err {
            ClientError::Retryable { code, message } => {
                assert_eq!(code, "overloaded");
                assert_eq!(message, "busy");
            }
            other => panic!("expected Retryable, got {other:?}"),
        }
        assert!(err.is_retryable());
        assert!(!ClientError::Server("nope".into()).is_retryable());
        server.join().unwrap();
    }

    #[test]
    fn send_side_peer_close_is_a_retryable_disconnect() {
        // A shedding server hangs up while the client is still writing;
        // the write dies on EPIPE / ECONNRESET. That must classify as
        // Disconnected (retryable), never as a fatal i/o error — under
        // flood every `--retries` client would otherwise exit hard.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // close without reading: queued bytes draw an RST
        });
        let mut client = Client::connect(&addr).unwrap();
        server.join().unwrap();
        // Large enough to overrun every socket buffer, so write_all
        // cannot complete before the peer's reset is observed.
        let big = "x".repeat(8 << 20);
        let err = client
            .call(&Json::Obj(vec![("pad".into(), Json::Str(big))]))
            .unwrap_err();
        assert!(
            matches!(err, ClientError::Disconnected(_)),
            "expected Disconnected, got {err:?}"
        );
        assert!(err.is_retryable());
    }

    #[test]
    fn with_retries_backs_off_deterministically_then_succeeds() {
        let pong = ok_response(vec![("pong".into(), Json::Bool(true))]).compact();
        let (addr, server) = scripted(vec![
            retryable_error(ERR_OVERLOADED, "busy").compact(),
            retryable_error(ERR_OVERLOADED, "busy").compact(),
            pong,
        ]);
        let policy = RetryPolicy::standard(4, 7);
        let sleeper = RecordingSleeper::new();
        with_retries(&addr, &policy, &sleeper, ping).unwrap();
        let slept: Vec<u64> = sleeper
            .slept()
            .iter()
            .map(|d| d.as_millis() as u64)
            .collect();
        // Two refusals → two backoffs, exactly the policy's schedule
        // prefix (the jitter is seeded, so this is reproducible).
        assert_eq!(slept, vec![policy.delay_ms(1), policy.delay_ms(2)]);
        server.join().unwrap();
    }

    #[test]
    fn fatal_server_errors_are_never_retried() {
        let (addr, server) = scripted(vec![error_response("nope").compact()]);
        let policy = RetryPolicy::standard(5, 0);
        let sleeper = RecordingSleeper::new();
        let err = with_retries(&addr, &policy, &sleeper, ping).unwrap_err();
        assert!(matches!(err, ClientError::Server(_)), "got {err:?}");
        assert!(sleeper.slept().is_empty(), "fatal errors must not back off");
        server.join().unwrap();
    }

    #[test]
    fn disconnects_are_retried_by_reconnecting() {
        let pong = ok_response(vec![("pong".into(), Json::Bool(true))]).compact();
        let (addr, server) = scripted(vec![String::new(), pong]);
        let policy = RetryPolicy::standard(3, 11);
        let sleeper = RecordingSleeper::new();
        with_retries(&addr, &policy, &sleeper, ping).unwrap();
        assert_eq!(sleeper.slept().len(), 1);
        server.join().unwrap();
    }

    #[test]
    fn exhausted_retries_return_the_last_retryable_error() {
        let replies = vec![String::new(), String::new()];
        let (addr, server) = scripted(replies);
        let policy = RetryPolicy::standard(2, 3);
        let sleeper = RecordingSleeper::new();
        let err = with_retries(&addr, &policy, &sleeper, ping).unwrap_err();
        // Still a Disconnected — betalike-client's exit-3 mapping survives
        // the retry wrapper.
        assert!(matches!(err, ClientError::Disconnected(_)), "got {err:?}");
        assert_eq!(sleeper.slept().len(), 1, "n attempts → n-1 backoffs");
        server.join().unwrap();
    }

    #[test]
    fn retry_call_reuses_the_connection_for_refusals_only() {
        let pong = ok_response(vec![("pong".into(), Json::Bool(true))]).compact();
        // One connection answering twice: a refusal, then success.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut stream = stream;
            for reply in [retryable_error(ERR_OVERLOADED, "busy").compact(), pong] {
                let mut line = String::new();
                let _ = reader.read_line(&mut line);
                stream.write_all((reply + "\n").as_bytes()).unwrap();
            }
        });
        let policy = RetryPolicy::standard(3, 1);
        let sleeper = RecordingSleeper::new();
        let mut client = Client::connect(&addr).unwrap();
        retry_call(&mut client, &policy, &sleeper, ping).unwrap();
        assert_eq!(sleeper.slept().len(), 1);
        server.join().unwrap();
    }
}

//! The event-driven server core: N readiness loops multiplexing
//! non-blocking connections, with compute handed off to a worker pool.
//!
//! Enabled by [`crate::ServerConfig::event_loops`] > 0 (DESIGN.md §15).
//! Each loop owns a [`mini_poll::Poller`], a dup of the shared listener
//! (accept is *sharded*: every loop polls the listener and races
//! `accept`, so connections spread across loops without a coordinator),
//! and the [`Conn`] state machines of the connections it admitted. The
//! loop never computes: every framed request is sent over an in-process
//! queue to `threads` compute workers, which run the same
//! [`crate::server::respond`] dispatch the threaded core uses — deadline
//! publishes, degraded-store refusals, `catch_unwind`, and per-op
//! accounting behave identically — and post the response to the owning
//! loop's completion queue, waking it through a [`mini_poll::Waker`]. A
//! loop blocked on a cold artifact is therefore impossible by
//! construction, and clients may **pipeline**: many requests written
//! without waiting, responses returned strictly in request order because
//! [`Conn`] files each completion into its arrival-ordered slot.
//!
//! # Admission, backpressure, and overload parity
//!
//! The threaded core bounds concurrently open connections at
//! `workers + queue` (sticky workers plus the bounded channel). This
//! core enforces the *same* cap with a shared counter: an arrival beyond
//! it is refused through the identical [`crate::server::shed_connection`]
//! path — same retryable `overloaded` line, same `shed_total` counter —
//! so the overload suite's "exactly N − workers − queue refusals"
//! arithmetic holds for either core. Within one connection, at most
//! [`MAX_PIPELINE_INFLIGHT`] requests may be dispatched-but-unanswered;
//! past that the loop parks the socket at [`Interest::NONE`] and lets
//! TCP flow control push back on the sender.
//!
//! The `queue_depth` gauge reports compute jobs queued for a worker (the
//! analogue of connections waiting for a sticky worker), and each loop
//! exports `loop_<i>_connections` / `loop_<i>_accepted` so a `metrics`
//! scrape can see the accept shards stay balanced and sum to
//! `active_connections` / `accepted_total`.
//!
//! Idle and mid-request timeouts reuse the threaded semantics (silent
//! close / one retryable `deadline` error) but are measured against
//! [`crate::obs::ServerObs::clock`] — the workspace's clock seam — at
//! the read-tick resolution the poll timeout provides. Shutdown mirrors
//! the threaded core: the flag is observed within one tick (the
//! loopback poke also wakes every loop, since all of them poll the
//! listener), loops drop their connections and exit, and the compute
//! channel's closure retires the workers.

use crate::conn::{Conn, FramedRequest};
use crate::server::{initiate_shutdown, respond, shed_connection, State, DEFAULT_READ_TIMEOUT_MS};
use crate::wire::{retryable_error, ERR_DEADLINE};
use betalike_obs::{Counter, Gauge};
use mini_poll::{Event, Interest, Poller, Waker};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Per-connection pipelining bound: requests dispatched to compute but
/// not yet answered. At the bound the loop stops reading the socket
/// (TCP flow control backpressures the sender) until completions drain.
pub const MAX_PIPELINE_INFLIGHT: usize = 64;

/// Poller token of the (shared) listener in every loop.
const TOKEN_LISTENER: u64 = 0;
/// Poller token of the loop's waker pipe.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONN: u64 = 2;

/// Reads drained from one socket per readiness event before yielding to
/// the rest of the loop (level-triggered readiness re-reports leftovers).
const READS_PER_EVENT: usize = 16;

/// One framed request on its way to a compute worker.
struct Job {
    loop_id: usize,
    token: u64,
    seq: u64,
    text: String,
}

/// One response on its way back to the owning loop.
struct Completion {
    token: u64,
    seq: u64,
    /// The compact response line (no trailing newline).
    response: String,
    /// The response acknowledged a `shutdown` request.
    stop: bool,
}

/// The half of a loop that compute workers touch: its completion queue
/// and the waker that interrupts its poll.
struct LoopShared {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
}

/// One admitted connection as the loop sees it.
struct EvConn {
    stream: TcpStream,
    conn: Conn,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Clock reading at the last completed line (or accept) — the idle
    /// timer's anchor.
    last_line_ns: u64,
    /// Clock reading when the current partial line started, if one is in
    /// progress — the request timer's anchor. Deliberately *not*
    /// refreshed by further partial bytes, matching the threaded core.
    partial_since_ns: Option<u64>,
    /// A read or write on the socket failed; close without ceremony.
    dead: bool,
}

/// Spawns `loops` event loops plus the compute pool and returns every
/// thread handle (loops first). The listener is moved in already bound;
/// this makes it non-blocking and dups it into each loop.
///
/// # Errors
///
/// Failure to create a poller or waker pipe, to dup the listener, or to
/// register the initial fds.
pub(crate) fn spawn_event_core(
    state: &Arc<State>,
    listener: TcpListener,
    loops: usize,
) -> std::io::Result<Vec<JoinHandle<()>>> {
    listener.set_nonblocking(true)?;
    let admitted = Arc::new(AtomicUsize::new(0));
    let (job_tx, job_rx) = channel::<Job>();
    let job_rx = Arc::new(Mutex::new(job_rx));
    // Build every loop's poller/waker/listener-dup up front so a failure
    // surfaces as a serve() error instead of a dead thread.
    let mut shared: Vec<Arc<LoopShared>> = Vec::with_capacity(loops);
    let mut parts: Vec<(Poller, TcpListener)> = Vec::with_capacity(loops);
    for _ in 0..loops {
        let waker = Waker::new()?;
        let dup = listener.try_clone()?;
        let mut poller = Poller::new()?;
        poller.register(dup.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(waker.fd(), TOKEN_WAKER, Interest::READ)?;
        shared.push(Arc::new(LoopShared {
            completions: Mutex::new(Vec::new()),
            waker,
        }));
        parts.push((poller, dup));
    }
    let shared = Arc::new(shared);
    let mut threads: Vec<JoinHandle<()>> = Vec::with_capacity(loops + state.workers);
    for (id, (poller, dup)) in parts.into_iter().enumerate() {
        let state = Arc::clone(state);
        let shared = Arc::clone(&shared);
        let admitted = Arc::clone(&admitted);
        let job_tx = job_tx.clone();
        threads.push(std::thread::spawn(move || {
            event_loop(id, &state, poller, &dup, &shared, &admitted, &job_tx);
        }));
    }
    drop(job_tx); // workers exit once every loop's clone is gone
    for _ in 0..state.workers {
        let state = Arc::clone(state);
        let job_rx = Arc::clone(&job_rx);
        let shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            compute_loop(&state, &job_rx, &shared);
        }));
    }
    Ok(threads)
}

/// A compute worker: takes jobs, runs the shared dispatch, posts the
/// completion to the owning loop, and wakes it.
fn compute_loop(state: &Arc<State>, rx: &Arc<Mutex<Receiver<Job>>>, loops: &[Arc<LoopShared>]) {
    loop {
        let job = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(job) = job else {
            return; // channel closed: every loop exited
        };
        state.obs.queue_depth.add(-1);
        let (response, stop) = respond(state, &job.text);
        let Some(home) = loops.get(job.loop_id) else {
            continue;
        };
        {
            let mut queue = home.completions.lock().unwrap_or_else(|e| e.into_inner());
            queue.push(Completion {
                token: job.token,
                seq: job.seq,
                response: response.compact(),
                stop,
            });
        }
        home.waker.wake();
    }
}

/// The per-loop observability handles.
struct LoopObs {
    connections: Arc<Gauge>,
    accepted: Arc<Counter>,
    accepted_total: Arc<Counter>,
}

fn event_loop(
    id: usize,
    state: &Arc<State>,
    mut poller: Poller,
    listener: &TcpListener,
    shared: &[Arc<LoopShared>],
    admitted: &Arc<AtomicUsize>,
    job_tx: &Sender<Job>,
) {
    let Some(home) = shared.get(id) else {
        return;
    };
    let obs = LoopObs {
        connections: state.obs.registry.gauge(&format!("loop_{id}_connections")),
        accepted: state.obs.registry.counter(&format!("loop_{id}_accepted")),
        accepted_total: state.obs.registry.counter("accepted_total"),
    };
    let tick_ms = if state.read_timeout_ms == 0 {
        DEFAULT_READ_TIMEOUT_MS
    } else {
        state.read_timeout_ms
    };
    let idle_ns = state.idle_timeout_ms.saturating_mul(1_000_000);
    let request_ns = state.request_timeout_ms.saturating_mul(1_000_000);
    let mut conns: BTreeMap<u64, EvConn> = BTreeMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    loop {
        if poller.wait(&mut events, Some(tick_ms)).is_err() {
            break;
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let drained: Vec<Event> = std::mem::take(&mut events);
        for ev in drained {
            match ev.token {
                TOKEN_LISTENER => accept_ready(
                    state,
                    &mut poller,
                    listener,
                    &mut conns,
                    &mut next_token,
                    admitted,
                    &obs,
                ),
                TOKEN_WAKER => home.waker.drain(),
                token => {
                    if let Some(c) = conns.get_mut(&token) {
                        if ev.readable || ev.closed {
                            read_ready(state, c, id, token, job_tx);
                        }
                        if ev.writable {
                            try_flush(c);
                        }
                    }
                }
            }
        }
        let completions = {
            let mut queue = home.completions.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *queue)
        };
        for done in completions {
            let Some(c) = conns.get_mut(&done.token) else {
                continue; // the connection died before its answer arrived
            };
            c.conn.complete(done.seq, &done.response, done.stop);
            // Re-anchor the idle timer: the threaded core's idle ticks
            // start counting after a response is written, not while the
            // request computes.
            c.last_line_ns = state.obs.clock.now_ns();
            if done.stop {
                // Mirror the threaded core: the shutdown ack must reach
                // the client before the server starts draining, and a
                // failed ack write cancels nothing further (the flag is
                // only raised on a successful flush there too).
                if flush_blocking(c) {
                    initiate_shutdown(state);
                }
                c.dead = true;
            }
        }
        // Sweep: drain due output, retire finished or dead connections,
        // track timers, and settle each socket's registered interest.
        let now_ns = state.obs.clock.now_ns();
        let mut to_close: Vec<u64> = Vec::new();
        for (token, c) in conns.iter_mut() {
            if !c.dead {
                try_flush(c);
            }
            if c.dead || c.conn.wants_close() {
                to_close.push(*token);
                continue;
            }
            if let Some(since) = c.partial_since_ns {
                if request_ns != 0 && now_ns.saturating_sub(since) >= request_ns {
                    let reply = retryable_error(
                        ERR_DEADLINE,
                        "request deadline: the line did not complete in time",
                    );
                    // Best-effort, like the threaded core's closing write.
                    let _ = c.stream.write_all((reply.compact() + "\n").as_bytes());
                    to_close.push(*token);
                    continue;
                }
            } else if idle_ns != 0
                && c.conn.in_flight() == 0
                && !c.conn.has_output()
                && !c.conn.reading_closed()
                && now_ns.saturating_sub(c.last_line_ns) >= idle_ns
            {
                to_close.push(*token); // idle expiry: close silently
                continue;
            }
            let desired = Interest {
                readable: !c.conn.reading_closed() && c.conn.in_flight() < MAX_PIPELINE_INFLIGHT,
                writable: c.conn.has_output(),
            };
            if desired != c.interest {
                if poller
                    .reregister(c.stream.as_raw_fd(), *token, desired)
                    .is_err()
                {
                    to_close.push(*token);
                    continue;
                }
                c.interest = desired;
            }
        }
        for token in to_close {
            if let Some(c) = conns.remove(&token) {
                let _ = poller.deregister(c.stream.as_raw_fd());
                admitted.fetch_sub(1, Ordering::SeqCst);
                state.obs.registry.coherent(|| {
                    state.obs.active_connections.add(-1);
                    obs.connections.add(-1);
                });
            }
        }
    }
    // Shutdown (or a broken poller): drop every connection, matching the
    // threaded workers' silent return. Dropping our job_tx clone (by
    // returning) lets the compute pool retire once all loops are gone.
    for (_, c) in conns {
        let _ = poller.deregister(c.stream.as_raw_fd());
        admitted.fetch_sub(1, Ordering::SeqCst);
        state.obs.registry.coherent(|| {
            state.obs.active_connections.add(-1);
            obs.connections.add(-1);
        });
    }
}

/// Accepts until the listener would block, admitting up to the shared
/// `workers + queue` cap and shedding the rest with the canonical
/// `overloaded` refusal.
fn accept_ready(
    state: &Arc<State>,
    poller: &mut Poller,
    listener: &TcpListener,
    conns: &mut BTreeMap<u64, EvConn>,
    next_token: &mut u64,
    admitted: &Arc<AtomicUsize>,
    obs: &LoopObs,
) {
    let cap = state.workers + state.queue_capacity;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    return; // the poke connection (or late arrival) is dropped
                }
                let prev = admitted.fetch_add(1, Ordering::SeqCst);
                if prev >= cap {
                    admitted.fetch_sub(1, Ordering::SeqCst);
                    // Accepted sockets do not inherit the listener's
                    // non-blocking flag, so the refusal's bounded
                    // blocking write behaves as on the threaded core.
                    shed_connection(state, stream);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    admitted.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let token = *next_token;
                *next_token += 1;
                if poller
                    .register(stream.as_raw_fd(), token, Interest::READ)
                    .is_err()
                {
                    admitted.fetch_sub(1, Ordering::SeqCst);
                    continue;
                }
                state.obs.registry.coherent(|| {
                    state.obs.active_connections.add(1);
                    obs.connections.add(1);
                });
                obs.accepted.inc();
                obs.accepted_total.inc();
                conns.insert(
                    token,
                    EvConn {
                        stream,
                        conn: Conn::new(state.max_line_bytes),
                        interest: Interest::READ,
                        last_line_ns: state.obs.clock.now_ns(),
                        partial_since_ns: None,
                        dead: false,
                    },
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            // Transient accept errors (EMFILE, aborted handshake): the
            // loop's next tick retries; nothing to spin on here.
            Err(_) => return,
        }
    }
}

/// Drains readable bytes into the connection's state machine and ships
/// every framed request to the compute pool.
fn read_ready(
    state: &Arc<State>,
    c: &mut EvConn,
    loop_id: usize,
    token: u64,
    job_tx: &Sender<Job>,
) {
    let mut chunk = [0u8; 16 * 1024];
    for _ in 0..READS_PER_EVENT {
        if c.conn.reading_closed() || c.conn.in_flight() >= MAX_PIPELINE_INFLIGHT {
            return; // the sweep will park the socket at Interest::NONE
        }
        match c.stream.read(&mut chunk) {
            Ok(0) => {
                let requests = c.conn.on_eof();
                dispatch(state, c, loop_id, token, job_tx, requests);
                return;
            }
            Ok(n) => {
                let before = c.conn.lines_seen();
                // `.get(..n)`: `n <= chunk.len()` by the `Read` contract,
                // but the request path is panic-free by policy (lint P1).
                let requests = c.conn.on_bytes(chunk.get(..n).unwrap_or(&[]));
                if c.conn.lines_seen() > before {
                    c.last_line_ns = state.obs.clock.now_ns();
                    c.partial_since_ns = None;
                }
                if c.conn.has_partial() && c.partial_since_ns.is_none() {
                    c.partial_since_ns = Some(state.obs.clock.now_ns());
                }
                dispatch(state, c, loop_id, token, job_tx, requests);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => {
                c.dead = true;
                return;
            }
        }
    }
}

/// Queues framed requests for the compute pool, accounting each under
/// the `queue_depth` gauge until a worker picks it up.
fn dispatch(
    state: &Arc<State>,
    c: &mut EvConn,
    loop_id: usize,
    token: u64,
    job_tx: &Sender<Job>,
    requests: Vec<FramedRequest>,
) {
    for request in requests {
        state.obs.queue_depth.add(1);
        if job_tx
            .send(Job {
                loop_id,
                token,
                seq: request.seq,
                text: request.text,
            })
            .is_err()
        {
            // The pool is gone (shutdown): the connection can never be
            // answered; drop it.
            state.obs.queue_depth.add(-1);
            c.dead = true;
            return;
        }
    }
}

/// Writes due output until the socket would block. Returns `false` (and
/// marks the connection dead) on a write failure.
fn try_flush(c: &mut EvConn) -> bool {
    loop {
        let written = {
            let out = c.conn.output();
            if out.is_empty() {
                return true;
            }
            match c.stream.write(out) {
                Ok(0) => {
                    c.dead = true;
                    return false;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    c.dead = true;
                    return false;
                }
            }
        };
        c.conn.consume(written);
    }
}

/// Flushes *all* pending output with a bounded blocking write — used for
/// the shutdown acknowledgment, which must not be lost to a full socket
/// buffer. Returns whether everything was delivered.
fn flush_blocking(c: &mut EvConn) -> bool {
    if c.stream.set_nonblocking(false).is_err() {
        return false;
    }
    let _ = c
        .stream
        .set_write_timeout(Some(std::time::Duration::from_millis(1000)));
    loop {
        let written = {
            let out = c.conn.output();
            if out.is_empty() {
                return true;
            }
            match c.stream.write(out) {
                Ok(0) => return false,
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        };
        c.conn.consume(written);
    }
}

//! The newline-delimited JSON wire format.
//!
//! Every request and response is one [`Json`] object rendered with
//! [`Json::compact`] and terminated by `\n`. Requests carry an `"op"`
//! member (`ping`, `datasets`, `publish`, `count`, `audit`, `verify`,
//! `health`, `shutdown`); responses always carry `"ok"` (and `"error"`
//! when `false`). The `verify` op takes a `handle` plus an optional
//! boolean `battery` and answers with the independent conformance oracle's
//! verdict document (see the `betalike-conformance` crate). The `health`
//! op reports queue depth, shed count and store status without touching
//! any artifact.
//!
//! Errors come in two classes (DESIGN.md §12): *fatal* rejections carry
//! only `ok: false` + `error`, while *retryable* conditions — the server
//! shedding load, a degraded store, a publish deadline expiring — add
//! `retryable: true` and a stable `code` ([`ERR_OVERLOADED`],
//! [`ERR_DEGRADED`], [`ERR_DEADLINE`]) so clients can back off and retry
//! without scraping messages.
//!
//! Publications are *content-addressed*: the handle of a publish request is
//! an FNV-1a hash of its canonical parameter string, so equal requests from
//! any client name the same cached artifact and a republish is a cache hit.

use crate::registry::DatasetSpec;
use betalike_microdata::json::Json;
use betalike_query::RangePred;

/// The anonymization scheme a publish request runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// BUREL generalization (the paper's Section 4 algorithm).
    Burel,
    /// The SABRE t-closeness baseline.
    Sabre,
    /// Mondrian constrained by β-likeness (the paper's LMondrian).
    Mondrian,
    /// Anatomy-style release: exact QIs + global SA histogram.
    Anatomy,
    /// β-likeness by perturbation (Section 5).
    Perturb,
}

impl Algo {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Algo::Burel => "burel",
            Algo::Sabre => "sabre",
            Algo::Mondrian => "mondrian",
            Algo::Anatomy => "anatomy",
            Algo::Perturb => "perturb",
        }
    }

    /// Parses the wire name.
    ///
    /// # Errors
    ///
    /// Names the unknown algorithm.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "burel" => Ok(Algo::Burel),
            "sabre" => Ok(Algo::Sabre),
            "mondrian" => Ok(Algo::Mondrian),
            "anatomy" => Ok(Algo::Anatomy),
            "perturb" => Ok(Algo::Perturb),
            other => Err(format!(
                "unknown algo `{other}` (expected burel | sabre | mondrian | anatomy | perturb)"
            )),
        }
    }
}

/// One publish request: which dataset, which scheme, which parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct PublishRequest {
    /// The dataset to publish.
    pub dataset: DatasetSpec,
    /// The anonymization scheme.
    pub algo: Algo,
    /// How many QI attributes (a prefix of the dataset's QI pool).
    pub qi: usize,
    /// β threshold (BUREL / Mondrian / perturbation).
    pub beta: f64,
    /// t threshold (SABRE).
    pub t: f64,
    /// Algorithm seed.
    pub seed: u64,
}

impl PublishRequest {
    /// A request at the workspace defaults (β = 4, t = 0.2, seed = 42,
    /// QI = 3 capped to the dataset pool elsewhere).
    pub fn new(dataset: DatasetSpec, algo: Algo) -> Self {
        PublishRequest {
            dataset,
            algo,
            qi: 3,
            beta: 4.0,
            t: 0.2,
            seed: 42,
        }
        .normalized()
    }

    /// Zeroes the parameters the chosen scheme ignores, so requests that
    /// must produce identical artifacts hash to identical handles (anatomy
    /// ignores β, t, seed and the QI prefix; perturbation generalizes no
    /// QI; and so on).
    pub fn normalized(mut self) -> Self {
        match self.algo {
            Algo::Burel | Algo::Mondrian => self.t = 0.0,
            Algo::Sabre => self.beta = 0.0,
            Algo::Perturb => {
                self.t = 0.0;
                self.qi = 0;
            }
            Algo::Anatomy => {
                self.beta = 0.0;
                self.t = 0.0;
                self.seed = 0;
                self.qi = 0;
            }
        }
        if self.algo == Algo::Mondrian {
            // Mondrian's splitter is deterministic; the seed is unused.
            self.seed = 0;
        }
        self
    }

    /// The canonical parameter string the content-addressed handle hashes.
    pub fn canonical(&self) -> String {
        format!(
            "{}|algo={}|qi={}|beta={}|t={}|seed={}",
            self.dataset.canonical(),
            self.algo.as_str(),
            self.qi,
            self.beta,
            self.t,
            self.seed
        )
    }

    /// The content-addressed artifact handle of this request.
    pub fn handle(&self) -> String {
        format!("pub-{:016x}", fnv1a64(self.canonical().as_bytes()))
    }

    /// The full request document.
    pub fn to_json(&self) -> Json {
        let mut members = vec![("op".to_string(), Json::Str("publish".into()))];
        self.dataset.push_members(&mut members);
        members.push(("algo".into(), Json::Str(self.algo.as_str().into())));
        members.push(("qi".into(), Json::Num(self.qi as f64)));
        members.push(("beta".into(), Json::Num(self.beta)));
        members.push(("t".into(), Json::Num(self.t)));
        members.push(("seed".into(), Json::Num(self.seed as f64)));
        Json::Obj(members)
    }

    /// Parses (and normalizes) a request document.
    ///
    /// # Errors
    ///
    /// Returns a wire-level message on any missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let dataset = DatasetSpec::from_json(doc)?;
        let algo = Algo::parse(
            doc.get("algo")
                .and_then(Json::as_str)
                .ok_or("publish needs a string `algo`")?,
        )?;
        let qi = match doc.get("qi") {
            None => 3,
            Some(v) => v.as_usize().ok_or("`qi` must be a non-negative integer")?,
        };
        let num = |key: &str, default: f64| -> Result<f64, String> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_f64().ok_or(format!("`{key}` must be a number")),
            }
        };
        let seed = match doc.get("seed") {
            None => 42,
            Some(v) => v.as_u64().ok_or("`seed` must be a non-negative integer")?,
        };
        Ok(PublishRequest {
            dataset,
            algo,
            qi,
            beta: num("beta", 4.0)?,
            t: num("t", 0.2)?,
            seed,
        }
        .normalized())
    }
}

/// One count request against a published handle: QI range predicates plus
/// the SA range (the SA attribute is implied by the handle's dataset).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountRequest {
    /// The artifact to query.
    pub handle: String,
    /// Range predicates over QI attributes.
    pub qi_preds: Vec<RangePred>,
    /// Inclusive SA range, low end.
    pub sa_lo: u32,
    /// Inclusive SA range, high end.
    pub sa_hi: u32,
    /// Whether the response should include the exact count from the
    /// original table (publisher-side ground truth).
    pub exact: bool,
}

impl CountRequest {
    /// The full request document.
    pub fn to_json(&self) -> Json {
        let preds = self
            .qi_preds
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("attr".into(), Json::Num(p.attr as f64)),
                    ("lo".into(), Json::Num(p.lo as f64)),
                    ("hi".into(), Json::Num(p.hi as f64)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("op".into(), Json::Str("count".into())),
            ("handle".into(), Json::Str(self.handle.clone())),
            ("preds".into(), Json::Arr(preds)),
            (
                "sa".into(),
                Json::Obj(vec![
                    ("lo".into(), Json::Num(self.sa_lo as f64)),
                    ("hi".into(), Json::Num(self.sa_hi as f64)),
                ]),
            ),
            ("exact".into(), Json::Bool(self.exact)),
        ])
    }

    /// Parses a request document.
    ///
    /// # Errors
    ///
    /// Returns a wire-level message on any missing or malformed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let handle = doc
            .get("handle")
            .and_then(Json::as_str)
            .ok_or("count needs a string `handle`")?
            .to_string();
        let code = |v: Option<&Json>, what: &str| -> Result<u32, String> {
            v.and_then(Json::as_u32)
                .ok_or(format!("{what} must be a u32 code"))
        };
        let mut qi_preds = Vec::new();
        for p in doc
            .get("preds")
            .and_then(Json::as_arr)
            .ok_or("count needs an array `preds`")?
        {
            let attr = p
                .get("attr")
                .and_then(Json::as_usize)
                .ok_or("pred `attr` must be an attribute index")?;
            let (lo, hi) = (
                code(p.get("lo"), "pred `lo`")?,
                code(p.get("hi"), "pred `hi`")?,
            );
            if lo > hi {
                return Err(format!("pred on attr {attr} has lo {lo} > hi {hi}"));
            }
            qi_preds.push(RangePred { attr, lo, hi });
        }
        let sa = doc.get("sa").ok_or("count needs an `sa` range object")?;
        let (sa_lo, sa_hi) = (
            code(sa.get("lo"), "`sa.lo`")?,
            code(sa.get("hi"), "`sa.hi`")?,
        );
        if sa_lo > sa_hi {
            return Err(format!("SA range has lo {sa_lo} > hi {sa_hi}"));
        }
        let exact = match doc.get("exact") {
            None => false,
            Some(v) => v.as_bool().ok_or("`exact` must be a boolean")?,
        };
        Ok(CountRequest {
            handle,
            qi_preds,
            sa_lo,
            sa_hi,
            exact,
        })
    }
}

/// 64-bit FNV-1a — the dependency-free hash behind content-addressed
/// handles (re-exported from [`betalike_microdata::hash`], which the
/// `betalike-store` snapshot checksums share).
pub use betalike_microdata::hash::fnv1a64;

/// A success response with the given extra members.
pub fn ok_response(members: Vec<(String, Json)>) -> Json {
    let mut all = vec![("ok".to_string(), Json::Bool(true))];
    all.extend(members);
    Json::Obj(all)
}

/// An error response.
pub fn error_response(message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
    ])
}

/// Retryable error code: the admission queue is full and the connection
/// was shed.
pub const ERR_OVERLOADED: &str = "overloaded";
/// Retryable error code: the store has persistent write failures, so the
/// server is read-only (publishes refused, counts/audits still served).
pub const ERR_DEGRADED: &str = "degraded";
/// Retryable error code: the request's deadline expired before the answer
/// was ready (the work may continue in the background).
pub const ERR_DEADLINE: &str = "deadline";
/// *Fatal* error code: a request line exceeded the server's
/// `max_line_bytes` bound. The server answers one parseable refusal and
/// closes the connection — retrying the same oversized line cannot
/// succeed, so the error carries a `code` but no `retryable: true`.
pub const ERR_TOO_LARGE: &str = "too_large";

/// A *retryable* error response: `ok: false` plus a stable machine `code`
/// and `retryable: true`. Clients back off and retry these; plain
/// [`error_response`] rejections are fatal for the request as written.
pub fn retryable_error(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
        ("code".to_string(), Json::Str(code.into())),
        ("retryable".to_string(), Json::Bool(true)),
    ])
}

/// A *fatal* error response that still carries a stable machine `code`
/// ([`ERR_TOO_LARGE`]): clients can classify the refusal without scraping
/// the message, but must not retry the request as written.
pub fn fatal_coded_error(code: &str, message: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(message.into())),
        ("code".to_string(), Json::Str(code.into())),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_roundtrips_and_content_addresses() {
        let req = PublishRequest {
            dataset: DatasetSpec::Census {
                rows: 2_000,
                seed: 42,
            },
            algo: Algo::Burel,
            qi: 3,
            beta: 4.0,
            t: 0.0,
            seed: 7,
        };
        let parsed = PublishRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(parsed, req.clone().normalized());
        // Equal requests → equal handles; different β → different handle.
        assert_eq!(parsed.handle(), req.clone().normalized().handle());
        let other = PublishRequest {
            beta: 2.0,
            ..req.clone()
        };
        assert_ne!(other.normalized().handle(), req.normalized().handle());
    }

    #[test]
    fn normalization_ignores_irrelevant_parameters() {
        let spec = DatasetSpec::Patients;
        let a = PublishRequest {
            dataset: spec.clone(),
            algo: Algo::Anatomy,
            qi: 2,
            beta: 1.0,
            t: 0.5,
            seed: 1,
        };
        let b = PublishRequest {
            dataset: spec,
            algo: Algo::Anatomy,
            qi: 5,
            beta: 9.0,
            t: 0.1,
            seed: 77,
        };
        assert_eq!(
            a.normalized().handle(),
            b.normalized().handle(),
            "anatomy ignores beta/t/seed/qi"
        );
    }

    #[test]
    fn count_roundtrips_and_validates() {
        let req = CountRequest {
            handle: "pub-0123456789abcdef".into(),
            qi_preds: vec![
                RangePred {
                    attr: 0,
                    lo: 3,
                    hi: 40,
                },
                RangePred {
                    attr: 2,
                    lo: 0,
                    hi: 9,
                },
            ],
            sa_lo: 5,
            sa_hi: 20,
            exact: true,
        };
        assert_eq!(CountRequest::from_json(&req.to_json()).unwrap(), req);
        // Inverted ranges are rejected at the wire layer.
        let bad = Json::parse(
            r#"{"op":"count","handle":"h","preds":[{"attr":0,"lo":5,"hi":1}],"sa":{"lo":0,"hi":1}}"#,
        )
        .unwrap();
        assert!(CountRequest::from_json(&bad).unwrap_err().contains("lo 5"));
    }

    #[test]
    fn response_builders() {
        assert_eq!(
            ok_response(vec![("pong".into(), Json::Bool(true))]).compact(),
            r#"{"ok":true,"pong":true}"#
        );
        assert_eq!(
            error_response("nope").compact(),
            r#"{"ok":false,"error":"nope"}"#
        );
        assert_eq!(
            retryable_error(ERR_OVERLOADED, "queue full").compact(),
            r#"{"ok":false,"error":"queue full","code":"overloaded","retryable":true}"#
        );
    }
}

//! The dataset registry: named dataset specifications, lazily generated
//! tables, and cached QI geometry (per-row Hilbert keys).
//!
//! Every dataset the workspace knows how to produce is describable as a
//! small [`DatasetSpec`] (generator + parameters); generators are seeded,
//! so a spec is a *name* for a concrete table. The registry materializes
//! each spec at most once and shares the result behind [`Arc`]s, and does
//! the same for the Hilbert keys of each `(dataset, QI prefix)` pair — the
//! expensive geometry BUREL and SABRE both materialize over.

use betalike::retrieve::hilbert_keys;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::json::Json;
use betalike_microdata::patients;
use betalike_microdata::synthetic::{random_table, SyntheticConfig};
use betalike_microdata::Table;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A lazily-populated, thread-safe map: each key's value is computed at
/// most once (losers of an initialization race block on the winner), and
/// lookups after that are a lock + clone.
///
/// The outer mutex only guards the `HashMap` itself — initializers run
/// *outside* it, so a slow publish never blocks unrelated lookups.
#[derive(Debug)]
pub struct LazyMap<V> {
    inner: Mutex<HashMap<String, Arc<OnceLock<V>>>>,
}

// Not derived: derive would demand `V: Default`, but an empty map needs no
// values at all.
impl<V> Default for LazyMap<V> {
    fn default() -> Self {
        LazyMap {
            inner: Mutex::new(HashMap::new()),
        }
    }
}

impl<V: Clone> LazyMap<V> {
    /// Returns the value for `key`, running `init` (at most once per key,
    /// across all threads) if it is not present yet.
    pub fn get_or_init(&self, key: &str, init: impl FnOnce() -> V) -> V {
        let cell = {
            let mut map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            Arc::clone(map.entry(key.to_string()).or_default())
        };
        cell.get_or_init(init).clone()
    }

    /// The value for `key`, if it has been initialized.
    pub fn get(&self, key: &str) -> Option<V> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        map.get(key).and_then(|cell| cell.get().cloned())
    }

    /// All keys whose value finished initializing, sorted.
    pub fn keys(&self) -> Vec<String> {
        let map = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut keys: Vec<String> = map
            .iter()
            .filter(|(_, cell)| cell.get().is_some())
            .map(|(k, _)| k.clone())
            .collect();
        keys.sort();
        keys
    }
}

/// A generator-backed dataset description — the unit the wire protocol
/// names datasets by.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetSpec {
    /// The paper's CENSUS generator (Table 3 schema).
    Census {
        /// Number of tuples.
        rows: usize,
        /// Generator seed.
        seed: u64,
    },
    /// The six-tuple patients example (Table 1 + Figure 1).
    Patients,
    /// The uniform/Zipf synthetic generator used by tests.
    Synthetic {
        /// Number of tuples.
        rows: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl DatasetSpec {
    /// The canonical registry key: total over every field, so equal specs
    /// name equal tables and the content-addressed handles of
    /// [`crate::wire::PublishRequest`] can hash it.
    pub fn canonical(&self) -> String {
        match self {
            DatasetSpec::Census { rows, seed } => format!("census:rows={rows}:seed={seed}"),
            DatasetSpec::Patients => "patients".into(),
            DatasetSpec::Synthetic { rows, seed } => format!("synthetic:rows={rows}:seed={seed}"),
        }
    }

    /// The generator family name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetSpec::Census { .. } => "census",
            DatasetSpec::Patients => "patients",
            DatasetSpec::Synthetic { .. } => "synthetic",
        }
    }

    /// Appends this spec's wire fields to a request object.
    pub fn push_members(&self, members: &mut Vec<(String, Json)>) {
        members.push(("dataset".into(), Json::Str(self.name().into())));
        match self {
            DatasetSpec::Census { rows, seed } | DatasetSpec::Synthetic { rows, seed } => {
                members.push(("rows".into(), Json::Num(*rows as f64)));
                members.push(("dseed".into(), Json::Num(*seed as f64)));
            }
            DatasetSpec::Patients => {}
        }
    }

    /// Parses the spec fields of a request object (`dataset`, `rows`,
    /// `dseed`).
    ///
    /// # Errors
    ///
    /// Returns a wire-level message on an unknown generator or malformed
    /// field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        let name = doc
            .get("dataset")
            .and_then(Json::as_str)
            .ok_or("publish needs a string `dataset`")?;
        let rows = match doc.get("rows") {
            None => None,
            Some(v) => Some(
                v.as_usize()
                    .ok_or("`rows` must be a non-negative integer")?,
            ),
        };
        let seed = match doc.get("dseed") {
            None => 42,
            Some(v) => v.as_u64().ok_or("`dseed` must be a non-negative integer")?,
        };
        Self::build(name, rows, seed)
    }

    /// Parses the CLI form `census[:ROWS[:SEED]]` / `patients` /
    /// `synthetic[:ROWS[:SEED]]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed component.
    pub fn parse_cli(text: &str) -> Result<Self, String> {
        let mut parts = text.split(':');
        let name = parts.next().unwrap_or_default();
        let rows = parts
            .next()
            .map(|p| p.parse().map_err(|_| format!("bad rows `{p}`")))
            .transpose()?;
        let seed = parts
            .next()
            .map(|p| p.parse().map_err(|_| format!("bad seed `{p}`")))
            .transpose()?
            .unwrap_or(42);
        if parts.next().is_some() {
            return Err(format!("too many `:` components in `{text}`"));
        }
        Self::build(name, rows, seed)
    }

    /// Builds a spec from its raw parts (generator name, optional row
    /// count, seed) — the form the persistence layer stores. `rows` of
    /// `None` selects the generator's default.
    ///
    /// # Errors
    ///
    /// Returns a message naming the unknown generator.
    pub fn from_parts(name: &str, rows: Option<usize>, seed: u64) -> Result<Self, String> {
        Self::build(name, rows, seed)
    }

    fn build(name: &str, rows: Option<usize>, seed: u64) -> Result<Self, String> {
        match name {
            "census" => Ok(DatasetSpec::Census {
                rows: rows.unwrap_or(10_000),
                seed,
            }),
            "patients" => Ok(DatasetSpec::Patients),
            "synthetic" => Ok(DatasetSpec::Synthetic {
                rows: rows.unwrap_or(1_000),
                seed,
            }),
            other => Err(format!(
                "unknown dataset `{other}` (expected census | patients | synthetic)"
            )),
        }
    }
}

/// A materialized dataset: the table plus which attributes may be
/// generalized and which is sensitive.
#[derive(Debug)]
pub struct Dataset {
    /// The canonical spec key this table was generated from.
    pub key: String,
    /// The table, shared across artifacts and answerers.
    pub table: Arc<Table>,
    /// The full candidate QI pool, in publication order.
    pub qi_pool: Vec<usize>,
    /// The sensitive attribute.
    pub sa: usize,
}

/// The process-wide dataset and QI-geometry cache.
#[derive(Debug, Default)]
pub struct Registry {
    datasets: LazyMap<Arc<Dataset>>,
    keys: LazyMap<Arc<Vec<u128>>>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The dataset for `spec`, generating it on first use.
    pub fn dataset(&self, spec: &DatasetSpec) -> Arc<Dataset> {
        let key = spec.canonical();
        self.datasets
            .get_or_init(&key, || Arc::new(materialize(spec, key.clone())))
    }

    /// The per-row Hilbert keys of `dataset` over the QI prefix `qi`,
    /// computed on first use — BUREL and SABRE publications over the same
    /// geometry then share one transform.
    pub fn hilbert_keys(&self, dataset: &Dataset, qi: &[usize]) -> Arc<Vec<u128>> {
        let key = format!("{}|qi={qi:?}", dataset.key);
        self.keys
            .get_or_init(&key, || Arc::new(hilbert_keys(&dataset.table, qi)))
    }

    /// Canonical keys of every dataset materialized so far, sorted.
    pub fn loaded(&self) -> Vec<String> {
        self.datasets.keys()
    }
}

fn materialize(spec: &DatasetSpec, key: String) -> Dataset {
    match *spec {
        DatasetSpec::Census { rows, seed } => Dataset {
            key,
            table: Arc::new(census::generate(&CensusConfig::new(rows, seed))),
            qi_pool: (0..census::attr::SALARY).collect(),
            sa: census::attr::SALARY,
        },
        DatasetSpec::Patients => Dataset {
            key,
            table: Arc::new(patients::patients_table()),
            qi_pool: vec![patients::attr::WEIGHT, patients::attr::AGE],
            sa: patients::attr::DISEASE,
        },
        DatasetSpec::Synthetic { rows, seed } => {
            let cfg = SyntheticConfig {
                rows,
                seed,
                ..Default::default()
            };
            Dataset {
                key,
                table: Arc::new(random_table(&cfg)),
                qi_pool: (0..cfg.qi_attrs).collect(),
                sa: cfg.qi_attrs,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazy_map_initializes_once() {
        let map: LazyMap<usize> = LazyMap::default();
        let mut runs = 0;
        assert_eq!(
            map.get_or_init("k", || {
                runs += 1;
                7
            }),
            7
        );
        assert_eq!(map.get_or_init("k", || unreachable!()), 7);
        assert_eq!(runs, 1);
        assert_eq!(map.get("k"), Some(7));
        assert_eq!(map.get("missing"), None);
        assert_eq!(map.keys(), vec!["k".to_string()]);
    }

    #[test]
    fn spec_canonical_and_cli_roundtrip() {
        for (cli, canonical) in [
            ("census:2000:7", "census:rows=2000:seed=7"),
            ("census", "census:rows=10000:seed=42"),
            ("patients", "patients"),
            ("synthetic:500", "synthetic:rows=500:seed=42"),
        ] {
            assert_eq!(DatasetSpec::parse_cli(cli).unwrap().canonical(), canonical);
        }
        assert!(DatasetSpec::parse_cli("adult").is_err());
        assert!(DatasetSpec::parse_cli("census:x").is_err());
        assert!(DatasetSpec::parse_cli("census:1:2:3").is_err());
    }

    #[test]
    fn spec_json_roundtrip() {
        let spec = DatasetSpec::Census { rows: 123, seed: 9 };
        let mut members = vec![("op".to_string(), Json::Str("publish".into()))];
        spec.push_members(&mut members);
        let doc = Json::Obj(members);
        assert_eq!(DatasetSpec::from_json(&doc).unwrap(), spec);
        assert!(DatasetSpec::from_json(&Json::Obj(vec![])).is_err());
    }

    #[test]
    fn registry_shares_tables_and_keys() {
        let reg = Registry::new();
        let spec = DatasetSpec::Synthetic { rows: 200, seed: 3 };
        let a = reg.dataset(&spec);
        let b = reg.dataset(&spec);
        assert!(Arc::ptr_eq(&a, &b), "specs must share one table");
        assert_eq!(a.table.num_rows(), 200);
        let k1 = reg.hilbert_keys(&a, &a.qi_pool);
        let k2 = reg.hilbert_keys(&a, &a.qi_pool);
        assert!(Arc::ptr_eq(&k1, &k2), "geometry must be cached");
        assert_eq!(k1.len(), 200);
        assert_eq!(reg.loaded(), vec![spec.canonical()]);
    }

    #[test]
    fn dataset_roles_are_consistent() {
        let reg = Registry::new();
        for spec in [
            DatasetSpec::Census { rows: 50, seed: 1 },
            DatasetSpec::Patients,
            DatasetSpec::Synthetic { rows: 50, seed: 1 },
        ] {
            let ds = reg.dataset(&spec);
            assert!(!ds.qi_pool.contains(&ds.sa));
            for &a in &ds.qi_pool {
                assert!(a < ds.table.schema().arity());
            }
        }
    }
}

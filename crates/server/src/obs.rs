//! Server-side observability: the shared metrics [`Registry`], per-op
//! request/error counters and latency histograms, the structured
//! [`Logger`], and per-request [`Trace`]s.
//!
//! One [`ServerObs`] lives in the server's `State`. Counters and gauges
//! update unconditionally — the `health` and `metrics` ops are derived
//! from them — while clock reads, histogram records, spans, and the
//! slow-query log are gated behind [`ServerObs::timings`]
//! ([`crate::ServerConfig::obs`]), which is what the perf suite's
//! instrumentation-overhead criterion measures.
//!
//! The `health` op used to assemble its gauges from scattered atomics
//! with no common lock, so a probe could observe a connection in neither
//! the queue nor a worker. Paired transitions now run inside
//! [`Registry::coherent`] and `health`/`metrics` read one
//! [`Registry::snapshot`], taken under the same lock.

use betalike_obs::{
    Clock, Counter, Gauge, Histogram, Level, LogValue, Logger, RealClock, Registry, Trace,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Every op the dispatcher understands, in wire-roster order. Per-op
/// metrics are pre-registered for each so a `metrics` scrape lists every
/// op from the first request, not only the ones already exercised.
pub(crate) const WIRE_OPS: [&str; 9] = [
    "ping", "datasets", "publish", "count", "audit", "verify", "health", "metrics", "shutdown",
];

/// The bucket unparseable or unknown ops are accounted under.
pub(crate) const UNKNOWN_OP: &str = "unknown";

/// Request/error counters plus the latency histogram for one wire op.
#[derive(Debug, Clone)]
pub(crate) struct OpMetrics {
    pub requests: Arc<Counter>,
    pub errors: Arc<Counter>,
    pub latency_ns: Arc<Histogram>,
}

impl OpMetrics {
    fn from_registry(registry: &Registry, op: &str) -> Self {
        OpMetrics {
            requests: registry.counter(&format!("op_{op}_requests")),
            errors: registry.counter(&format!("op_{op}_errors")),
            latency_ns: registry.histogram(&format!("op_{op}_latency_ns")),
        }
    }
}

/// Shared observability handles for one server process.
#[derive(Debug)]
pub(crate) struct ServerObs {
    /// The process-wide metrics registry (`health`, `metrics`, and the
    /// store/catalog handles all share it).
    pub registry: Arc<Registry>,
    /// Monotonic time source for latencies, spans, and log timestamps.
    pub clock: Arc<dyn Clock>,
    /// Whether to read the clock: latency histograms, spans, and the
    /// slow-query log. Counters and gauges update regardless.
    pub timings: bool,
    /// The structured logger (stderr; level from config / `BETALIKE_LOG`).
    pub logger: Logger,
    /// Requests slower than this (milliseconds) get a `warn` line with
    /// their span breakdown; `0` disables the slow-query log.
    pub slow_query_ms: u64,
    ops: BTreeMap<&'static str, OpMetrics>,
    /// The bucket unknown op names fall back to.
    unknown: OpMetrics,
    /// Accepted connections waiting for a worker.
    pub queue_depth: Arc<Gauge>,
    /// Connections currently owned by a worker.
    pub active_connections: Arc<Gauge>,
    /// Connections shed with `overloaded` since startup.
    pub shed: Arc<Counter>,
    /// Entries in the resident artifact cache (including failed publishes).
    pub artifacts_resident: Arc<Gauge>,
    /// Mirror of the result cache's hit count.
    pub cache_hits: Arc<Gauge>,
    /// Mirror of the result cache's miss count.
    pub cache_misses: Arc<Gauge>,
    /// Mirror of the result cache's current size.
    pub cache_size: Arc<Gauge>,
}

impl ServerObs {
    /// Registers every server-level metric in `registry`.
    pub fn new(
        registry: Arc<Registry>,
        timings: bool,
        level: Level,
        json: bool,
        slow_query_ms: u64,
    ) -> Self {
        let clock: Arc<dyn Clock> = Arc::new(RealClock);
        let mut ops = BTreeMap::new();
        for op in WIRE_OPS {
            ops.insert(op, OpMetrics::from_registry(&registry, op));
        }
        let unknown = OpMetrics::from_registry(&registry, UNKNOWN_OP);
        let logger = Logger::new(level, json, Arc::clone(&clock));
        ServerObs {
            timings,
            logger,
            slow_query_ms,
            ops,
            unknown,
            queue_depth: registry.gauge("queue_depth"),
            active_connections: registry.gauge("active_connections"),
            shed: registry.counter("shed_total"),
            artifacts_resident: registry.gauge("artifacts_resident"),
            cache_hits: registry.gauge("result_cache_hits"),
            cache_misses: registry.gauge("result_cache_misses"),
            cache_size: registry.gauge("result_cache_size"),
            registry,
            clock,
        }
    }

    /// The metrics bucket for `op` (unknown names share [`UNKNOWN_OP`]).
    pub fn op(&self, op: &str) -> &OpMetrics {
        self.ops.get(op).unwrap_or(&self.unknown)
    }

    /// The clock reading when timings are on, else `None`.
    pub fn start(&self) -> Option<u64> {
        if self.timings {
            Some(self.clock.now_ns())
        } else {
            None
        }
    }

    /// A per-request trace when span timings could be observed — i.e.
    /// timings are on *and* the slow-query log (their only consumer on
    /// the serving path) is armed. Spans cost nothing when no trace
    /// exists, which keeps the per-request overhead of the default
    /// configuration to two clock reads and one histogram record.
    pub fn trace(&self) -> Option<Trace> {
        if self.timings && self.slow_query_ms > 0 {
            Some(Trace::new(Arc::clone(&self.clock), None))
        } else {
            None
        }
    }

    /// Closes out one request: bumps the op's request (and, on a
    /// non-`ok` response, error) counter, records its latency, and emits
    /// the slow-query log line when the threshold is armed and crossed.
    pub fn finish(
        &self,
        op: &str,
        ok: bool,
        start: Option<u64>,
        trace: Option<&Trace>,
        trace_id: Option<&str>,
    ) {
        let m = self.op(op);
        m.requests.inc();
        if !ok {
            m.errors.inc();
        }
        let Some(start) = start else {
            return;
        };
        let elapsed_ns = self.clock.now_ns().saturating_sub(start);
        m.latency_ns.record(elapsed_ns);
        if self.slow_query_ms == 0 || elapsed_ns < self.slow_query_ms.saturating_mul(1_000_000) {
            return;
        }
        let spans = trace.map(Trace::spans).unwrap_or_default();
        let mut fields: Vec<(&str, LogValue)> = vec![
            ("op", op.into()),
            ("elapsed_ms", (elapsed_ns as f64 / 1.0e6).into()),
            ("ok", ok.into()),
        ];
        if let Some(id) = trace_id {
            fields.push(("trace_id", id.into()));
        }
        for span in &spans {
            if let Some(d) = span.duration_ns() {
                fields.push((span.name.as_str(), (d as f64 / 1.0e6).into()));
            }
        }
        self.logger.warn("slow query", &fields);
    }

    /// Mirrors the result cache's stats into the registry gauges, all
    /// three under one registry lock.
    pub fn sync_cache(&self, stats: &crate::result_cache::CacheStats) {
        let (hits, misses, len) = (stats.hits, stats.misses, stats.len);
        self.registry.coherent(|| {
            self.cache_hits.set(hits.min(i64::MAX as u64) as i64);
            self.cache_misses.set(misses.min(i64::MAX as u64) as i64);
            self.cache_size.set(len.min(i64::MAX as usize) as i64);
        });
    }
}

//! Bridging resident [`Artifact`]s and durable
//! [`betalike_store::PublicationSnapshot`]s.
//!
//! [`snapshot`] captures everything a restarted server needs (forcing the
//! privacy audit so it is stored rather than recomputed); [`restore`]
//! rebuilds a serving-ready artifact from a snapshot with **zero pipeline
//! recomputation** — no generator run, no Hilbert transform, no BUREL. The
//! derived structures it does rebuild (per-EC query boxes, sorted SA
//! lists, the perturbation matrix, the Anatomy histogram) come from the
//! same deterministic code that built them at publish time, so a restored
//! artifact's `count` and `audit` answers are bit-identical to the
//! original process's; the `persistence` integration test and the CI
//! restart smoke assert exactly that.

use crate::artifact::Artifact;
use crate::registry::{Dataset, DatasetSpec};
use crate::wire::{Algo, PublishRequest};
use betalike::perturb::{PerturbationPlan, PerturbedTable};
use betalike_metrics::Partition;
use betalike_microdata::{Table, Value};
use betalike_query::{CatalogSpec, CatalogStats, GroupingSpec, PublishedAnswerer, CATALOG_VERSION};
use betalike_store::{CatalogSnapshot, FormSnapshot, PubParams, PublicationSnapshot};
use std::sync::Arc;

/// Lowers a query-side catalog spec into its storage mirror.
fn catalog_to_snapshot(spec: &CatalogSpec) -> CatalogSnapshot {
    let (grouping, block_rows, perm) = match &spec.grouping {
        GroupingSpec::Ecs => (0u8, 0u32, Vec::new()),
        GroupingSpec::Blocks { block_rows, perm } => (1u8, *block_rows, perm.clone()),
    };
    CatalogSnapshot {
        version: spec.version,
        grouping,
        block_rows,
        perm,
        covered: spec.covered.iter().map(|&a| a as u32).collect(),
    }
}

/// Lifts a stored catalog descriptor back into the query-side spec.
fn catalog_from_snapshot(c: &CatalogSnapshot) -> Result<CatalogSpec, String> {
    let grouping = match c.grouping {
        0 => GroupingSpec::Ecs,
        1 => GroupingSpec::Blocks {
            block_rows: c.block_rows,
            perm: c.perm.clone(),
        },
        tag => return Err(format!("unknown stored catalog grouping tag {tag}")),
    };
    Ok(CatalogSpec {
        version: c.version,
        grouping,
        covered: c.covered.iter().map(|&a| a as usize).collect(),
    })
}

/// Captures an artifact for persistence. Forces the audit (computed at
/// most once per artifact anyway) so restarted servers serve the stored
/// numbers instead of re-deriving them.
pub fn snapshot(artifact: &Artifact) -> PublicationSnapshot {
    let request = &artifact.request;
    let (dataset_rows, dataset_seed) = match request.dataset {
        DatasetSpec::Census { rows, seed } | DatasetSpec::Synthetic { rows, seed } => {
            (rows as u64, seed)
        }
        DatasetSpec::Patients => (0, 0),
    };
    let params = PubParams {
        handle: artifact.handle.clone(),
        canonical: request.canonical(),
        dataset_name: request.dataset.name().to_string(),
        dataset_rows,
        dataset_seed,
        dataset_key: artifact.dataset.key.clone(),
        algo: request.algo.as_str().to_string(),
        qi_prefix: request.qi as u32,
        beta: request.beta,
        t: request.t,
        seed: request.seed,
        qi: artifact.qi.iter().map(|&a| a as u32).collect(),
        qi_pool: artifact.dataset.qi_pool.iter().map(|&a| a as u32).collect(),
        sa: artifact.dataset.sa as u32,
    };
    let form = if let Some(partition) = &artifact.partition {
        FormSnapshot::Generalized {
            ecs: partition
                .ecs()
                .iter()
                .map(|ec| ec.iter().map(|&r| r as u32).collect())
                .collect(),
        }
    } else if let Some(published) = artifact.answerer.perturbed_form() {
        let plan = &published.plan;
        FormSnapshot::Perturbed {
            sa_column: published.table.column(published.sa).to_vec(),
            support: plan.support().to_vec(),
            priors: plan.priors().to_vec(),
            caps: plan.caps().to_vec(),
            gammas: plan.gammas().to_vec(),
            alphas: plan.alphas().to_vec(),
        }
    } else {
        FormSnapshot::Anatomy
    };
    PublicationSnapshot {
        params,
        table: (*artifact.dataset.table).clone(),
        form,
        audit: artifact.audit().cloned(),
        catalog: artifact
            .answerer
            .catalog_spec()
            .as_ref()
            .map(catalog_to_snapshot),
    }
}

/// [`restore`] with the aggregate catalog optional (mirroring
/// [`Artifact::publish_opt`]); a server running `--no-catalog` restores
/// scan-only answerers and ignores any stored catalog descriptor.
///
/// # Errors
///
/// As [`restore`].
pub fn restore_opt(snap: PublicationSnapshot, catalog: bool) -> Result<Arc<Artifact>, String> {
    restore_inner(snap, catalog, None)
}

/// [`restore_opt`] with optional plan-classification counters wired into
/// the rebuilt catalog (mirroring [`Artifact::publish_with`]).
///
/// # Errors
///
/// As [`restore`].
pub fn restore_with(
    snap: PublicationSnapshot,
    catalog: bool,
    stats: Option<CatalogStats>,
) -> Result<Arc<Artifact>, String> {
    restore_inner(snap, catalog, stats)
}

/// Rebuilds a serving-ready artifact from a snapshot.
///
/// A stored catalog descriptor whose version matches this build is honored
/// verbatim (the stored grouping wins over a fresh derivation); a
/// descriptor from a *different* catalog version is discarded and the
/// default catalog is rebuilt from scratch — the rebuild-on-version-skew
/// policy of `DESIGN.md` §13. A descriptor that is structurally invalid
/// for this publication fails the restore (the file passed its checksums,
/// so this is writer-side corruption, and the caller quarantines it).
///
/// # Errors
///
/// Returns a message (served as a wire-level error) when the snapshot is
/// internally inconsistent — unknown algorithm, parameters that no longer
/// hash to the stored handle (format/version skew), attribute indices
/// outside the stored schema, or a partition that does not cover the
/// stored table.
pub fn restore(snap: PublicationSnapshot) -> Result<Arc<Artifact>, String> {
    restore_inner(snap, true, None)
}

fn restore_inner(
    snap: PublicationSnapshot,
    catalog: bool,
    stats: Option<CatalogStats>,
) -> Result<Arc<Artifact>, String> {
    let p = &snap.params;
    let algo = Algo::parse(&p.algo)?;
    let rows_arg = match p.dataset_name.as_str() {
        "patients" => None,
        _ => Some(p.dataset_rows as usize),
    };
    let spec = DatasetSpec::from_parts(&p.dataset_name, rows_arg, p.dataset_seed)?;
    let request = PublishRequest {
        dataset: spec,
        algo,
        qi: p.qi_prefix as usize,
        beta: p.beta,
        t: p.t,
        seed: p.seed,
    }
    .normalized();
    if request.handle() != p.handle {
        return Err(format!(
            "stored parameters hash to {}, not the stored handle {} (parameter skew)",
            request.handle(),
            p.handle
        ));
    }

    let table = Arc::new(snap.table);
    let arity = table.schema().arity();
    let sa = p.sa as usize;
    let check_attr = |what: &str, a: usize| {
        if a >= arity {
            Err(format!(
                "stored {what} index {a} outside schema arity {arity}"
            ))
        } else {
            Ok(a)
        }
    };
    check_attr("SA", sa)?;
    let qi: Vec<usize> =
        p.qi.iter()
            .map(|&a| check_attr("QI", a as usize))
            .collect::<Result<_, _>>()?;
    let qi_pool: Vec<usize> = p
        .qi_pool
        .iter()
        .map(|&a| check_attr("QI-pool", a as usize))
        .collect::<Result<_, _>>()?;
    let dataset = Arc::new(Dataset {
        key: p.dataset_key.clone(),
        table: Arc::clone(&table),
        qi_pool,
        sa,
    });

    let mut partition = None;
    let mut alphas = None;
    let mut answerer = match snap.form {
        FormSnapshot::Generalized { ecs } => {
            if qi.contains(&sa) || ecs.iter().any(Vec::is_empty) {
                return Err("stored partition is structurally invalid".into());
            }
            let ecs: Vec<Vec<usize>> = ecs
                .into_iter()
                .map(|ec| ec.into_iter().map(|r| r as usize).collect())
                .collect();
            let part = Partition::new(qi.clone(), sa, ecs);
            part.validate_cover(table.num_rows())
                .map_err(|e| format!("stored partition does not cover the table: {e}"))?;
            let ans = PublishedAnswerer::generalized_opt(Arc::clone(&table), &part, catalog);
            partition = Some(Arc::new(part));
            ans
        }
        FormSnapshot::Perturbed {
            sa_column,
            support,
            priors,
            caps,
            gammas,
            alphas: stored_alphas,
        } => {
            let domain = table.schema().attr(sa).cardinality();
            let plan =
                PerturbationPlan::from_parts(support, domain, priors, caps, gammas, stored_alphas)
                    .map_err(|e| format!("stored perturbation plan: {e}"))?;
            if sa_column.len() != table.num_rows() {
                return Err("stored perturbed column is not row-aligned".into());
            }
            if sa_column.iter().any(|&v| plan.dense_index(v).is_none()) {
                return Err("stored perturbed column leaves the plan support".into());
            }
            let mut columns: Vec<Vec<Value>> =
                (0..arity).map(|a| table.column(a).to_vec()).collect();
            // betalike-lint: allow(P1, reason = "check_attr validated sa < arity on entry")
            columns[sa] = sa_column;
            let published = Table::from_columns(table.schema_arc(), columns)
                .map_err(|e| format!("stored perturbed column: {e}"))?;
            let published = PerturbedTable {
                table: Arc::new(published),
                plan: Arc::new(plan),
                sa,
            };
            alphas = Some(published.plan.alphas().to_vec());
            PublishedAnswerer::perturbed_opt(Arc::clone(&table), published, catalog)
        }
        FormSnapshot::Anatomy => PublishedAnswerer::anatomy_opt(Arc::clone(&table), sa, catalog),
    };

    if catalog {
        if let Some(stored) = &snap.catalog {
            if stored.version == CATALOG_VERSION {
                let spec = catalog_from_snapshot(stored)?;
                // The constructors above already derived the default
                // catalog; only rebuild when the stored grouping differs.
                if answerer.catalog_spec().as_ref() != Some(&spec) {
                    answerer
                        .rebuild_catalog(partition.as_deref(), &spec)
                        .map_err(|e| format!("stored catalog descriptor: {e}"))?;
                }
            }
            // Version skew: keep the freshly derived default catalog.
        }
    }
    // After any rebuild, so the counters land on the catalog that serves.
    if let Some(stats) = stats {
        answerer.attach_catalog_stats(stats);
    }

    Ok(Artifact::restored(
        p.handle.clone(),
        request,
        dataset,
        qi,
        answerer,
        partition,
        alphas,
        snap.audit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use betalike_query::{generate_workload, WorkloadConfig};
    use betalike_store::{publication_from_slice, publication_to_vec};

    fn roundtrip(artifact: &Arc<Artifact>) -> Arc<Artifact> {
        // Through the full binary format, not just the in-memory structs.
        let snap = snapshot(artifact);
        let bytes = publication_to_vec(&snap).unwrap();
        restore(publication_from_slice(&bytes).unwrap()).unwrap()
    }

    fn request(algo: Algo) -> PublishRequest {
        PublishRequest::new(
            DatasetSpec::Census {
                rows: 1_200,
                seed: 3,
            },
            algo,
        )
    }

    #[test]
    fn every_scheme_restores_bit_identically() {
        let reg = Registry::new();
        for algo in [
            Algo::Burel,
            Algo::Sabre,
            Algo::Mondrian,
            Algo::Anatomy,
            Algo::Perturb,
        ] {
            let original = Artifact::publish(&reg, &request(algo)).unwrap();
            let restored = roundtrip(&original);
            assert_eq!(restored.handle, original.handle);
            assert_eq!(restored.request, original.request);
            assert_eq!(restored.qi, original.qi);
            let queries = generate_workload(
                &original.dataset.table,
                &WorkloadConfig {
                    qi_pool: vec![0, 1, 2],
                    sa: original.dataset.sa,
                    lambda: 2,
                    theta: 0.2,
                    num_queries: 25,
                    seed: 5,
                },
            );
            for q in &queries {
                let a = original.answerer.estimate(q).unwrap();
                let b = restored.answerer.estimate(q).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{algo:?} estimate on {q:?}");
                assert_eq!(original.answerer.exact(q), restored.answerer.exact(q));
            }
            assert_eq!(
                original.audit_json().compact(),
                restored.audit_json().compact(),
                "{algo:?} audit document"
            );
        }
    }

    #[test]
    fn fixed_and_synthetic_datasets_restore() {
        let reg = Registry::new();
        for spec in [
            DatasetSpec::Patients,
            DatasetSpec::Synthetic { rows: 300, seed: 9 },
        ] {
            let request = PublishRequest::new(spec, Algo::Anatomy);
            let original = Artifact::publish(&reg, &request).unwrap();
            let restored = roundtrip(&original);
            assert_eq!(restored.handle, original.handle);
            assert_eq!(restored.request, original.request);
            assert_eq!(restored.dataset.key, original.dataset.key);
            assert_eq!(restored.dataset.qi_pool, original.dataset.qi_pool);
            assert_eq!(
                restored.dataset.table.column(0),
                original.dataset.table.column(0)
            );
        }
    }

    #[test]
    fn tampered_parameters_are_rejected() {
        let reg = Registry::new();
        let original = Artifact::publish(&reg, &request(Algo::Burel)).unwrap();
        let mut snap = snapshot(&original);
        snap.params.beta = 2.5; // no longer hashes to the stored handle
        assert!(restore(snap).unwrap_err().contains("parameter skew"));

        let mut snap = snapshot(&original);
        snap.params.sa = 99;
        assert!(restore(snap).unwrap_err().contains("outside schema"));

        let mut snap = snapshot(&original);
        if let FormSnapshot::Generalized { ecs } = &mut snap.form {
            ecs[0].push(0); // duplicate row -> cover violation
        }
        assert!(restore(snap).unwrap_err().contains("cover"));
    }
}

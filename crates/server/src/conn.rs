//! The per-connection protocol state machine — pure bytes in, bytes out,
//! no sockets.
//!
//! A [`Conn`] owns one connection's read buffer, its ordered response
//! queue, and its write buffer, and advances through the protocol as a
//! deterministic function of the byte-arrival schedule:
//!
//! * **Reading** — [`Conn::on_bytes`] appends whatever the transport
//!   delivered (a split half-line, three coalesced requests, one byte at a
//!   time — framing is tolerant of any chunking) and extracts complete
//!   newline-terminated lines as [`FramedRequest`]s for dispatch.
//! * **Dispatching** — each framed request claims a sequence-numbered
//!   *slot* in the response queue. Dispatch may complete out of order
//!   (the event loops hand requests to a compute pool);
//!   [`Conn::complete`] files each response into its slot.
//! * **Writing** — [`Conn::output`] exposes exactly the responses whose
//!   turn has come: slots drain to the write buffer strictly in request
//!   order, so **pipelined responses are always written in the order the
//!   requests arrived**, no matter what order compute finished in.
//!
//! Framing-level refusals never reach dispatch: a line that is not valid
//! UTF-8 answers an error in its slot (the connection survives, matching
//! the blocking path), and a line exceeding the configured byte bound
//! answers one parseable [`crate::wire::ERR_TOO_LARGE`] refusal after
//! which the connection is closed once pending output drains — the
//! pre-bound server grew its read buffer without limit instead.
//!
//! Both server cores drive the same machine — the blocking thread-per-
//! connection path feeds it from a timed read loop and dispatches inline;
//! the event-driven path feeds it from readiness events and completes
//! asynchronously — which is what makes the deterministic harness in
//! `tests/pipeline.rs` meaningful: byte-for-byte equality of [`Conn`]
//! output across schedules *is* equality of what either server writes.

use crate::wire::{error_response, fatal_coded_error, ERR_TOO_LARGE};
use std::collections::VecDeque;

/// Request-line byte bound when [`crate::ServerConfig::max_line_bytes`]
/// is `0`: 1 MiB, far above any legitimate request in this protocol.
pub const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// One complete request line extracted by framing, ready for dispatch.
/// `seq` names the response slot [`Conn::complete`] must fill.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FramedRequest {
    /// The slot this request's response belongs to.
    pub seq: u64,
    /// The trimmed request line (framing already validated UTF-8).
    pub text: String,
}

/// One position in the in-order response queue.
#[derive(Debug)]
enum Slot {
    /// Dispatched, response not yet filed.
    Waiting(u64),
    /// Response bytes (newline-terminated), ready to drain to the write
    /// buffer once every earlier slot has drained.
    Ready(Vec<u8>),
}

/// The per-connection state machine. See the module docs for the
/// Reading → Dispatching → Writing lifecycle.
#[derive(Debug)]
pub struct Conn {
    /// Bytes of the (at most one) incomplete line.
    buf: Vec<u8>,
    /// Prefix of `buf` already known to contain no newline, so repeated
    /// small chunks don't rescan the whole partial line.
    scanned: usize,
    /// In-order response slots for requests in flight.
    slots: VecDeque<Slot>,
    /// Response bytes whose turn has come, not yet taken by the driver.
    out: Vec<u8>,
    next_seq: u64,
    max_line: usize,
    /// An oversized line was refused; framing is over.
    poisoned: bool,
    /// The transport reported end of input.
    eof: bool,
    /// A `shutdown` response was filed at this seq; later slots are
    /// dropped and the connection closes once output drains.
    stop_seq: Option<u64>,
    /// Complete lines extracted so far (blank and refused lines
    /// included). Drivers diff this across a read to reset their idle /
    /// request timers exactly at line boundaries, like the blocking
    /// path's per-line loop did.
    lines: u64,
}

impl Conn {
    /// A fresh connection bounded by `max_line_bytes` per request line
    /// (`0` → [`DEFAULT_MAX_LINE_BYTES`]).
    pub fn new(max_line_bytes: usize) -> Conn {
        Conn {
            buf: Vec::new(),
            scanned: 0,
            slots: VecDeque::new(),
            out: Vec::new(),
            next_seq: 0,
            max_line: if max_line_bytes == 0 {
                DEFAULT_MAX_LINE_BYTES
            } else {
                max_line_bytes
            },
            poisoned: false,
            eof: false,
            stop_seq: None,
            lines: 0,
        }
    }

    /// Feeds bytes as they arrived off the transport and returns the
    /// complete requests they finished, in arrival order. Framing-level
    /// refusals (invalid UTF-8, an oversized line) claim their response
    /// slots internally and are never returned for dispatch.
    pub fn on_bytes(&mut self, data: &[u8]) -> Vec<FramedRequest> {
        if self.reading_closed() {
            return Vec::new();
        }
        self.buf.extend_from_slice(data);
        let mut requests = Vec::new();
        loop {
            let newline = self.buf.iter().skip(self.scanned).position(|&b| b == b'\n');
            match newline {
                Some(rel) => {
                    let line_end = self.scanned + rel;
                    if line_end > self.max_line {
                        self.poison();
                        break;
                    }
                    let line: Vec<u8> = self.buf.drain(..=line_end).collect();
                    self.scanned = 0;
                    self.lines += 1;
                    if let Some(request) = self.frame_line(&line) {
                        requests.push(request);
                    }
                    if self.reading_closed() {
                        break;
                    }
                }
                None => {
                    self.scanned = self.buf.len();
                    if self.buf.len() > self.max_line {
                        self.poison();
                    }
                    break;
                }
            }
        }
        requests
    }

    /// Reports end of input. A final unterminated line is framed exactly
    /// like a complete one (matching `read_until`'s behavior on the
    /// blocking path); the connection closes once pending slots fill and
    /// output drains.
    pub fn on_eof(&mut self) -> Vec<FramedRequest> {
        if self.reading_closed() {
            self.eof = true;
            return Vec::new();
        }
        self.eof = true;
        let mut requests = Vec::new();
        if !self.buf.is_empty() {
            let line: Vec<u8> = std::mem::take(&mut self.buf);
            self.scanned = 0;
            self.lines += 1;
            if let Some(request) = self.frame_line(&line) {
                requests.push(request);
            }
        }
        requests
    }

    /// Frames one extracted line: skips blank lines, answers the UTF-8
    /// refusal in place, or claims a slot and returns the request.
    fn frame_line(&mut self, line: &[u8]) -> Option<FramedRequest> {
        let Ok(text) = std::str::from_utf8(line) else {
            let reply = error_response("request line is not valid UTF-8");
            self.slots
                .push_back(Slot::Ready(line_bytes(&reply.compact())));
            return None;
        };
        let text = text.trim();
        if text.is_empty() {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots.push_back(Slot::Waiting(seq));
        Some(FramedRequest {
            seq,
            text: text.to_string(),
        })
    }

    /// Refuses the in-progress oversized line with one parseable
    /// `too_large` error (queued behind any earlier in-flight responses,
    /// so pipelined predecessors still answer) and ends framing.
    fn poison(&mut self) {
        let reply = fatal_coded_error(
            ERR_TOO_LARGE,
            &format!(
                "request line exceeds the {} byte bound; closing the connection",
                self.max_line
            ),
        );
        self.slots
            .push_back(Slot::Ready(line_bytes(&reply.compact())));
        self.poisoned = true;
        self.buf.clear();
        self.scanned = 0;
    }

    /// Files the response for slot `seq` (the compact JSON line, without
    /// its trailing newline). `stop` marks a `shutdown` response: slots
    /// after it are dropped — nothing is written past the acknowledgment,
    /// matching the blocking path — and the connection closes once output
    /// drains. Unknown or already-dropped seqs are ignored.
    pub fn complete(&mut self, seq: u64, response: &str, stop: bool) {
        if self.stop_seq.is_some_and(|s| seq > s) {
            return;
        }
        let position = self
            .slots
            .iter()
            .position(|slot| matches!(slot, Slot::Waiting(s) if *s == seq));
        let Some(position) = position else {
            return;
        };
        if let Some(slot) = self.slots.get_mut(position) {
            *slot = Slot::Ready(line_bytes(response));
        }
        if stop {
            self.stop_seq = Some(seq);
            self.slots.truncate(position + 1);
        }
    }

    /// Moves every leading Ready slot into the write buffer, preserving
    /// request order across out-of-order completions.
    fn promote(&mut self) {
        while matches!(self.slots.front(), Some(Slot::Ready(_))) {
            if let Some(Slot::Ready(bytes)) = self.slots.pop_front() {
                self.out.extend_from_slice(&bytes);
            }
        }
    }

    /// The response bytes whose turn has come and have not been consumed.
    /// Call [`Conn::consume`] with however many the transport accepted.
    pub fn output(&mut self) -> &[u8] {
        self.promote();
        &self.out
    }

    /// Discards the first `n` output bytes as written to the transport.
    pub fn consume(&mut self, n: usize) {
        let n = n.min(self.out.len());
        self.out.drain(..n);
    }

    /// Whether undelivered output exists (after promoting due slots).
    pub fn has_output(&mut self) -> bool {
        !self.output().is_empty()
    }

    /// Dispatched requests whose responses have not been filed yet — the
    /// event loop's per-connection backpressure signal.
    pub fn in_flight(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| matches!(s, Slot::Waiting(_)))
            .count()
    }

    /// Whether a request line has started but not finished (drives the
    /// request timeout; a connection with no partial line is *idle*).
    pub fn has_partial(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Total complete lines extracted so far (blank and refused lines
    /// included) — see the `lines` field for why drivers diff this.
    pub fn lines_seen(&self) -> u64 {
        self.lines
    }

    /// Whether the machine accepts no further input: refused line, EOF,
    /// or a filed shutdown response.
    pub fn reading_closed(&self) -> bool {
        self.poisoned || self.eof || self.stop_seq.is_some()
    }

    /// Whether the connection is done: no further input will be read and
    /// every response due has been handed to the transport. The driver
    /// closes the socket when this turns true.
    pub fn wants_close(&mut self) -> bool {
        self.promote();
        self.reading_closed() && self.slots.is_empty() && self.out.is_empty()
    }
}

/// A response line as wire bytes: compact JSON plus the terminator.
fn line_bytes(compact: &str) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(compact.len() + 1);
    bytes.extend_from_slice(compact.as_bytes());
    bytes.push(b'\n');
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::json::Json;

    fn drain(conn: &mut Conn) -> String {
        let bytes = conn.output().to_vec();
        conn.consume(bytes.len());
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn split_and_coalesced_chunks_frame_identically() {
        let wire = b"{\"op\":\"ping\"}\n{\"op\":\"health\"}\n";
        // One byte at a time vs one coalesced chunk: same requests.
        let mut split = Conn::new(0);
        let mut split_reqs = Vec::new();
        for b in wire.iter() {
            split_reqs.extend(split.on_bytes(&[*b]));
        }
        let mut whole = Conn::new(0);
        let whole_reqs = whole.on_bytes(wire);
        assert_eq!(split_reqs, whole_reqs);
        assert_eq!(whole_reqs.len(), 2);
        assert_eq!(whole_reqs[0].text, "{\"op\":\"ping\"}");
        assert_eq!(whole_reqs[0].seq, 0);
        assert_eq!(whole_reqs[1].seq, 1);
    }

    #[test]
    fn responses_drain_in_request_order_despite_completion_order() {
        let mut conn = Conn::new(0);
        let reqs = conn.on_bytes(b"{\"op\":\"a\"}\n{\"op\":\"b\"}\n{\"op\":\"c\"}\n");
        assert_eq!(reqs.len(), 3);
        // Complete out of order: c, a, b.
        conn.complete(2, "{\"r\":\"c\"}", false);
        assert_eq!(drain(&mut conn), "", "c must wait for a and b");
        conn.complete(0, "{\"r\":\"a\"}", false);
        assert_eq!(drain(&mut conn), "{\"r\":\"a\"}\n");
        conn.complete(1, "{\"r\":\"b\"}", false);
        assert_eq!(drain(&mut conn), "{\"r\":\"b\"}\n{\"r\":\"c\"}\n");
        assert_eq!(conn.in_flight(), 0);
        assert!(!conn.wants_close(), "no EOF yet");
    }

    #[test]
    fn blank_lines_and_whitespace_are_skipped() {
        let mut conn = Conn::new(0);
        let reqs = conn.on_bytes(b"\n  \n\r\n{\"op\":\"ping\"}\r\n");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].text, "{\"op\":\"ping\"}");
    }

    #[test]
    fn invalid_utf8_answers_in_slot_order_and_framing_survives() {
        let mut conn = Conn::new(0);
        let mut wire = b"{\"op\":\"a\"}\n".to_vec();
        wire.extend_from_slice(&[0xff, 0xfe, b'\n']);
        wire.extend_from_slice(b"{\"op\":\"b\"}\n");
        let reqs = conn.on_bytes(&wire);
        assert_eq!(reqs.len(), 2, "the bad line frames no request");
        conn.complete(0, "{\"r\":\"a\"}", false);
        conn.complete(1, "{\"r\":\"b\"}", false);
        let out = drain(&mut conn);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "{\"r\":\"a\"}");
        let err = Json::parse(lines[1]).unwrap();
        assert_eq!(err.get("ok").and_then(Json::as_bool), Some(false));
        assert!(err
            .get("error")
            .and_then(Json::as_str)
            .unwrap()
            .contains("UTF-8"));
        assert_eq!(lines[2], "{\"r\":\"b\"}");
        assert!(!conn.reading_closed(), "bad UTF-8 is not fatal");
    }

    #[test]
    fn oversized_line_answers_too_large_once_and_closes() {
        let mut conn = Conn::new(32);
        // A pipelined predecessor, then the flood.
        let reqs = conn.on_bytes(b"{\"op\":\"a\"}\n");
        assert_eq!(reqs.len(), 1);
        assert!(conn.on_bytes(&[b'x'; 20]).is_empty());
        assert!(!conn.reading_closed(), "20 bytes is under the bound");
        assert!(conn.on_bytes(&[b'x'; 20]).is_empty());
        assert!(conn.reading_closed(), "40 bytes crossed the bound");
        // Later input is ignored entirely.
        assert!(conn.on_bytes(b"{\"op\":\"b\"}\n").is_empty());
        // The predecessor still answers first, then the refusal.
        conn.complete(0, "{\"r\":\"a\"}", false);
        let out = drain(&mut conn);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "{\"r\":\"a\"}");
        let refusal = Json::parse(lines[1]).unwrap();
        assert_eq!(
            refusal.get("code").and_then(Json::as_str),
            Some("too_large")
        );
        assert_eq!(refusal.get("ok").and_then(Json::as_bool), Some(false));
        assert!(
            refusal.get("retryable").is_none(),
            "too_large is fatal, not retryable"
        );
        assert!(conn.wants_close());
    }

    #[test]
    fn oversized_complete_line_is_refused_not_dispatched() {
        let mut conn = Conn::new(8);
        let mut wire = vec![b'y'; 30];
        wire.push(b'\n');
        assert!(conn.on_bytes(&wire).is_empty());
        assert!(conn.reading_closed());
        let out = drain(&mut conn);
        assert!(out.contains("too_large"), "{out}");
    }

    #[test]
    fn eof_frames_the_final_unterminated_line() {
        let mut conn = Conn::new(0);
        assert!(conn.on_bytes(b"{\"op\":\"ping\"}").is_empty());
        assert!(conn.has_partial());
        let reqs = conn.on_eof();
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].text, "{\"op\":\"ping\"}");
        assert!(!conn.wants_close(), "the final response is still owed");
        conn.complete(0, "{\"r\":1}", false);
        assert_eq!(drain(&mut conn), "{\"r\":1}\n");
        assert!(conn.wants_close());
    }

    #[test]
    fn shutdown_stops_reading_and_drops_later_slots() {
        let mut conn = Conn::new(0);
        let reqs = conn.on_bytes(b"{\"op\":\"ping\"}\n{\"op\":\"shutdown\"}\n{\"op\":\"ping\"}\n");
        assert_eq!(reqs.len(), 3);
        conn.complete(1, "{\"stopping\":true}", true);
        assert!(conn.reading_closed());
        // The late completion of seq 2 is dropped silently.
        conn.complete(2, "{\"r\":\"late\"}", false);
        conn.complete(0, "{\"r\":\"first\"}", false);
        let out = drain(&mut conn);
        assert_eq!(out, "{\"r\":\"first\"}\n{\"stopping\":true}\n");
        assert!(conn.wants_close());
        assert!(conn.on_bytes(b"{\"op\":\"ping\"}\n").is_empty());
    }

    #[test]
    fn slow_drain_consumes_incrementally() {
        let mut conn = Conn::new(0);
        conn.on_bytes(b"{\"op\":\"a\"}\n");
        conn.complete(0, "{\"r\":\"a\"}", false);
        let mut collected = Vec::new();
        // Three bytes per "writable window".
        while conn.has_output() {
            let chunk: Vec<u8> = conn.output().iter().take(3).copied().collect();
            collected.extend_from_slice(&chunk);
            conn.consume(chunk.len());
        }
        assert_eq!(String::from_utf8(collected).unwrap(), "{\"r\":\"a\"}\n");
    }

    #[test]
    fn unknown_and_duplicate_completions_are_ignored() {
        let mut conn = Conn::new(0);
        conn.on_bytes(b"{\"op\":\"a\"}\n");
        conn.complete(7, "{\"bogus\":1}", false);
        conn.complete(0, "{\"r\":1}", false);
        conn.complete(0, "{\"r\":2}", false);
        assert_eq!(drain(&mut conn), "{\"r\":1}\n");
    }
}

//! The resident TCP service: acceptor, worker pool, request dispatch.
//!
//! One acceptor thread hands accepted connections to a fixed pool of
//! worker threads over a channel; each worker owns a connection for its
//! lifetime and processes newline-delimited JSON requests in order (see
//! [`crate::wire`]). All published state lives in one shared `State`:
//! the dataset registry and a content-addressed artifact cache whose
//! entries are computed at most once and then served lock-free (workers
//! hold `Arc`s; the cache mutex guards only map lookups).
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) raises a flag and pokes the acceptor with a
//! loopback connection; the acceptor stops handing out connections, the
//! channel closes, and workers exit once their current connections finish.

use crate::artifact::Artifact;
use crate::registry::{DatasetSpec, Registry};
use crate::wire::{error_response, ok_response, CountRequest, PublishRequest};
use betalike_microdata::json::Json;
use betalike_query::{AggQuery, RangePred};
use betalike_store::ArtifactStore;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// How a server is started.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads; `0` chooses `max(8, mini_rayon::threads())` so a
    /// default server already sustains eight concurrent clients.
    ///
    /// Connections are *sticky*: a worker owns one connection until the
    /// client disconnects. Clients beyond the pool size queue (their TCP
    /// connect succeeds but no request is read) until a worker frees up —
    /// size the pool for the expected number of simultaneously *open*
    /// connections, not the request rate.
    pub threads: usize,
    /// A dataset to materialize before accepting traffic, so first-query
    /// latency is not paid by a client.
    pub preload: Option<DatasetSpec>,
    /// Durable publication storage. When set, every fresh publish is
    /// written through to `<data-dir>/artifacts/` and lookups of handles
    /// published by *previous* processes lazily load the stored artifact —
    /// a restarted server answers `count`/`audit` for them bit-identically
    /// with zero pipeline recomputation.
    pub data_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            preload: None,
            data_dir: None,
        }
    }
}

/// Shared server state: everything a worker needs to answer any request.
#[derive(Debug)]
pub(crate) struct State {
    registry: Registry,
    artifacts: crate::registry::LazyMap<Result<Arc<Artifact>, String>>,
    store: Option<ArtifactStore>,
    shutdown: AtomicBool,
    addr: SocketAddr,
}

/// A running server: its bound address plus the thread handles needed to
/// join or stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client: raises the flag and pokes the
    /// acceptor.
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// Blocks until the acceptor and every worker exit (after a shutdown
    /// request from any side).
    pub fn join(self) {
        let _ = self.acceptor.join();
        for w in self.workers {
            let _ = w.join();
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds, spawns the acceptor and worker pool, and returns immediately.
///
/// # Errors
///
/// Propagates the bind failure, or a data directory that cannot be opened
/// (unwritable, or a manifest too damaged to trust).
pub fn serve(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let store = match &cfg.data_dir {
        None => None,
        Some(dir) => {
            let (store, quarantined) = ArtifactStore::open(dir).map_err(|e| {
                std::io::Error::other(format!("open data dir {}: {e}", dir.display()))
            })?;
            for handle in quarantined {
                eprintln!("betalike-serve: quarantined corrupt stored artifact `{handle}`");
            }
            Some(store)
        }
    };
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let threads = if cfg.threads == 0 {
        mini_rayon::threads().max(8)
    } else {
        cfg.threads
    };
    let state = Arc::new(State {
        registry: Registry::new(),
        artifacts: crate::registry::LazyMap::default(),
        store,
        shutdown: AtomicBool::new(false),
        addr,
    });
    if let Some(spec) = &cfg.preload {
        state.registry.dataset(spec);
    }
    let (tx, rx) = channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..threads)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&state);
            std::thread::spawn(move || worker_loop(&rx, &state))
        })
        .collect();
    let acceptor = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || acceptor_loop(&listener, &tx, &state))
    };
    Ok(ServerHandle {
        addr,
        state,
        acceptor,
        workers,
    })
}

fn initiate_shutdown(state: &State) {
    state.shutdown.store(true, Ordering::SeqCst);
    // Poke the acceptor so its blocking accept() observes the flag.
    let _ = TcpStream::connect(state.addr);
}

fn acceptor_loop(listener: &TcpListener, tx: &Sender<TcpStream>, state: &State) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break; // the poke connection (or late arrival) is dropped
                }
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept errors (EMFILE, aborted handshake): keep
                // serving, but yield briefly — a *persistent* error (fd
                // exhaustion) would otherwise spin this loop at 100% CPU.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    // Dropping `tx` (by returning) closes the channel; idle workers exit.
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => handle_connection(stream, state),
            Err(_) => break, // channel closed: shutdown
        }
    }
}

/// Processes one connection's requests in order until EOF, an I/O error,
/// a `shutdown` request, or server shutdown.
///
/// Reads run under a short timeout so a worker parked on an idle
/// connection still observes shutdown. Lines are accumulated as *bytes*
/// (`read_until`) and validated as UTF-8 only once complete:
/// `read_line`'s guard would discard already-consumed bytes if a timeout
/// fired mid-multibyte character, silently corrupting request framing.
fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    // Responses are one small frame each; without NODELAY, Nagle holds
    // them back against the peer's delayed ACK (~40ms per round trip).
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(std::time::Duration::from_millis(200)))
        .is_err()
    {
        return;
    }
    let mut writer = writer;
    let mut reader = BufReader::new(stream);
    let mut raw = Vec::new();
    loop {
        raw.clear();
        loop {
            match reader.read_until(b'\n', &mut raw) {
                Ok(0) => return, // EOF
                Ok(_) => break,  // a full line (or final unterminated one)
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // Bytes that arrived before the timeout stay appended
                    // to `raw`; keep accumulating unless the server is
                    // draining.
                    if state.shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                }
                Err(_) => return, // broken connection
            }
        }
        let Ok(text) = std::str::from_utf8(&raw) else {
            let reply = error_response("request line is not valid UTF-8");
            if writer
                .write_all((reply.compact() + "\n").as_bytes())
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
            continue;
        };
        let text = text.trim();
        if text.is_empty() {
            continue;
        }
        let (response, stop) = respond(state, text);
        if writer
            .write_all((response.compact() + "\n").as_bytes())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
        if stop {
            initiate_shutdown(state);
            return;
        }
    }
}

/// Parses and dispatches one request line. The dispatch is wrapped in
/// `catch_unwind` so a bug in an algorithm takes down one request, not a
/// pool worker.
fn respond(state: &Arc<State>, text: &str) -> (Json, bool) {
    let doc = match Json::parse(text) {
        Ok(doc) => doc,
        Err(e) => return (error_response(&format!("parse: {e}")), false),
    };
    let op = doc.get("op").and_then(Json::as_str).unwrap_or_default();
    if op == "shutdown" {
        return (
            ok_response(vec![("stopping".into(), Json::Bool(true))]),
            true,
        );
    }
    let result = catch_unwind(AssertUnwindSafe(|| dispatch(state, op, &doc)));
    let response = match result {
        Ok(Ok(response)) => response,
        Ok(Err(message)) => error_response(&message),
        Err(_) => error_response("internal error while handling the request"),
    };
    (response, false)
}

fn dispatch(state: &Arc<State>, op: &str, doc: &Json) -> Result<Json, String> {
    match op {
        "ping" => Ok(ok_response(vec![("pong".into(), Json::Bool(true))])),
        "datasets" => {
            let datasets = state.registry.loaded().into_iter().map(Json::Str).collect();
            let published = state
                .artifacts
                .keys()
                .into_iter()
                .filter(|h| matches!(state.artifacts.get(h), Some(Ok(_))))
                .map(Json::Str)
                .collect();
            let mut members = vec![
                ("datasets".into(), Json::Arr(datasets)),
                ("published".into(), Json::Arr(published)),
            ];
            if let Some(store) = &state.store {
                let stored = store.handles().into_iter().map(Json::Str).collect();
                members.push(("stored".into(), Json::Arr(stored)));
            }
            Ok(ok_response(members))
        }
        "publish" => publish(state, doc),
        "count" => count(state, doc),
        "audit" => {
            let handle = doc
                .get("handle")
                .and_then(Json::as_str)
                .ok_or("audit needs a string `handle`")?;
            let artifact = lookup(state, handle)?;
            let mut members = vec![("handle".to_string(), Json::Str(handle.into()))];
            if let Json::Obj(audit) = artifact.audit_json() {
                members.extend(audit);
            }
            Ok(ok_response(members))
        }
        "verify" => verify(state, doc),
        other => Err(format!(
            "unknown op `{other}` (expected ping | datasets | publish | count | audit | verify \
             | shutdown)"
        )),
    }
}

fn publish(state: &Arc<State>, doc: &Json) -> Result<Json, String> {
    let request = PublishRequest::from_json(doc)?;
    let handle = request.handle();
    // A handle persisted by a previous process is *loaded*, not recomputed
    // (and counts as cached: the publish work already happened).
    let mut fresh = false;
    let artifact = match resident_or_stored(state, &handle) {
        Ok(Some(artifact)) => artifact,
        Ok(None) | Err(_) => {
            // Unknown (or quarantined-as-corrupt, already logged): compute.
            let artifact = state.artifacts.get_or_init(&handle, || {
                fresh = true;
                Artifact::publish(&state.registry, &request)
            })?;
            if fresh {
                persist(state, &artifact);
            }
            artifact
        }
    };
    let mut members = vec![
        ("handle".to_string(), Json::Str(handle)),
        (
            "kind".to_string(),
            Json::Str(artifact.answerer.kind().into()),
        ),
        ("algo".to_string(), Json::Str(request.algo.as_str().into())),
        (
            "rows".to_string(),
            Json::Num(artifact.dataset.table.num_rows() as f64),
        ),
        ("cached".to_string(), Json::Bool(!fresh)),
    ];
    if let Some(ecs) = artifact.num_ecs() {
        members.push(("ecs".to_string(), Json::Num(ecs as f64)));
    }
    if let Some(store) = &state.store {
        members.push((
            "persisted".to_string(),
            Json::Bool(store.entry(&artifact.handle).is_some()),
        ));
    }
    Ok(ok_response(members))
}

/// Write-through persistence of a freshly computed artifact. Failure to
/// persist never fails the publish — the artifact is resident and
/// serveable — but is logged and visible as `persisted: false` in the
/// acknowledgment.
fn persist(state: &Arc<State>, artifact: &Arc<Artifact>) {
    let Some(store) = &state.store else {
        return;
    };
    let snap = crate::persist::snapshot(artifact);
    if let Err(e) = store.save(&snap) {
        eprintln!(
            "betalike-serve: failed to persist `{}`: {e}",
            artifact.handle
        );
    }
}

/// The `verify` op: runs the independent conformance oracle (and, on
/// request, the adversarial attack battery) over a published handle. The
/// artifact is resolved exactly like `count`/`audit` — memory cache first,
/// then the durable store — and re-snapshotted through the same
/// persistence capture the `.bpub` writer uses, so the oracle sees the
/// artifact as a restart would.
fn verify(state: &Arc<State>, doc: &Json) -> Result<Json, String> {
    let handle = doc
        .get("handle")
        .and_then(Json::as_str)
        .ok_or("verify needs a string `handle`")?;
    let battery = match doc.get("battery") {
        None => false,
        Some(v) => v.as_bool().ok_or("`battery` must be a boolean")?,
    };
    let artifact = lookup(state, handle)?;
    let snap = crate::persist::snapshot(&artifact);
    let report = betalike_conformance::verify_snapshot(&snap);
    let mut members = vec![
        ("handle".to_string(), Json::Str(handle.into())),
        ("pass".to_string(), Json::Bool(report.pass())),
        ("report".to_string(), report.to_json()),
    ];
    if battery {
        let battery_report = betalike_conformance::run_battery_snapshot(&snap)?;
        members.push((
            "battery_pass".to_string(),
            Json::Bool(battery_report.pass()),
        ));
        members.push(("battery".to_string(), battery_report.to_json()));
    }
    Ok(ok_response(members))
}

fn count(state: &Arc<State>, doc: &Json) -> Result<Json, String> {
    let request = CountRequest::from_json(doc)?;
    let artifact = lookup(state, &request.handle)?;
    validate_preds(&artifact, &request)?;
    let query = AggQuery {
        qi_preds: request.qi_preds.clone(),
        sa_pred: RangePred {
            attr: artifact.dataset.sa,
            lo: request.sa_lo,
            hi: request.sa_hi,
        },
    };
    let estimate = artifact
        .answerer
        .estimate(&query)
        .map_err(|e| e.to_string())?;
    let mut members = vec![("estimate".to_string(), Json::Num(estimate))];
    if request.exact {
        members.push((
            "exact".to_string(),
            Json::Num(artifact.answerer.exact(&query) as f64),
        ));
    }
    Ok(ok_response(members))
}

fn lookup(state: &Arc<State>, handle: &str) -> Result<Arc<Artifact>, String> {
    match resident_or_stored(state, handle)? {
        Some(artifact) => Ok(artifact),
        None => Err(format!("unknown handle `{handle}` (publish first)")),
    }
}

/// The artifact for `handle` if it is resident or durably stored:
/// memory-cache hit first, then a lazy load from the data directory
/// (restored artifacts are inserted into the memory cache, so the disk is
/// read at most once per handle per process).
///
/// `Ok(None)` means the handle is genuinely unknown. `Err` carries a
/// wire-level message: a previously failed publish, or a stored artifact
/// that turned out corrupt — which is quarantined here, so a later
/// `publish` of the same parameters recomputes and re-persists it.
fn resident_or_stored(state: &Arc<State>, handle: &str) -> Result<Option<Arc<Artifact>>, String> {
    match state.artifacts.get(handle) {
        Some(Ok(artifact)) => return Ok(Some(artifact)),
        Some(Err(e)) => return Err(format!("publish for `{handle}` had failed: {e}")),
        None => {}
    }
    let Some(store) = &state.store else {
        return Ok(None);
    };
    match store.load(handle) {
        Ok(None) => Ok(None),
        Ok(Some(snap)) => match crate::persist::restore(snap) {
            Ok(restored) => {
                // Racing loaders resolve to one inserted artifact.
                let artifact = state.artifacts.get_or_init(handle, || Ok(restored))?;
                Ok(Some(artifact))
            }
            Err(e) => {
                let _ = store.quarantine(handle);
                eprintln!(
                    "betalike-serve: stored artifact `{handle}` failed to restore ({e}); quarantined"
                );
                Err(format!(
                    "stored artifact `{handle}` was unusable and has been quarantined; republish to recompute"
                ))
            }
        },
        // A transient I/O failure (EMFILE under load, a momentary disk
        // hiccup) is not evidence of corruption — report it as retryable
        // and leave the file alone. A *missing* file is different: the
        // manifest row is stale, so fall through and let quarantine drop
        // it (making the handle honestly unknown / recomputable).
        Err(betalike_store::StoreError::Io(e)) if e.kind() != std::io::ErrorKind::NotFound => Err(
            format!("stored artifact `{handle}` could not be read: {e} (transient; retry)"),
        ),
        // Integrity failures (checksum, truncation, malformed sections,
        // version skew) are permanent for this file: quarantine it.
        Err(e) => {
            let _ = store.quarantine(handle);
            eprintln!("betalike-serve: stored artifact `{handle}` is corrupt ({e}); quarantined");
            Err(format!(
                "stored artifact `{handle}` was corrupt and has been quarantined; republish to recompute"
            ))
        }
    }
}

/// Rejects predicates the artifact cannot answer (instead of letting an
/// estimator panic inside a worker).
fn validate_preds(artifact: &Artifact, request: &CountRequest) -> Result<(), String> {
    let table = artifact.answerer.source();
    let arity = table.schema().arity();
    for p in &request.qi_preds {
        if p.attr >= arity {
            return Err(format!("pred attr {} out of range (arity {arity})", p.attr));
        }
        if p.attr == artifact.dataset.sa {
            return Err("the SA is predicated via `sa`, not `preds`".into());
        }
        if !artifact.qi.is_empty() && !artifact.qi.contains(&p.attr) {
            return Err(format!(
                "attr {} is outside the published QI set {:?}",
                p.attr, artifact.qi
            ));
        }
    }
    Ok(())
}

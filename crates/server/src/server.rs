//! The resident TCP service: connection handling, request dispatch.
//!
//! The server has **two interchangeable cores** behind one wire contract:
//!
//! * The default *threaded* core (this module): one acceptor thread hands
//!   accepted connections to a fixed pool of worker threads over a
//!   *bounded* channel; each worker owns a connection for its lifetime
//!   and processes newline-delimited JSON requests in order (see
//!   [`crate::wire`]).
//! * The *event-driven* core ([`crate::event`], enabled by
//!   [`ServerConfig::event_loops`] > 0): N readiness loops multiplex all
//!   connections over non-blocking sockets and hand compute to a worker
//!   pool, which unlocks request **pipelining** (DESIGN.md §15).
//!
//! Both cores frame and order requests through the same
//! [`crate::conn::Conn`] state machine, so their wire behavior is
//! byte-identical by construction — the deterministic harness in
//! `tests/pipeline.rs` asserts it. All published state lives in one
//! shared `State`: the dataset registry and a content-addressed artifact
//! cache whose entries are computed at most once and then served
//! lock-free (workers hold `Arc`s; the cache mutex guards only map
//! lookups).
//!
//! # Overload protection (DESIGN.md §12)
//!
//! Admission is bounded: when every worker is busy and the queue holds
//! [`ServerConfig::queue`] waiting connections, further arrivals are
//! *shed* — the acceptor writes one retryable
//! [`crate::wire::ERR_OVERLOADED`] error line and closes, instead of
//! letting connections pile up unread until the kernel backlog turns them
//! into opaque resets. Workers poll reads on a configurable tick
//! ([`ServerConfig::read_timeout_ms`]) so idle and half-written requests
//! can expire ([`ServerConfig::idle_timeout_ms`] /
//! [`ServerConfig::request_timeout_ms`]); cold-cache publishes accept an
//! optional `deadline_ms` after which the worker answers a retryable
//! `deadline` error while the computation continues in the background.
//! When the durable store reports persistent write failures the server
//! turns read-only: cold publishes are refused with a retryable `degraded`
//! error, everything already resident or stored keeps serving. The
//! `health` op reports all of it.
//!
//! Shutdown is cooperative: a `shutdown` request (or
//! [`ServerHandle::shutdown`]) raises a flag and pokes the acceptor with a
//! loopback connection; the acceptor stops handing out connections, the
//! channel closes, and workers exit once their current connections finish.
//! Workers observe the flag within one read tick, so shutdown latency is
//! bounded by `read_timeout_ms` plus the in-flight request.

use crate::artifact::Artifact;
use crate::conn::Conn;
use crate::obs::ServerObs;
use crate::registry::{DatasetSpec, Registry};
use crate::result_cache::{cache_key, ResultCache, DEFAULT_RESULT_CACHE};
use crate::wire::{
    error_response, ok_response, retryable_error, CountRequest, PublishRequest, ERR_DEADLINE,
    ERR_DEGRADED, ERR_OVERLOADED,
};
use betalike_faults::{RealVfs, Vfs};
use betalike_microdata::json::Json;
use betalike_obs::{Level, Registry as MetricsRegistry, Trace};
use betalike_query::{AggQuery, CatalogStats, RangePred};
use betalike_store::{ArtifactStore, StoreObs};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Admission-queue depth when [`ServerConfig::queue`] is `0`.
pub const DEFAULT_QUEUE: usize = 64;
/// Read poll tick in milliseconds when [`ServerConfig::read_timeout_ms`]
/// is `0`. This is also the shutdown-latency bound for idle workers.
pub const DEFAULT_READ_TIMEOUT_MS: u64 = 200;
/// Poll step for deadline-bounded publishes, milliseconds.
const PUBLISH_POLL_MS: u64 = 10;

/// How a server is started.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port `0` picks an ephemeral port (read it back from
    /// [`ServerHandle::addr`]).
    pub addr: String,
    /// Worker threads; `0` chooses `max(8, mini_rayon::threads())` so a
    /// default server already sustains eight concurrent clients.
    ///
    /// Connections are *sticky*: a worker owns one connection until the
    /// client disconnects. Clients beyond the pool size queue (their TCP
    /// connect succeeds but no request is read) until a worker frees up —
    /// size the pool for the expected number of simultaneously *open*
    /// connections, not the request rate.
    pub threads: usize,
    /// A dataset to materialize before accepting traffic, so first-query
    /// latency is not paid by a client.
    pub preload: Option<DatasetSpec>,
    /// Durable publication storage. When set, every fresh publish is
    /// written through to `<data-dir>/artifacts/` and lookups of handles
    /// published by *previous* processes lazily load the stored artifact —
    /// a restarted server answers `count`/`audit` for them bit-identically
    /// with zero pipeline recomputation.
    pub data_dir: Option<PathBuf>,
    /// Read poll tick in milliseconds (`0` →
    /// [`DEFAULT_READ_TIMEOUT_MS`]). Every `read_timeout_ms` a parked
    /// worker wakes to check the shutdown flag and the idle/request
    /// timers, so this bounds shutdown latency — and is the resolution of
    /// the two timeouts below.
    pub read_timeout_ms: u64,
    /// Idle-connection timeout in milliseconds (`0` = never). A
    /// connection that sends no byte of a next request for this long is
    /// closed silently, freeing its sticky worker.
    pub idle_timeout_ms: u64,
    /// Mid-request timeout in milliseconds (`0` = never). Once the first
    /// byte of a request line arrives, the newline must arrive within
    /// this; otherwise the worker writes one retryable
    /// [`crate::wire::ERR_DEADLINE`] error and closes the connection.
    pub request_timeout_ms: u64,
    /// Bounded admission-queue depth (`0` → [`DEFAULT_QUEUE`]): how many
    /// accepted connections may wait for a worker before new arrivals are
    /// shed with a retryable [`crate::wire::ERR_OVERLOADED`] error.
    pub queue: usize,
    /// Filesystem the durable store performs its syscalls through
    /// (`None` → the real filesystem). Injecting a
    /// [`betalike_faults::ChaosVfs`] here lets tests drive the server into
    /// degraded mode deterministically.
    pub vfs: Option<Arc<dyn Vfs>>,
    /// Whether published artifacts carry an aggregate catalog
    /// (`betalike_query::Catalog`) so `count` resolves from per-group
    /// summaries instead of row scans. Answers are bit-identical either
    /// way (the `--no-catalog` flag sets this `false` for A/B timing).
    pub catalog: bool,
    /// Capacity (entries) of the per-process `count` result cache; `0`
    /// disables it. A hit replays the stored response document, so hit
    /// and miss responses are byte-identical. Entries are invalidated per
    /// handle on fresh publishes and quarantines.
    pub result_cache: usize,
    /// Whether requests are *timed*: per-op latency histograms, pipeline
    /// spans, and the slow-query log all read the clock only when this is
    /// on. Counters and gauges (and so `health`/`metrics`) update either
    /// way, and responses are byte-identical either way — the perf
    /// suite's instrumentation-overhead benchmark flips exactly this.
    pub obs: bool,
    /// Structured-log level (stderr). The `betalike-serve` binary seeds
    /// this from `BETALIKE_LOG`, overridden by `--log-level`.
    pub log_level: Level,
    /// Emit log lines as JSON objects instead of `key=value` text.
    pub log_json: bool,
    /// Requests slower than this many milliseconds get one `warn` line
    /// with their per-span breakdown; `0` disables the slow-query log.
    /// Effective only while [`ServerConfig::obs`] is on (timings are the
    /// evidence the log reports).
    pub slow_query_ms: u64,
    /// Event loops for the event-driven core (`0` = the default threaded
    /// core). With N > 0 loops, connections are multiplexed over
    /// non-blocking sockets sharded across N readiness threads
    /// ([`crate::event`]): clients may *pipeline* requests (responses
    /// come back in request order), `threads` sizes the compute pool the
    /// loops hand dispatch to, and admission is capped at
    /// `threads + queue` concurrently open connections (the same bound
    /// the threaded core enforces with sticky workers plus its queue) —
    /// arrivals beyond it are shed with the identical retryable
    /// [`crate::wire::ERR_OVERLOADED`] line.
    pub event_loops: usize,
    /// Longest accepted request line in bytes (`0` →
    /// [`crate::conn::DEFAULT_MAX_LINE_BYTES`], 1 MiB). A line that
    /// exceeds the bound is answered with one parseable *fatal*
    /// [`crate::wire::ERR_TOO_LARGE`] error and the connection is closed
    /// — before this bound the read buffer grew without limit, so a
    /// newline-free sender could exhaust memory.
    pub max_line_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 0,
            preload: None,
            data_dir: None,
            read_timeout_ms: 0,
            idle_timeout_ms: 0,
            request_timeout_ms: 0,
            queue: 0,
            vfs: None,
            catalog: true,
            result_cache: DEFAULT_RESULT_CACHE,
            obs: true,
            log_level: Level::Warn,
            log_json: false,
            slow_query_ms: 0,
            event_loops: 0,
            max_line_bytes: 0,
        }
    }
}

/// Shared server state: everything a worker needs to answer any request.
/// Fields are `pub(crate)` because both cores — the threaded one here and
/// the event-driven one in [`crate::event`] — drive the same state.
#[derive(Debug)]
pub(crate) struct State {
    registry: Registry,
    artifacts: crate::registry::LazyMap<Result<Arc<Artifact>, String>>,
    store: Option<ArtifactStore>,
    pub(crate) shutdown: AtomicBool,
    addr: SocketAddr,
    /// Worker-pool size (for `health`; the event core's admission cap).
    pub(crate) workers: usize,
    /// Admission-queue capacity (for `health`; ditto).
    pub(crate) queue_capacity: usize,
    /// Metrics registry, per-op counters/histograms, logger, tracing.
    /// The admission gauges live here: the acceptor bumps `queue_depth`
    /// after a successful enqueue and the worker moves the connection to
    /// `active_connections` in one coherent registry transition.
    pub(crate) obs: ServerObs,
    /// Plan-classification counters shared by every artifact's catalog.
    catalog_stats: CatalogStats,
    /// Handles a detached background publisher is currently computing
    /// (deadline-bounded publishes claim here so at most one background
    /// thread runs per handle).
    inflight: Mutex<BTreeSet<String>>,
    pub(crate) read_timeout_ms: u64,
    pub(crate) idle_timeout_ms: u64,
    pub(crate) request_timeout_ms: u64,
    /// Whether publishes/restores derive aggregate catalogs.
    catalog: bool,
    /// The `count` result cache (capacity 0 = disabled).
    results: ResultCache,
    /// Event loops serving this process (`0` = threaded core).
    pub(crate) event_loops: usize,
    /// Request-line byte bound (`0` → the [`Conn`] default, 1 MiB).
    pub(crate) max_line_bytes: usize,
}

/// A running server: its bound address plus the thread handles needed to
/// join or stop it — the acceptor and workers of the threaded core, or
/// the event loops and compute pool of the event-driven one.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<State>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown without a client: raises the flag and pokes the
    /// accepting thread(s).
    pub fn shutdown(&self) {
        initiate_shutdown(&self.state);
    }

    /// Blocks until every server thread exits (after a shutdown request
    /// from any side).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// [`ServerHandle::shutdown`] then [`ServerHandle::join`].
    pub fn shutdown_and_join(self) {
        self.shutdown();
        self.join();
    }
}

/// Binds, spawns the chosen core ([`ServerConfig::event_loops`]), and
/// returns immediately.
///
/// # Errors
///
/// Propagates the bind failure, or a data directory that cannot be opened
/// (unwritable, or a manifest too damaged to trust).
pub fn serve(cfg: &ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;
    let state = build_state(cfg, addr)?;
    let threads = if cfg.event_loops > 0 {
        crate::event::spawn_event_core(&state, listener, cfg.event_loops)?
    } else {
        spawn_threaded_core(&state, listener)
    };
    Ok(ServerHandle {
        addr,
        state,
        threads,
    })
}

/// Everything [`serve`] does except binding and spawning: resolves the
/// config, opens the durable store, registers metrics, and preloads —
/// shared by both cores and by [`LocalServer`] (which never binds).
fn build_state(cfg: &ServerConfig, addr: SocketAddr) -> std::io::Result<Arc<State>> {
    let metrics = Arc::new(MetricsRegistry::new());
    let obs = ServerObs::new(
        Arc::clone(&metrics),
        cfg.obs,
        cfg.log_level,
        cfg.log_json,
        cfg.slow_query_ms,
    );
    let catalog_stats = CatalogStats {
        disjoint: metrics.counter("catalog_plan_disjoint"),
        full_cover: metrics.counter("catalog_plan_full_cover"),
        straddle: metrics.counter("catalog_plan_straddle"),
        residual_scan: metrics.counter("catalog_plan_residual_scan"),
    };
    let store = match &cfg.data_dir {
        None => None,
        Some(dir) => {
            let vfs: Arc<dyn Vfs> = match &cfg.vfs {
                Some(vfs) => Arc::clone(vfs),
                None => Arc::new(RealVfs),
            };
            let (store, quarantined) = ArtifactStore::open_with(dir, vfs).map_err(|e| {
                std::io::Error::other(format!("open data dir {}: {e}", dir.display()))
            })?;
            store.attach_obs(StoreObs::from_registry(
                &metrics,
                Arc::clone(&obs.clock),
                cfg.obs,
            ));
            for handle in quarantined {
                obs.logger.warn(
                    "quarantined corrupt stored artifact",
                    &[("handle", handle.as_str().into())],
                );
            }
            Some(store)
        }
    };
    let threads = if cfg.threads == 0 {
        mini_rayon::threads().max(8)
    } else {
        cfg.threads
    };
    let queue = if cfg.queue == 0 {
        DEFAULT_QUEUE
    } else {
        cfg.queue
    };
    let state = Arc::new(State {
        registry: Registry::new(),
        artifacts: crate::registry::LazyMap::default(),
        store,
        shutdown: AtomicBool::new(false),
        addr,
        workers: threads,
        queue_capacity: queue,
        obs,
        catalog_stats,
        inflight: Mutex::new(BTreeSet::new()),
        read_timeout_ms: cfg.read_timeout_ms,
        idle_timeout_ms: cfg.idle_timeout_ms,
        request_timeout_ms: cfg.request_timeout_ms,
        catalog: cfg.catalog,
        results: ResultCache::new(cfg.result_cache),
        event_loops: cfg.event_loops,
        max_line_bytes: cfg.max_line_bytes,
    });
    if let Some(spec) = &cfg.preload {
        state.registry.dataset(spec);
    }
    Ok(state)
}

/// Spawns the threaded core: one acceptor plus the sticky worker pool.
fn spawn_threaded_core(state: &Arc<State>, listener: TcpListener) -> Vec<JoinHandle<()>> {
    let (tx, rx) = sync_channel::<TcpStream>(state.queue_capacity);
    let rx = Arc::new(Mutex::new(rx));
    let mut threads: Vec<JoinHandle<()>> = (0..state.workers)
        .map(|_| {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(state);
            std::thread::spawn(move || worker_loop(&rx, &state))
        })
        .collect();
    let acceptor = {
        let state = Arc::clone(state);
        std::thread::spawn(move || acceptor_loop(&listener, &tx, &state))
    };
    threads.insert(0, acceptor);
    threads
}

/// The server's dispatch logic without any sockets: feed it request
/// lines, get back exactly the compact-JSON response a served connection
/// would read. This is the seam the deterministic protocol harness
/// (`tests/pipeline.rs`) builds on — drive a [`Conn`] with a scripted
/// byte-arrival schedule, answer its framed requests here, and the bytes
/// the machine emits are byte-for-byte what either server core would have
/// written.
#[derive(Debug)]
pub struct LocalServer {
    state: Arc<State>,
}

impl LocalServer {
    /// Builds the server state without binding a listener or spawning
    /// threads. `addr`, `threads`, `queue`, and `event_loops` are
    /// recorded for `health` but nothing listens or runs.
    ///
    /// # Errors
    ///
    /// A data directory that cannot be opened, exactly like [`serve`].
    pub fn new(cfg: &ServerConfig) -> std::io::Result<LocalServer> {
        let addr: SocketAddr = ([127, 0, 0, 1], 0).into();
        Ok(LocalServer {
            state: build_state(cfg, addr)?,
        })
    }

    /// Parses and dispatches one trimmed request line, returning the
    /// compact response (no trailing newline) and whether the line was a
    /// `shutdown` request. Unlike a served connection, a `shutdown` here
    /// only reports `stop = true`; there is nothing to stop.
    pub fn respond_line(&self, text: &str) -> (String, bool) {
        let (response, stop) = respond(&self.state, text);
        (response.compact(), stop)
    }

    /// The configured request-line byte bound, resolved the same way the
    /// serving cores resolve it — harnesses hand this to [`Conn::new`].
    pub fn max_line_bytes(&self) -> usize {
        self.state.max_line_bytes
    }
}

pub(crate) fn initiate_shutdown(state: &State) {
    state.shutdown.store(true, Ordering::SeqCst);
    // Poke the acceptor so its blocking accept() observes the flag.
    let _ = TcpStream::connect(state.addr);
}

fn acceptor_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, state: &State) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break; // the poke connection (or late arrival) is dropped
                }
                match tx.try_send(stream) {
                    Ok(()) => {
                        state.obs.queue_depth.add(1);
                    }
                    // Every worker is busy and the queue is at capacity:
                    // shed with an explicit retryable error instead of
                    // parking the connection unread.
                    Err(TrySendError::Full(stream)) => shed_connection(state, stream),
                    Err(TrySendError::Disconnected(_)) => break,
                }
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // Transient accept errors (EMFILE, aborted handshake): keep
                // serving, but yield briefly — a *persistent* error (fd
                // exhaustion) would otherwise spin this loop at 100% CPU.
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    // Dropping `tx` (by returning) closes the channel; idle workers exit.
}

/// Refuses one connection with a retryable `overloaded` error line. Runs
/// on the accepting thread (the threaded core's acceptor, or an event
/// loop), so the write carries a short timeout — a peer that never reads
/// cannot stall admission.
pub(crate) fn shed_connection(state: &State, mut stream: TcpStream) {
    state.obs.shed.inc();
    state.obs.logger.warn(
        "connection shed: admission queue full",
        &[("queue_capacity", state.queue_capacity.into())],
    );
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_millis(1000)));
    let reply = retryable_error(
        ERR_OVERLOADED,
        "server overloaded: admission queue is full; back off and retry",
    );
    let _ = stream
        .write_all((reply.compact() + "\n").as_bytes())
        .and_then(|()| stream.flush());
    // Dropping the stream closes it; the client sees the error line, then EOF.
}

fn worker_loop(rx: &Arc<Mutex<Receiver<TcpStream>>>, state: &Arc<State>) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                // One coherent transition: a health/metrics probe never
                // observes the connection in neither the queue nor a
                // worker (the old two-atomic version had that window).
                state.obs.registry.coherent(|| {
                    state.obs.queue_depth.add(-1);
                    state.obs.active_connections.add(1);
                });
                handle_connection(stream, state);
                state.obs.active_connections.add(-1);
            }
            Err(_) => break, // channel closed: shutdown
        }
    }
}

/// `timeout_ms` expressed in whole read ticks (rounded up); `0` = never.
fn ticks_for(timeout_ms: u64, tick_ms: u64) -> u64 {
    if timeout_ms == 0 {
        0
    } else {
        timeout_ms.div_ceil(tick_ms).max(1)
    }
}

/// Writes a [`Conn`]'s due output to the socket and consumes it.
/// Blocking-path sockets have no write timeout, so this drains fully.
fn flush_conn(conn: &mut Conn, writer: &mut TcpStream) -> std::io::Result<()> {
    let bytes = conn.output().to_vec();
    if bytes.is_empty() {
        return Ok(());
    }
    writer.write_all(&bytes)?;
    writer.flush()?;
    conn.consume(bytes.len());
    Ok(())
}

/// Answers every request `conn` just framed, in order, flushing each
/// response (and any framing refusal queued before it) as it completes —
/// exactly the bytes-per-step the pre-state-machine loop produced.
/// Returns `false` when the connection is finished (write failure or a
/// `shutdown` request, which also stops the server).
fn serve_framed(
    state: &Arc<State>,
    conn: &mut Conn,
    writer: &mut TcpStream,
    requests: Vec<crate::conn::FramedRequest>,
) -> bool {
    for request in requests {
        let (response, stop) = respond(state, &request.text);
        conn.complete(request.seq, &response.compact(), stop);
        if flush_conn(conn, writer).is_err() {
            return false;
        }
        if stop {
            initiate_shutdown(state);
            return false;
        }
    }
    // A chunk may have produced only framing refusals (bad UTF-8, an
    // oversized line) — those queued output without framing a request.
    flush_conn(conn, writer).is_ok()
}

/// Processes one connection's requests in order until EOF, an I/O error,
/// a `shutdown` request, server shutdown, or a timeout expiry.
///
/// Framing and response ordering run through the same [`Conn`] state
/// machine as the event-driven core, which is what bounds the request
/// line ([`ServerConfig::max_line_bytes`]) and validates UTF-8 only once
/// a line is complete (a mid-multibyte timeout must not corrupt
/// framing). Reads run under a configurable poll tick
/// ([`ServerConfig::read_timeout_ms`]) so a worker parked on an idle
/// connection still observes shutdown within one tick. The same tick
/// drives two timers, both counted in ticks and reset per request line:
/// the *idle* timer (no byte of a next request yet → close silently) and
/// the *request* timer (line started but unfinished → answer a retryable
/// `deadline` error, then close).
fn handle_connection(stream: TcpStream, state: &Arc<State>) {
    let Ok(writer) = stream.try_clone() else {
        return;
    };
    // Responses are one small frame each; without NODELAY, Nagle holds
    // them back against the peer's delayed ACK (~40ms per round trip).
    let _ = stream.set_nodelay(true);
    let tick_ms = if state.read_timeout_ms == 0 {
        DEFAULT_READ_TIMEOUT_MS
    } else {
        state.read_timeout_ms
    };
    if stream
        .set_read_timeout(Some(std::time::Duration::from_millis(tick_ms)))
        .is_err()
    {
        return;
    }
    let idle_ticks_max = ticks_for(state.idle_timeout_ms, tick_ms);
    let request_ticks_max = ticks_for(state.request_timeout_ms, tick_ms);
    let mut writer = writer;
    let mut reader = stream;
    let mut conn = Conn::new(state.max_line_bytes);
    let mut chunk = [0u8; 16 * 1024];
    let mut idle_ticks: u64 = 0;
    let mut request_ticks: u64 = 0;
    loop {
        match reader.read(&mut chunk) {
            Ok(0) => {
                // EOF: a final unterminated line is still served.
                let requests = conn.on_eof();
                let _ = serve_framed(state, &mut conn, &mut writer, requests);
                return;
            }
            Ok(n) => {
                let before = conn.lines_seen();
                // `.get(..n)` in place of `&chunk[..n]`: `n <= chunk.len()`
                // by the `Read` contract, but the request path is
                // panic-free by policy (lint P1), so stay with the
                // non-panicking accessor.
                let requests = conn.on_bytes(chunk.get(..n).unwrap_or(&[]));
                if !serve_framed(state, &mut conn, &mut writer, requests) {
                    return;
                }
                if conn.wants_close() {
                    return; // an oversized line was refused; we're done
                }
                if conn.lines_seen() > before {
                    // A line boundary passed: both timers restart, same
                    // as the old per-line loop. Bytes that only extend a
                    // partial line deliberately do *not* reset the
                    // request timer.
                    idle_ticks = 0;
                    request_ticks = 0;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if state.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if conn.has_partial() {
                    request_ticks += 1;
                    if request_ticks_max != 0 && request_ticks >= request_ticks_max {
                        let reply = retryable_error(
                            ERR_DEADLINE,
                            "request deadline: the line did not complete in time",
                        );
                        let _ = writer
                            .write_all((reply.compact() + "\n").as_bytes())
                            .and_then(|()| writer.flush());
                        return;
                    }
                } else {
                    idle_ticks += 1;
                    if idle_ticks_max != 0 && idle_ticks >= idle_ticks_max {
                        return; // idle expiry: close silently
                    }
                }
            }
            Err(_) => return, // broken connection
        }
    }
}

/// Appends the request's `trace_id` (when the client sent one) to the
/// response, so concurrent pipelined responses are attributable. Applied
/// whether or not timings are on — responses stay byte-identical across
/// the `obs` flag.
fn echo_trace_id(response: &mut Json, trace_id: Option<&str>) {
    if let (Json::Obj(members), Some(id)) = (response, trace_id) {
        members.push(("trace_id".to_string(), Json::Str(id.to_string())));
    }
}

/// Parses and dispatches one request line. The dispatch is wrapped in
/// `catch_unwind` so a bug in an algorithm takes down one request, not a
/// pool worker. Every path — parse failure included — lands in
/// [`ServerObs::finish`], so the per-op request/error counters account
/// for every request line the server ever answered.
pub(crate) fn respond(state: &Arc<State>, text: &str) -> (Json, bool) {
    let obs = &state.obs;
    let start = obs.start();
    let trace = obs.trace();
    let parsed = {
        let _span = trace.as_ref().map(|t| t.span("parse"));
        Json::parse(text)
    };
    let doc = match parsed {
        Ok(doc) => doc,
        Err(e) => {
            let response = error_response(&format!("parse: {e}"));
            obs.finish(crate::obs::UNKNOWN_OP, false, start, trace.as_ref(), None);
            return (response, false);
        }
    };
    let op = doc
        .get("op")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string();
    let trace_id = doc
        .get("trace_id")
        .and_then(Json::as_str)
        .map(str::to_string);
    if op == "shutdown" {
        let mut response = ok_response(vec![("stopping".into(), Json::Bool(true))]);
        echo_trace_id(&mut response, trace_id.as_deref());
        obs.finish(&op, true, start, trace.as_ref(), trace_id.as_deref());
        return (response, true);
    }
    let result = {
        let _span = trace.as_ref().map(|t| t.span("dispatch"));
        catch_unwind(AssertUnwindSafe(|| {
            dispatch(state, &op, &doc, trace.as_ref())
        }))
    };
    let mut response = match result {
        Ok(Ok(response)) => response,
        Ok(Err(message)) => error_response(&message),
        Err(_) => error_response("internal error while handling the request"),
    };
    let ok = response.get("ok").and_then(Json::as_bool).unwrap_or(false);
    echo_trace_id(&mut response, trace_id.as_deref());
    obs.finish(&op, ok, start, trace.as_ref(), trace_id.as_deref());
    (response, false)
}

fn dispatch(
    state: &Arc<State>,
    op: &str,
    doc: &Json,
    trace: Option<&Trace>,
) -> Result<Json, String> {
    match op {
        "ping" => Ok(ok_response(vec![("pong".into(), Json::Bool(true))])),
        "datasets" => {
            let datasets = state.registry.loaded().into_iter().map(Json::Str).collect();
            let published = state
                .artifacts
                .keys()
                .into_iter()
                .filter(|h| matches!(state.artifacts.get(h), Some(Ok(_))))
                .map(Json::Str)
                .collect();
            let mut members = vec![
                ("datasets".into(), Json::Arr(datasets)),
                ("published".into(), Json::Arr(published)),
            ];
            if let Some(store) = &state.store {
                let stored = store.handles().into_iter().map(Json::Str).collect();
                members.push(("stored".into(), Json::Arr(stored)));
            }
            Ok(ok_response(members))
        }
        "publish" => publish(state, doc, trace),
        "count" => count(state, doc, trace),
        "audit" => {
            let handle = doc
                .get("handle")
                .and_then(Json::as_str)
                .ok_or("audit needs a string `handle`")?;
            let artifact = lookup(state, handle)?;
            let mut members = vec![("handle".to_string(), Json::Str(handle.into()))];
            if let Json::Obj(audit) = artifact.audit_json() {
                members.extend(audit);
            }
            Ok(ok_response(members))
        }
        "verify" => verify(state, doc),
        "health" => Ok(health(state)),
        "metrics" => Ok(metrics(state)),
        other => Err(format!(
            "unknown op `{other}` (expected ping | datasets | publish | count | audit | verify \
             | health | metrics | shutdown)"
        )),
    }
}

/// The `health` op: liveness plus the overload and durability gauges —
/// queue depth and capacity, connections shed, resident artifacts, store
/// status (`none` / `ok` / `degraded`) and its consecutive write-failure
/// count, the effective timeout settings, whether catalogs are enabled,
/// and the result-cache gauges (capacity/size/hits/misses). Never touches
/// an artifact, so it stays cheap under load.
///
/// All dynamic gauges come from **one** [`MetricsRegistry::snapshot`],
/// taken under the registry lock that paired transitions (queue → worker
/// handoff, cache stat mirroring) also hold — a probe can no longer catch
/// a connection in neither the queue nor a worker, which the old
/// per-atomic assembly allowed.
fn health(state: &Arc<State>) -> Json {
    let snap = state.obs.registry.snapshot();
    let gauge = |name: &str| snap.gauge(name).unwrap_or(0).max(0) as f64;
    let store_degraded = snap.gauge("store_degraded").unwrap_or(0) == 1 && state.store.is_some();
    let status = if store_degraded { "degraded" } else { "ok" };
    let mut members = vec![
        ("status".to_string(), Json::Str(status.into())),
        ("workers".to_string(), Json::Num(state.workers as f64)),
        (
            "event_loops".to_string(),
            Json::Num(state.event_loops as f64),
        ),
        (
            "queue_capacity".to_string(),
            Json::Num(state.queue_capacity as f64),
        ),
        ("queue_depth".to_string(), Json::Num(gauge("queue_depth"))),
        (
            "active_connections".to_string(),
            Json::Num(gauge("active_connections")),
        ),
        (
            "shed".to_string(),
            Json::Num(snap.counter("shed_total").unwrap_or(0) as f64),
        ),
        (
            "artifacts".to_string(),
            Json::Num(gauge("artifacts_resident")),
        ),
        (
            "read_timeout_ms".to_string(),
            Json::Num(if state.read_timeout_ms == 0 {
                DEFAULT_READ_TIMEOUT_MS
            } else {
                state.read_timeout_ms
            } as f64),
        ),
        (
            "idle_timeout_ms".to_string(),
            Json::Num(state.idle_timeout_ms as f64),
        ),
        (
            "request_timeout_ms".to_string(),
            Json::Num(state.request_timeout_ms as f64),
        ),
        ("catalog".to_string(), Json::Bool(state.catalog)),
        (
            "result_cache_capacity".to_string(),
            Json::Num(state.results.capacity() as f64),
        ),
        (
            "result_cache_size".to_string(),
            Json::Num(gauge("result_cache_size")),
        ),
        (
            "result_cache_hits".to_string(),
            Json::Num(gauge("result_cache_hits")),
        ),
        (
            "result_cache_misses".to_string(),
            Json::Num(gauge("result_cache_misses")),
        ),
    ];
    match &state.store {
        None => members.push(("store".to_string(), Json::Str("none".into()))),
        Some(_) => {
            let store_status = if store_degraded { "degraded" } else { "ok" };
            members.push(("store".to_string(), Json::Str(store_status.into())));
            members.push(("stored".to_string(), Json::Num(gauge("store_artifacts"))));
            members.push((
                "write_failures".to_string(),
                Json::Num(gauge("store_write_failures")),
            ));
        }
    }
    ok_response(members)
}

/// The `metrics` op: the full registry snapshot — every counter, gauge,
/// and latency histogram (count / sum / p50 / p99 / p999 nanoseconds) —
/// plus the same snapshot rendered as Prometheus exposition text, so
/// `betalike-client metrics` can feed a scraper directly.
fn metrics(state: &Arc<State>) -> Json {
    let snap = state.obs.registry.snapshot();
    let counters = snap
        .counters
        .iter()
        .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
        .collect();
    let gauges = snap
        .gauges
        .iter()
        .map(|(name, v)| (name.clone(), Json::Num(*v as f64)))
        .collect();
    let histograms = snap
        .histograms
        .iter()
        .map(|(name, h)| {
            let (p50, p99, p999) = h.p50_p99_p999();
            (
                name.clone(),
                Json::Obj(vec![
                    ("count".to_string(), Json::Num(h.count() as f64)),
                    ("sum_ns".to_string(), Json::Num(h.sum() as f64)),
                    ("p50_ns".to_string(), Json::Num(p50 as f64)),
                    ("p99_ns".to_string(), Json::Num(p99 as f64)),
                    ("p999_ns".to_string(), Json::Num(p999 as f64)),
                ]),
            )
        })
        .collect();
    ok_response(vec![
        ("obs".to_string(), Json::Bool(state.obs.timings)),
        ("counters".to_string(), Json::Obj(counters)),
        ("gauges".to_string(), Json::Obj(gauges)),
        ("histograms".to_string(), Json::Obj(histograms)),
        ("prometheus".to_string(), Json::Str(snap.to_prometheus())),
    ])
}

/// Mirrors the resident-artifact cache size into its gauge; call after
/// any `artifacts.get_or_init`.
fn sync_artifacts(state: &Arc<State>) {
    let len = state.artifacts.keys().len().min(i64::MAX as usize) as i64;
    state.obs.artifacts_resident.set(len);
}

fn publish(state: &Arc<State>, doc: &Json, trace: Option<&Trace>) -> Result<Json, String> {
    let request = PublishRequest::from_json(doc)?;
    let deadline_ms = match doc.get("deadline_ms") {
        None => None,
        Some(v) => Some(
            v.as_u64()
                .ok_or("`deadline_ms` must be a non-negative integer")?,
        ),
    };
    let handle = request.handle();
    // A handle persisted by a previous process is *loaded*, not recomputed
    // (and counts as cached: the publish work already happened).
    match resident_or_stored(state, &handle) {
        Ok(Some(artifact)) => return Ok(publish_ack(state, &request, handle, &artifact, false)),
        Ok(None) | Err(_) => {
            // Unknown (or quarantined-as-corrupt, already logged): compute.
        }
    }
    // Cold path. A degraded store could not persist the result, and a
    // server that keeps accumulating publishes it cannot make durable is
    // quietly breaking its own restart contract — refuse retryably and
    // keep serving what already exists. Each refused publish first probes
    // the disk, so the first retry after the disk recovers goes through.
    if let Some(store) = &state.store {
        if store.degraded() && store.probe().is_err() {
            return Ok(retryable_error(
                ERR_DEGRADED,
                &format!(
                    "store is degraded (persistent write failures): publish of `{handle}` \
                     refused; reads are still served — retry once the disk recovers"
                ),
            ));
        }
    }
    if let Some(ms) = deadline_ms {
        return publish_with_deadline(state, request, handle, ms);
    }
    let mut fresh = false;
    let artifact = {
        let _span = trace.map(|t| t.span("publish.compute"));
        state.artifacts.get_or_init(&handle, || {
            fresh = true;
            Artifact::publish_with(
                &state.registry,
                &request,
                state.catalog,
                Some(state.catalog_stats.clone()),
            )
        })
    };
    sync_artifacts(state);
    let artifact = artifact?;
    if fresh {
        // A fresh compute may follow a quarantine of the same handle:
        // cached count responses for the old artifact must not survive it.
        state.results.invalidate(&handle);
        state.obs.sync_cache(&state.results.stats());
        let _span = trace.map(|t| t.span("publish.persist"));
        persist(state, &artifact);
    }
    Ok(publish_ack(state, &request, handle, &artifact, fresh))
}

/// A cold-cache publish bounded by `deadline_ms`: the computation runs on
/// a detached background thread (at most one per handle, via the
/// `inflight` claim set) while this worker polls for the result. If the
/// deadline expires first, the requester gets a retryable `deadline`
/// error and the computation keeps going — a later identical publish
/// collects the finished artifact from the cache.
fn publish_with_deadline(
    state: &Arc<State>,
    request: PublishRequest,
    handle: String,
    deadline_ms: u64,
) -> Result<Json, String> {
    let claimed = {
        let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
        inflight.insert(handle.clone())
    };
    if claimed {
        let state = Arc::clone(state);
        let handle = handle.clone();
        let request = request.clone();
        std::thread::spawn(move || {
            // The claim must be released even if the pipeline panics
            // (mirroring the catch_unwind around foreground dispatch).
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut fresh = false;
                let computed = state.artifacts.get_or_init(&handle, || {
                    fresh = true;
                    Artifact::publish_with(
                        &state.registry,
                        &request,
                        state.catalog,
                        Some(state.catalog_stats.clone()),
                    )
                });
                sync_artifacts(&state);
                if fresh {
                    state.results.invalidate(&handle);
                    state.obs.sync_cache(&state.results.stats());
                    if let Ok(artifact) = &computed {
                        persist(&state, artifact);
                    }
                }
            }));
            if run.is_err() {
                state.obs.logger.error(
                    "background publish panicked",
                    &[("handle", handle.as_str().into())],
                );
            }
            let mut inflight = state.inflight.lock().unwrap_or_else(|e| e.into_inner());
            inflight.remove(&handle);
        });
    }
    let mut waited_ms: u64 = 0;
    loop {
        match state.artifacts.get(&handle) {
            Some(Ok(artifact)) => {
                return Ok(publish_ack(state, &request, handle, &artifact, true));
            }
            Some(Err(e)) => return Err(format!("publish for `{handle}` had failed: {e}")),
            None => {}
        }
        if waited_ms >= deadline_ms {
            return Ok(retryable_error(
                ERR_DEADLINE,
                &format!(
                    "deadline of {deadline_ms}ms expired before `{handle}` was ready; the \
                     computation continues in the background — retry to collect it"
                ),
            ));
        }
        let step = (deadline_ms - waited_ms).clamp(1, PUBLISH_POLL_MS);
        std::thread::sleep(std::time::Duration::from_millis(step));
        waited_ms += step;
    }
}

/// The acknowledgment for a successful publish. `fresh` means the work
/// was done for this request (`cached: false`).
fn publish_ack(
    state: &Arc<State>,
    request: &PublishRequest,
    handle: String,
    artifact: &Arc<Artifact>,
    fresh: bool,
) -> Json {
    let mut members = vec![
        ("handle".to_string(), Json::Str(handle)),
        (
            "kind".to_string(),
            Json::Str(artifact.answerer.kind().into()),
        ),
        ("algo".to_string(), Json::Str(request.algo.as_str().into())),
        (
            "rows".to_string(),
            Json::Num(artifact.dataset.table.num_rows() as f64),
        ),
        ("cached".to_string(), Json::Bool(!fresh)),
    ];
    if let Some(ecs) = artifact.num_ecs() {
        members.push(("ecs".to_string(), Json::Num(ecs as f64)));
    }
    if let Some(store) = &state.store {
        members.push((
            "persisted".to_string(),
            Json::Bool(store.entry(&artifact.handle).is_some()),
        ));
    }
    ok_response(members)
}

/// Write-through persistence of a freshly computed artifact. Failure to
/// persist never fails the publish — the artifact is resident and
/// serveable — but is logged and visible as `persisted: false` in the
/// acknowledgment (and counts toward the store's degraded trip wire).
fn persist(state: &Arc<State>, artifact: &Arc<Artifact>) {
    let Some(store) = &state.store else {
        return;
    };
    let snap = crate::persist::snapshot(artifact);
    if let Err(e) = store.save(&snap) {
        state.obs.logger.error(
            "failed to persist artifact",
            &[
                ("handle", artifact.handle.as_str().into()),
                ("error", e.to_string().into()),
            ],
        );
    }
}

/// The `verify` op: runs the independent conformance oracle (and, on
/// request, the adversarial attack battery) over a published handle. The
/// artifact is resolved exactly like `count`/`audit` — memory cache first,
/// then the durable store — and re-snapshotted through the same
/// persistence capture the `.bpub` writer uses, so the oracle sees the
/// artifact as a restart would.
fn verify(state: &Arc<State>, doc: &Json) -> Result<Json, String> {
    let handle = doc
        .get("handle")
        .and_then(Json::as_str)
        .ok_or("verify needs a string `handle`")?;
    let battery = match doc.get("battery") {
        None => false,
        Some(v) => v.as_bool().ok_or("`battery` must be a boolean")?,
    };
    let artifact = lookup(state, handle)?;
    let snap = crate::persist::snapshot(&artifact);
    let report = betalike_conformance::verify_snapshot(&snap);
    let mut members = vec![
        ("handle".to_string(), Json::Str(handle.into())),
        ("pass".to_string(), Json::Bool(report.pass())),
        ("report".to_string(), report.to_json()),
    ];
    if battery {
        let battery_report = betalike_conformance::run_battery_snapshot(&snap)?;
        members.push((
            "battery_pass".to_string(),
            Json::Bool(battery_report.pass()),
        ));
        members.push(("battery".to_string(), battery_report.to_json()));
    }
    Ok(ok_response(members))
}

fn count(state: &Arc<State>, doc: &Json, trace: Option<&Trace>) -> Result<Json, String> {
    let request = CountRequest::from_json(doc)?;
    let artifact = {
        let _span = trace.map(|t| t.span("count.lookup"));
        lookup(state, &request.handle)?
    };
    validate_preds(&artifact, &request)?;
    // Deterministic artifact + deterministic estimators ⇒ the response is
    // a pure function of the key; a cache hit replays the exact document
    // a miss would compute (byte-identical on the wire). Errors are never
    // cached — only responses that reached `ok_response`.
    let key = cache_key(
        &artifact.handle,
        &request.qi_preds,
        request.sa_lo,
        request.sa_hi,
        request.exact,
    );
    let cached = state.results.get(&key);
    state.obs.sync_cache(&state.results.stats());
    if let Some(cached) = cached {
        return Ok(cached);
    }
    let query = AggQuery {
        qi_preds: request.qi_preds.clone(),
        sa_pred: RangePred {
            attr: artifact.dataset.sa,
            lo: request.sa_lo,
            hi: request.sa_hi,
        },
    };
    let _span = trace.map(|t| t.span("count.answer"));
    let estimate = artifact
        .answerer
        .estimate(&query)
        .map_err(|e| e.to_string())?;
    let mut members = vec![("estimate".to_string(), Json::Num(estimate))];
    if request.exact {
        members.push((
            "exact".to_string(),
            Json::Num(artifact.answerer.exact(&query) as f64),
        ));
    }
    drop(_span);
    let response = ok_response(members);
    state.results.insert(key, response.clone());
    state.obs.sync_cache(&state.results.stats());
    Ok(response)
}

fn lookup(state: &Arc<State>, handle: &str) -> Result<Arc<Artifact>, String> {
    match resident_or_stored(state, handle)? {
        Some(artifact) => Ok(artifact),
        None => Err(format!("unknown handle `{handle}` (publish first)")),
    }
}

/// The artifact for `handle` if it is resident or durably stored:
/// memory-cache hit first, then a lazy load from the data directory
/// (restored artifacts are inserted into the memory cache, so the disk is
/// read at most once per handle per process).
///
/// `Ok(None)` means the handle is genuinely unknown. `Err` carries a
/// wire-level message: a previously failed publish, or a stored artifact
/// that turned out corrupt — which is quarantined here, so a later
/// `publish` of the same parameters recomputes and re-persists it.
fn resident_or_stored(state: &Arc<State>, handle: &str) -> Result<Option<Arc<Artifact>>, String> {
    match state.artifacts.get(handle) {
        Some(Ok(artifact)) => return Ok(Some(artifact)),
        Some(Err(e)) => return Err(format!("publish for `{handle}` had failed: {e}")),
        None => {}
    }
    let Some(store) = &state.store else {
        return Ok(None);
    };
    match store.load(handle) {
        Ok(None) => Ok(None),
        Ok(Some(snap)) => match crate::persist::restore_with(
            snap,
            state.catalog,
            Some(state.catalog_stats.clone()),
        ) {
            Ok(restored) => {
                // Racing loaders resolve to one inserted artifact.
                let artifact = state.artifacts.get_or_init(handle, || Ok(restored));
                sync_artifacts(state);
                Ok(Some(artifact?))
            }
            Err(e) => {
                let _ = store.quarantine(handle);
                state.results.invalidate(handle);
                state.obs.sync_cache(&state.results.stats());
                state.obs.logger.error(
                    "stored artifact failed to restore; quarantined",
                    &[("handle", handle.into()), ("error", e.as_str().into())],
                );
                Err(format!(
                    "stored artifact `{handle}` was unusable and has been quarantined; republish to recompute"
                ))
            }
        },
        // A transient I/O failure (EMFILE under load, a momentary disk
        // hiccup) is not evidence of corruption — report it as retryable
        // and leave the file alone. A *missing* file is different: the
        // manifest row is stale, so fall through and let quarantine drop
        // it (making the handle honestly unknown / recomputable).
        Err(betalike_store::StoreError::Io(e)) if e.kind() != std::io::ErrorKind::NotFound => Err(
            format!("stored artifact `{handle}` could not be read: {e} (transient; retry)"),
        ),
        // Integrity failures (checksum, truncation, malformed sections,
        // version skew) are permanent for this file: quarantine it.
        Err(e) => {
            let _ = store.quarantine(handle);
            state.results.invalidate(handle);
            state.obs.sync_cache(&state.results.stats());
            state.obs.logger.error(
                "stored artifact is corrupt; quarantined",
                &[("handle", handle.into()), ("error", e.to_string().into())],
            );
            Err(format!(
                "stored artifact `{handle}` was corrupt and has been quarantined; republish to recompute"
            ))
        }
    }
}

/// Rejects predicates the artifact cannot answer (instead of letting an
/// estimator panic inside a worker).
fn validate_preds(artifact: &Artifact, request: &CountRequest) -> Result<(), String> {
    let table = artifact.answerer.source();
    let arity = table.schema().arity();
    for p in &request.qi_preds {
        if p.attr >= arity {
            return Err(format!("pred attr {} out of range (arity {arity})", p.attr));
        }
        if p.attr == artifact.dataset.sa {
            return Err("the SA is predicated via `sa`, not `preds`".into());
        }
        if !artifact.qi.is_empty() && !artifact.qi.contains(&p.attr) {
            return Err(format!(
                "attr {} is outside the published QI set {:?}",
                p.attr, artifact.qi
            ));
        }
    }
    Ok(())
}

//! Overload, degraded-mode, and timeout behavior of the server
//! (DESIGN.md §12): bounded admission with explicit `overloaded` sheds,
//! read-only degraded mode driven by an injected chaos filesystem,
//! deadline-bounded publishes, idle/mid-request timeouts, the
//! shutdown-latency contract, and the `betalike-client --retries` path
//! surviving an injected shed.

use betalike_faults::{ChaosVfs, FaultPlan};
use betalike_microdata::json::Json;
use betalike_server::wire::{retryable_error, ERR_OVERLOADED};
use betalike_server::{
    serve, Algo, Client, ClientError, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("betalike-overload-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn synthetic(seed: u64) -> DatasetSpec {
    DatasetSpec::Synthetic { rows: 200, seed }
}

/// Floods a 2-worker, queue-of-1 server: every connection beyond the
/// capacity must be *shed* with one parseable retryable `overloaded`
/// line — never a silent disconnect — the queued connection must be
/// served once a worker frees up, and `health` must account for all of
/// it. No worker panics: every subsequent request is answered normally.
#[test]
fn flood_sheds_with_overloaded_not_disconnects() {
    let server = serve(&ServerConfig {
        threads: 2,
        queue: 1,
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Two squatters pin both sticky workers.
    let mut squatter_a = Client::connect(addr).expect("connect");
    squatter_a.ping().expect("squatter a ping");
    let mut squatter_b = Client::connect(addr).expect("connect");
    squatter_b.ping().expect("squatter b ping");

    // Eight more arrivals: one fits the queue, seven must shed.
    let mut streams = Vec::new();
    for _ in 0..8 {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(2000)))
            .expect("timeout");
        let mut stream = stream;
        stream
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("write ping");
        streams.push(stream);
    }
    let mut shed_count = 0;
    let mut queued = Vec::new();
    for stream in streams {
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(n) if n > 0 => {
                let doc = Json::parse(line.trim()).expect("shed reply parses");
                assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
                assert_eq!(
                    doc.get("code").and_then(Json::as_str),
                    Some("overloaded"),
                    "shed reply must carry the stable code: {line}"
                );
                assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));
                // After the error line the server hangs up.
                let mut rest = String::new();
                assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0);
                shed_count += 1;
            }
            Ok(_) => panic!("a flooded connection was closed without any reply"),
            Err(_) => queued.push(reader), // still waiting: it is the queued one
        }
    }
    assert_eq!(shed_count, 7, "exactly queue-capacity connections may wait");
    assert_eq!(queued.len(), 1);

    // Freeing a worker drains the queue: the parked ping is answered.
    drop(squatter_a);
    let mut reader = queued.remove(0);
    let mut line = String::new();
    reader.read_line(&mut line).expect("queued ping answered");
    let doc = Json::parse(line.trim()).expect("pong parses");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    drop(reader);

    // `health` accounts for the sheds (and the gauges are sane).
    drop(squatter_b);
    let mut client = Client::connect(addr).expect("connect for health");
    let doc = client.health().expect("health");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("workers").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("queue_capacity").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("queue_depth").and_then(Json::as_u64), Some(0));
    assert_eq!(doc.get("shed").and_then(Json::as_u64), Some(7));
    assert_eq!(doc.get("store").and_then(Json::as_str), Some("none"));
    drop(client);
    server.shutdown_and_join();
}

/// A store whose writes persistently fail trips the server into
/// read-only degraded mode: cold publishes are refused with a retryable
/// `degraded` error, reads and counts keep serving, `health` reports it,
/// and one successful save after the disk recovers restores service.
#[test]
fn degraded_store_turns_server_read_only_until_recovery() {
    let dir = temp_dir("degraded");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let server = serve(&ServerConfig {
        threads: 2,
        data_dir: Some(dir.clone()),
        vfs: Some(chaos.clone()),
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // A healthy publish first, so reads have something to serve.
    let healthy = client
        .publish(&PublishRequest::new(synthetic(1), Algo::Anatomy))
        .expect("healthy publish");

    // The disk goes bad: fresh publishes still succeed (the artifact is
    // resident) but their persists fail, counting toward the trip wire.
    chaos.set_plan(FaultPlan::FailWrites);
    for seed in 2..=(1 + u64::from(betalike_store::disk::DEGRADED_AFTER)) {
        let reply = client
            .publish(&PublishRequest::new(synthetic(seed), Algo::Anatomy))
            .expect("publish succeeds even when its persist fails");
        assert!(!reply.cached);
    }

    // Trip wire reached: the next cold publish is refused retryably.
    let err = client
        .publish(&PublishRequest::new(synthetic(99), Algo::Anatomy))
        .expect_err("cold publish in degraded mode must be refused");
    match &err {
        ClientError::Retryable { code, .. } => assert_eq!(code, "degraded"),
        other => panic!("expected a retryable `degraded` refusal, got {other:?}"),
    }
    assert!(err.is_retryable());

    // Reads keep working: counts over the healthy handle, and health.
    let count = client
        .count(&CountRequest {
            handle: healthy.handle.clone(),
            qi_preds: vec![],
            sa_lo: 0,
            sa_hi: u32::MAX,
            exact: false,
        })
        .expect("degraded mode still serves counts");
    assert!(count.estimate > 0.0);
    let doc = client.health().expect("health");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("degraded"));
    assert_eq!(doc.get("store").and_then(Json::as_str), Some("degraded"));
    assert!(
        doc.get("write_failures").and_then(Json::as_u64)
            >= Some(u64::from(betalike_store::disk::DEGRADED_AFTER))
    );

    // The disk recovers: the refused publish now goes through and the
    // degraded state clears.
    chaos.set_plan(FaultPlan::None);
    client
        .publish(&PublishRequest::new(synthetic(99), Algo::Anatomy))
        .expect("publish after recovery");
    let doc = client.health().expect("health after recovery");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A publish with a tiny `deadline_ms` answers a retryable `deadline`
/// error while the computation continues detached; re-requesting the same
/// handle collects the finished artifact from the cache.
#[test]
fn publish_deadline_cancels_the_request_not_the_computation() {
    let server = serve(&ServerConfig {
        threads: 2,
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let request = PublishRequest::new(
        DatasetSpec::Census {
            rows: 8000,
            seed: 42,
        },
        Algo::Burel,
    );
    let mut doc = request.to_json();
    if let Json::Obj(members) = &mut doc {
        members.push(("deadline_ms".to_string(), Json::Num(1.0)));
    }
    let err = client.call(&doc).expect_err("a 1ms deadline must expire");
    match &err {
        ClientError::Retryable { code, .. } => assert_eq!(code, "deadline"),
        other => panic!("expected a retryable `deadline` error, got {other:?}"),
    }

    // The same publish without a deadline blocks on the background
    // computation and serves its result (a cache hit, not a recompute).
    let reply = client
        .publish(&request)
        .expect("followup publish collects the background result");
    assert!(reply.cached, "the detached computation must be reused");
    drop(client);
    server.shutdown_and_join();
}

/// An idle connection is closed after `idle_timeout_ms`, freeing its
/// sticky worker — but activity within the window resets the timer.
#[test]
fn idle_connections_expire_and_free_their_worker() {
    let server = serve(&ServerConfig {
        threads: 1,
        read_timeout_ms: 25,
        idle_timeout_ms: 300,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("first ping");
    std::thread::sleep(Duration::from_millis(100));
    client
        .ping()
        .expect("activity inside the window resets the timer");

    std::thread::sleep(Duration::from_millis(900));
    assert!(
        client.ping().is_err(),
        "the idle connection must have been closed"
    );

    // The (single) worker is free again: a new client is served.
    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    fresh.ping().expect("worker freed by idle expiry");
    drop(fresh);
    drop(client);
    server.shutdown_and_join();
}

/// A request line that starts but never finishes is answered with a
/// retryable `deadline` error and the connection is closed — a trickling
/// or stalled peer cannot pin a worker forever.
#[test]
fn stalled_mid_request_lines_get_a_deadline_error() {
    let server = serve(&ServerConfig {
        threads: 1,
        read_timeout_ms: 25,
        request_timeout_ms: 200,
        ..Default::default()
    })
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(5000)))
        .expect("timeout");
    // Half a request, never completed.
    stream.write_all(b"{\"op\":\"pi").expect("partial write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("deadline reply");
    let doc = Json::parse(line.trim()).expect("deadline reply parses");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("deadline"));
    assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));
    // Then EOF: the connection is gone.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap_or(0), 0);
    drop(stream);
    server.shutdown_and_join();
}

/// The documented shutdown-latency contract: workers poll reads every
/// `read_timeout_ms`, so shutdown with idle connections completes within
/// a few ticks — not the old hard-coded 200ms per worker, and never
/// unbounded.
#[test]
fn shutdown_latency_is_bounded_by_the_read_tick() {
    let server = serve(&ServerConfig {
        threads: 4,
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind");
    // Park idle connections on every worker.
    let mut parked = Vec::new();
    for _ in 0..4 {
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");
        parked.push(client);
    }
    let started = Instant::now();
    server.shutdown_and_join();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown with idle workers took {elapsed:?} (tick is 25ms)"
    );
    drop(parked);
}

/// End-to-end retry proof: the real `betalike-client smoke` binary, run
/// through a proxy that sheds its first connection with an injected
/// `overloaded` line, retries and still exits 0 with every answer
/// bit-identical.
#[test]
fn client_smoke_retries_through_an_injected_shed() {
    let server = serve(&ServerConfig {
        threads: 4,
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind");
    let backend = server.addr();

    let proxy = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        // First connection: read one request, shed it, hang up.
        if let Ok((stream, _)) = proxy.accept() {
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let mut stream = stream;
            let reply = retryable_error(ERR_OVERLOADED, "injected shed").compact() + "\n";
            let _ = stream.write_all(reply.as_bytes());
        }
        // Every later connection: transparent pipe to the real server.
        while let Ok((client_side, _)) = proxy.accept() {
            let Ok(server_side) = TcpStream::connect(backend) else {
                break;
            };
            let mut up_read = client_side.try_clone().expect("clone");
            let mut up_write = server_side.try_clone().expect("clone");
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut up_read, &mut up_write);
                let _ = up_write.shutdown(std::net::Shutdown::Write);
            });
            let mut down_read = server_side;
            let mut down_write = client_side;
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut down_read, &mut down_write);
                let _ = down_write.shutdown(std::net::Shutdown::Write);
            });
        }
    });

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_betalike-client"))
        .args([
            "smoke",
            "--addr",
            &proxy_addr.to_string(),
            "--retries",
            "3",
            "--retry-seed",
            "5",
            "--rows",
            "300",
        ])
        .output()
        .expect("run betalike-client");
    assert!(
        output.status.success(),
        "smoke through the shedding proxy failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("failed retryably"),
        "the retry path must actually have engaged; stderr: {stderr}"
    );
    server.shutdown_and_join();
}

//! The deterministic protocol harness (DESIGN.md §15): drive the
//! per-connection [`Conn`] state machine with *scripted* byte-arrival
//! schedules — split mid-line, coalesced, one byte at a time, slow
//! drains, shuffled completion orders — answer its framed requests
//! through the socketless [`LocalServer`] seam, and assert the bytes the
//! machine emits are **byte-identical** to what a blocking connection
//! answering one request at a time would have written. Because both
//! server cores drive this same machine over the same dispatch function,
//! equality here is equality of the wire behavior of either core.
//!
//! The property-based half generates arbitrary request batches × chunk
//! boundaries × completion permutations × drain granularities and checks
//! the same contract, plus the pipelining guarantees the docs promise:
//! responses come back in request order and every `trace_id` pairs 1:1
//! with its request. TCP tests at the bottom check the `too_large`
//! request-line bound and event-vs-threaded byte-identity on real
//! sockets.

use betalike_microdata::json::Json;
use betalike_server::{
    serve, Algo, Client, Conn, CountRequest, DatasetSpec, LocalServer, PublishRequest,
    ServerConfig, MAX_PIPELINE_INFLIGHT,
};
use proptest::prelude::*;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spec() -> DatasetSpec {
    DatasetSpec::Synthetic { rows: 80, seed: 7 }
}

/// A socketless server. Observability timings are off so `metrics`
/// output is a pure function of the request sequence (latency histograms
/// would otherwise read the wall clock); counters and gauges still run.
fn local() -> LocalServer {
    LocalServer::new(&ServerConfig {
        obs: false,
        ..Default::default()
    })
    .expect("local server")
}

/// `doc` with a `trace_id` member appended, compacted to a request line.
fn with_trace(mut doc: Json, id: &str) -> String {
    if let Json::Obj(members) = &mut doc {
        members.push(("trace_id".to_string(), Json::Str(id.to_string())));
    }
    doc.compact()
}

fn ping_doc() -> Json {
    Json::Obj(vec![("op".to_string(), Json::Str("ping".into()))])
}

fn count_doc(handle: &str) -> Json {
    CountRequest {
        handle: handle.to_string(),
        qi_preds: vec![],
        sa_lo: 0,
        sa_hi: u32::MAX,
        exact: false,
    }
    .to_json()
}

/// The reference transcript: what the blocking path writes for `lines`
/// served one at a time in order (blank lines frame no request and
/// answer nothing, exactly like the line loop).
fn serial_transcript(server: &LocalServer, lines: &[String]) -> String {
    let mut out = String::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let (response, _stop) = server.respond_line(line);
        out.push_str(&response);
        out.push('\n');
    }
    out
}

/// Drives one [`Conn`] through a scripted schedule: the wire bytes
/// arrive as `chunks`, framed requests are answered via `server` (in
/// arrival order, like the serial client), completions are filed in the
/// order given by `order` (indices into the framed sequence), and output
/// is drained at most `drain` bytes per "writable window". Returns the
/// bytes the connection wrote.
fn run_schedule(
    server: &LocalServer,
    chunks: &[Vec<u8>],
    order: &[usize],
    drain: usize,
    eof: bool,
) -> String {
    let mut conn = Conn::new(server.max_line_bytes());
    let mut framed = Vec::new();
    for chunk in chunks {
        framed.extend(conn.on_bytes(chunk));
    }
    if eof {
        framed.extend(conn.on_eof());
    }
    let responses: Vec<(u64, String, bool)> = framed
        .iter()
        .map(|request| {
            let (response, stop) = server.respond_line(&request.text);
            (request.seq, response, stop)
        })
        .collect();
    for &index in order {
        if let Some((seq, response, stop)) = responses.get(index) {
            conn.complete(*seq, response, *stop);
        }
    }
    let mut bytes = Vec::new();
    while conn.has_output() {
        let take: Vec<u8> = conn.output().iter().take(drain.max(1)).copied().collect();
        bytes.extend_from_slice(&take);
        conn.consume(take.len());
    }
    String::from_utf8(bytes).expect("wire output is UTF-8")
}

/// Splits `wire` into chunks of cycled `sizes` — an arbitrary packet
/// arrival schedule.
fn chunks_of(wire: &[u8], sizes: &[usize]) -> Vec<Vec<u8>> {
    let mut chunks = Vec::new();
    let mut at = 0;
    let mut i = 0;
    while at < wire.len() {
        let size = sizes.get(i % sizes.len()).copied().unwrap_or(1).max(1);
        let end = (at + size).min(wire.len());
        chunks.push(wire[at..end].to_vec());
        at = end;
        i += 1;
    }
    chunks
}

/// Every wire op, served through the machine under adversarial chunking
/// and drain schedules, answers byte-identically to the serial blocking
/// path — including the publish/count/audit/verify data path, the cached
/// re-publish, and both error shapes (unknown op, malformed JSON).
#[test]
fn every_wire_op_is_byte_identical_across_chunk_schedules() {
    // The handle is content-addressed and deterministic, so one scratch
    // server names it for all the fresh servers below.
    let scratch = local();
    let (publish_response, _) = scratch.respond_line(
        &PublishRequest::new(spec(), Algo::Anatomy)
            .to_json()
            .compact(),
    );
    let handle = Json::parse(&publish_response)
        .expect("publish response parses")
        .get("handle")
        .and_then(Json::as_str)
        .expect("publish response names a handle")
        .to_string();

    let mut audit = Json::Obj(vec![
        ("op".to_string(), Json::Str("audit".into())),
        ("handle".to_string(), Json::Str(handle.clone())),
    ]);
    let verify = Json::Obj(vec![
        ("op".to_string(), Json::Str("verify".into())),
        ("handle".to_string(), Json::Str(handle.clone())),
        ("battery".to_string(), Json::Bool(false)),
    ]);
    if let Json::Obj(members) = &mut audit {
        members.push(("trace_id".to_string(), Json::Str("t-audit".into())));
    }
    let lines: Vec<String> = vec![
        with_trace(ping_doc(), "t-ping"),
        "{\"op\":\"datasets\"}".to_string(),
        PublishRequest::new(spec(), Algo::Anatomy)
            .to_json()
            .compact(),
        // The same publish again: must answer `cached: true` both ways.
        PublishRequest::new(spec(), Algo::Anatomy)
            .to_json()
            .compact(),
        with_trace(count_doc(&handle), "t-count"),
        audit.compact(),
        verify.compact(),
        "{\"op\":\"health\"}".to_string(),
        "{\"op\":\"metrics\"}".to_string(),
        with_trace(count_doc("no-such-handle"), "t-miss"),
        "{\"op\":\"no_such_op\"}".to_string(),
        "this is not json".to_string(),
        String::new(), // a blank line frames nothing
    ];
    let wire: Vec<u8> = lines
        .iter()
        .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
        .collect();

    let reference = serial_transcript(&local(), &lines);
    assert!(!reference.is_empty());
    let in_order: Vec<usize> = (0..lines.len()).collect();
    let reversed: Vec<usize> = (0..lines.len()).rev().collect();
    let schedules: Vec<(&str, Vec<Vec<u8>>)> = vec![
        ("one coalesced packet", vec![wire.clone()]),
        ("one byte at a time", chunks_of(&wire, &[1])),
        ("mid-line splits", chunks_of(&wire, &[3, 7, 11])),
        ("large odd chunks", chunks_of(&wire, &[137])),
    ];
    for (name, chunks) in &schedules {
        for (order_name, order) in [("in order", &in_order), ("reversed", &reversed)] {
            for drain in [1usize, 3, 4096] {
                let got = run_schedule(&local(), chunks, order, drain, false);
                assert_eq!(
                    got, reference,
                    "schedule `{name}`, completions {order_name}, drain {drain} \
                     diverged from the serial transcript"
                );
            }
        }
    }

    // The trace_ids pair 1:1 and in request order.
    let traced: Vec<String> = reference
        .lines()
        .filter_map(|l| {
            Json::parse(l)
                .ok()?
                .get("trace_id")
                .and_then(Json::as_str)
                .map(String::from)
        })
        .collect();
    assert_eq!(traced, ["t-ping", "t-count", "t-audit", "t-miss"]);
}

/// A batch ending in an *unterminated* line: EOF frames it exactly like
/// the blocking path's final `read_until`, and the response is still
/// owed (and written) before the connection closes.
#[test]
fn eof_framed_final_line_answers_like_the_blocking_path() {
    let lines = vec![with_trace(ping_doc(), "a"), with_trace(ping_doc(), "b")];
    let reference = serial_transcript(&local(), &lines);
    // The wire has no trailing newline on the final request.
    let wire = format!("{}\n{}", lines[0], lines[1]).into_bytes();
    for sizes in [&[1usize][..], &[5, 2][..], &[4096][..]] {
        let got = run_schedule(&local(), &chunks_of(&wire, sizes), &[1, 0], 7, true);
        assert_eq!(got, reference);
    }
}

/// A `shutdown` mid-pipeline answers the acknowledgment in its slot and
/// drops every later slot: nothing is written past the ack, matching the
/// blocking path, which stops reading after serving the stop line.
#[test]
fn shutdown_mid_pipeline_acks_in_order_and_drops_the_tail() {
    let server = local();
    let lines = [
        with_trace(ping_doc(), "before"),
        with_trace(
            Json::Obj(vec![("op".to_string(), Json::Str("shutdown".into()))]),
            "stop",
        ),
        with_trace(ping_doc(), "after"),
    ];
    let wire: Vec<u8> = lines
        .iter()
        .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
        .collect();
    // Complete out of order: the tail first, then the stop, then the head.
    let got = run_schedule(&server, &chunks_of(&wire, &[9]), &[2, 1, 0], 4096, false);
    let responses: Vec<Json> = got
        .lines()
        .map(|l| Json::parse(l).expect("response parses"))
        .collect();
    assert_eq!(responses.len(), 2, "nothing may follow the ack: {got}");
    assert_eq!(
        responses[0].get("trace_id").and_then(Json::as_str),
        Some("before")
    );
    assert_eq!(
        responses[1].get("trace_id").and_then(Json::as_str),
        Some("stop")
    );
    assert_eq!(responses[1].get("ok").and_then(Json::as_bool), Some(true));
}

/// One line of each error class, scheduled byte-at-a-time, answers the
/// identical bytes the serial path answers — the UTF-8 refusal stays
/// in-slot (the connection survives) and the `too_large` refusal closes.
#[test]
fn framing_refusals_match_the_serial_path_shapes() {
    // UTF-8 refusal between two good requests: three lines out, the bad
    // one answered in order, connection still open.
    let server = local();
    let mut wire = with_trace(ping_doc(), "a").into_bytes();
    wire.push(b'\n');
    wire.extend_from_slice(&[0xff, 0xfe, b'\n']);
    wire.extend(with_trace(ping_doc(), "b").into_bytes());
    wire.push(b'\n');
    let got = run_schedule(&server, &chunks_of(&wire, &[1]), &[1, 0], 4096, false);
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 3);
    let refusal = Json::parse(lines[1]).expect("refusal parses");
    assert_eq!(refusal.get("ok").and_then(Json::as_bool), Some(false));
    assert!(refusal
        .get("error")
        .and_then(Json::as_str)
        .is_some_and(|e| e.contains("UTF-8")));

    // Oversized line pipelined behind a good request: the predecessor
    // answers first, then exactly one fatal `too_large` line.
    let server = LocalServer::new(&ServerConfig {
        obs: false,
        max_line_bytes: 48,
        ..Default::default()
    })
    .expect("local server");
    let mut wire = with_trace(ping_doc(), "a").into_bytes();
    wire.push(b'\n');
    wire.extend_from_slice(&[b'x'; 200]);
    let got = run_schedule(&server, &chunks_of(&wire, &[13]), &[0], 4096, false);
    let lines: Vec<&str> = got.lines().collect();
    assert_eq!(lines.len(), 2, "{got}");
    let refusal = Json::parse(lines[1]).expect("too_large parses");
    assert_eq!(
        refusal.get("code").and_then(Json::as_str),
        Some("too_large")
    );
    assert!(
        refusal.get("retryable").is_none(),
        "too_large is fatal, not retryable"
    );
}

/// One request line from the generator's op pool. Kinds cover the
/// happy path, both error shapes, and blank lines; requests that can
/// carry a `trace_id` carry `t{i}` so pairing is checkable.
fn generated_line(kind: u8, i: usize) -> String {
    match kind % 6 {
        0 => with_trace(ping_doc(), &format!("t{i}")),
        1 => "{\"op\":\"datasets\"}".to_string(),
        2 => with_trace(count_doc("no-such-handle"), &format!("t{i}")),
        3 => "{\"op\":\"no_such_op\"}".to_string(),
        4 => "this is not json".to_string(),
        _ => String::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For arbitrary request batches × packet boundaries × completion
    /// permutations × drain granularities: the machine's output is
    /// byte-identical to the serial transcript, responses are in request
    /// order, and every `trace_id` sent comes back exactly once, paired
    /// with its request's position.
    #[test]
    fn arbitrary_schedules_answer_byte_identically(
        kinds in proptest::collection::vec(0u8..255, 1..24),
        sizes in proptest::collection::vec(1usize..48, 1..16),
        shuffle in proptest::collection::vec(0u32..u32::MAX, 24..25),
        drain in 1usize..96,
    ) {
        let lines: Vec<String> = kinds
            .iter()
            .enumerate()
            .map(|(i, &k)| generated_line(k, i))
            .collect();
        let wire: Vec<u8> = lines
            .iter()
            .flat_map(|l| l.bytes().chain(std::iter::once(b'\n')))
            .collect();
        let reference = serial_transcript(&local(), &lines);

        // `shuffle` keys order the completion permutation.
        let mut order: Vec<usize> = (0..lines.len()).collect();
        order.sort_by_key(|&i| shuffle.get(i).copied().unwrap_or(0));

        let chunks = chunks_of(&wire, &sizes);
        let got = run_schedule(&local(), &chunks, &order, drain, false);
        prop_assert_eq!(&got, &reference);

        // Pipelining contract: trace_ids echo 1:1, in request order.
        let sent: Vec<String> = lines
            .iter()
            .filter(|l| !l.trim().is_empty())
            .filter_map(|l| {
                Json::parse(l).ok()?.get("trace_id").and_then(Json::as_str).map(String::from)
            })
            .collect();
        let echoed: Vec<String> = got
            .lines()
            .filter_map(|l| {
                Json::parse(l).ok()?.get("trace_id").and_then(Json::as_str).map(String::from)
            })
            .collect();
        prop_assert_eq!(sent, echoed);
    }
}

/// The request-line byte bound over real sockets, on **both** cores: a
/// pipelined good request is answered, the flood gets exactly one
/// parseable fatal `too_large` line, then the server hangs up — it never
/// buffers without limit.
#[test]
fn oversized_lines_are_refused_on_both_cores() {
    for event_loops in [0usize, 1] {
        let server = serve(&ServerConfig {
            threads: 2,
            read_timeout_ms: 25,
            event_loops,
            max_line_bytes: 64,
            ..Default::default()
        })
        .expect("bind");
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(5000)))
            .expect("timeout");
        stream
            .write_all(b"{\"op\":\"ping\",\"trace_id\":\"before\"}\n")
            .expect("write ping");
        // A 4 KiB line with no newline in sight: crosses the 64-byte
        // bound long before any terminator.
        stream.write_all(&[b'x'; 4096]).expect("write flood");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .expect("pipelined ping answered");
        let pong = Json::parse(line.trim()).expect("pong parses");
        assert_eq!(
            pong.get("trace_id").and_then(Json::as_str),
            Some("before"),
            "cores={event_loops}: the pipelined predecessor answers first"
        );
        line.clear();
        reader.read_line(&mut line).expect("too_large refusal");
        let refusal = Json::parse(line.trim()).expect("refusal parses");
        assert_eq!(refusal.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            refusal.get("code").and_then(Json::as_str),
            Some("too_large"),
            "cores={event_loops}: {line}"
        );
        assert!(refusal.get("retryable").is_none());
        let mut rest = Vec::new();
        assert_eq!(
            reader.read_to_end(&mut rest).unwrap_or(1),
            0,
            "cores={event_loops}: the connection must close after the refusal"
        );
        drop(stream);
        server.shutdown_and_join();
    }
}

/// Event-vs-threaded byte-identity over real sockets: the same batch,
/// pipelined at full depth against the event core and served serially by
/// the threaded core, answers identical bytes — publish, count, audit,
/// verify, ping, datasets, and an error, trace_ids echoed throughout.
#[test]
fn event_core_answers_byte_identically_to_the_threaded_core_over_tcp() {
    let threaded = serve(&ServerConfig {
        threads: 2,
        read_timeout_ms: 25,
        ..Default::default()
    })
    .expect("bind threaded");
    let event = serve(&ServerConfig {
        threads: 2,
        read_timeout_ms: 25,
        event_loops: 2,
        ..Default::default()
    })
    .expect("bind event");

    let publish = PublishRequest::new(spec(), Algo::Anatomy)
        .to_json()
        .compact();
    // Warm both artifact caches with the same probe publish so the
    // batch's publish answers `cached: true` on both servers (the handle
    // is content-addressed, so both name the same artifact).
    let mut handle = String::new();
    for server in [&threaded, &event] {
        let mut probe = Client::connect(server.addr()).expect("connect probe");
        handle = probe
            .publish(&PublishRequest::new(spec(), Algo::Anatomy))
            .expect("probe publish")
            .handle;
        drop(probe);
    }

    let lines: Vec<String> = vec![
        publish.clone(),
        with_trace(ping_doc(), "p1"),
        "{\"op\":\"datasets\"}".to_string(),
        with_trace(count_doc(&handle), "c1"),
        Json::Obj(vec![
            ("op".to_string(), Json::Str("audit".into())),
            ("handle".to_string(), Json::Str(handle.clone())),
        ])
        .compact(),
        Json::Obj(vec![
            ("op".to_string(), Json::Str("verify".into())),
            ("handle".to_string(), Json::Str(handle.clone())),
            ("battery".to_string(), Json::Bool(false)),
        ])
        .compact(),
        with_trace(count_doc("no-such-handle"), "c2"),
        publish, // cached on both: the probe warmed each cache
    ];

    // Serial over the threaded core: one call, one reply, in turn.
    let mut serial = Client::connect(threaded.addr()).expect("connect serial");
    let expected: Vec<String> = lines
        .iter()
        .map(|l| serial.call_raw(l).expect("serial call"))
        .collect();
    drop(serial);

    // Pipelined at full depth over the event core.
    let mut pipelined = Client::connect(event.addr()).expect("connect pipelined");
    let got = pipelined.pipeline_raw(&lines).expect("pipeline");
    drop(pipelined);

    assert_eq!(got.len(), expected.len());
    for (i, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "response {i} diverged between the cores");
    }
    threaded.shutdown_and_join();
    event.shutdown_and_join();
}

/// Pipelining deeper than the per-connection in-flight cap neither
/// deadlocks nor reorders: 3 × `MAX_PIPELINE_INFLIGHT` pings in one
/// write come back as exactly that many pongs, trace_ids in order —
/// the loop parks reads while full and resumes as slots free.
#[test]
fn pipelining_past_the_inflight_cap_stays_ordered() {
    let server = serve(&ServerConfig {
        threads: 2,
        read_timeout_ms: 25,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let depth = MAX_PIPELINE_INFLIGHT * 3;
    let lines: Vec<String> = (0..depth)
        .map(|i| with_trace(ping_doc(), &format!("deep-{i}")))
        .collect();
    let mut client = Client::connect(server.addr()).expect("connect");
    let replies = client.pipeline_raw(&lines).expect("deep pipeline");
    assert_eq!(replies.len(), depth);
    for (i, reply) in replies.iter().enumerate() {
        let doc = Json::parse(reply).expect("reply parses");
        assert_eq!(
            doc.get("trace_id").and_then(Json::as_str),
            Some(format!("deep-{i}").as_str()),
            "response {i} out of order"
        );
    }
    drop(client);
    server.shutdown_and_join();
}

//! The overload, degraded-mode, and timeout suite (`tests/overload.rs`)
//! ported to the **event-driven core** (DESIGN.md §15): the same
//! admission arithmetic — `workers + queue` concurrently open
//! connections, every arrival beyond that shed with one parseable
//! retryable `overloaded` line — now enforced by the event loops'
//! shared admission counter instead of sticky workers; the same
//! degraded-mode and deadline refusals (the dispatch layer is shared);
//! idle and mid-request timeouts driven by the loop's tick sweep; the
//! shutdown-latency contract; and shed behavior with pipelining in the
//! mix.

use betalike_faults::{ChaosVfs, FaultPlan};
use betalike_microdata::json::Json;
use betalike_server::wire::{retryable_error, ERR_OVERLOADED};
use betalike_server::{
    serve, Algo, Client, ClientError, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("betalike-ev-overload-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn synthetic(seed: u64) -> DatasetSpec {
    DatasetSpec::Synthetic { rows: 200, seed }
}

/// Floods a `workers=2, queue=1` event server: the first three
/// connections are admitted (the event core's capacity is *admitted
/// connections*, the same `workers + queue` bound the threaded core
/// enforces with sticky workers), every arrival beyond that is shed with
/// one parseable retryable `overloaded` line — never a silent
/// disconnect — and closing an admitted connection frees its slot.
#[test]
fn flood_sheds_with_overloaded_not_disconnects() {
    let server = serve(&ServerConfig {
        threads: 2,
        queue: 1,
        read_timeout_ms: 25,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Fill the admission capacity: three connections, each proven
    // admitted by a served ping.
    let mut admitted = Vec::new();
    for i in 0..3 {
        let mut client = Client::connect(addr).expect("connect");
        client
            .ping()
            .unwrap_or_else(|e| panic!("admitted ping {i}: {e:?}"));
        admitted.push(client);
    }

    // Seven more arrivals: every one must shed.
    let mut shed_count = 0;
    for _ in 0..7 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(2000)))
            .expect("timeout");
        stream
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("write ping");
        let mut reader = BufReader::new(stream);
        let mut line = String::new();
        reader.read_line(&mut line).expect("shed reply");
        let doc = Json::parse(line.trim()).expect("shed reply parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("code").and_then(Json::as_str),
            Some("overloaded"),
            "shed reply must carry the stable code: {line}"
        );
        assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));
        // After the error line the server hangs up.
        let mut rest = String::new();
        assert_eq!(reader.read_line(&mut rest).unwrap_or(0), 0);
        shed_count += 1;
    }
    assert_eq!(shed_count, 7, "exactly capacity connections may stay");

    // Closing one admitted connection frees its slot: the next arrival
    // is admitted and served.
    drop(admitted.remove(0));
    let mut fresh = Client::connect(addr).expect("reconnect");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match fresh.ping() {
            Ok(()) => break,
            Err(_) if Instant::now() < deadline => {
                // The loop releases the slot on its next tick; retry.
                std::thread::sleep(Duration::from_millis(25));
                fresh = Client::connect(addr).expect("reconnect");
            }
            Err(e) => panic!("freed slot never readmitted: {e:?}"),
        }
    }

    // `health` accounts for the sheds (and the gauges are sane). The
    // health probe itself needs a slot, so free the rest first. The
    // gauge is a lower bound here: retries in the readmission loop above
    // that raced the slot release were themselves shed and counted (the
    // exact flood count, 7, was already asserted reply-by-reply).
    drop(admitted);
    drop(fresh);
    std::thread::sleep(Duration::from_millis(100));
    let mut client = Client::connect(addr).expect("connect for health");
    let doc = client.health().expect("health");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(doc.get("workers").and_then(Json::as_u64), Some(2));
    assert_eq!(doc.get("event_loops").and_then(Json::as_u64), Some(1));
    assert_eq!(doc.get("queue_capacity").and_then(Json::as_u64), Some(1));
    let shed = doc.get("shed").and_then(Json::as_u64).expect("shed gauge");
    assert!(shed >= 7, "the 7 flood sheds must be counted, saw {shed}");
    assert_eq!(doc.get("store").and_then(Json::as_str), Some("none"));
    drop(client);
    server.shutdown_and_join();
}

/// A store whose writes persistently fail trips the event server into
/// read-only degraded mode exactly like the threaded one — the dispatch
/// layer is shared, and the event core must not bypass it.
#[test]
fn degraded_store_turns_server_read_only_until_recovery() {
    let dir = temp_dir("degraded");
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let server = serve(&ServerConfig {
        threads: 2,
        data_dir: Some(dir.clone()),
        vfs: Some(chaos.clone()),
        read_timeout_ms: 25,
        event_loops: 2,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let healthy = client
        .publish(&PublishRequest::new(synthetic(1), Algo::Anatomy))
        .expect("healthy publish");

    chaos.set_plan(FaultPlan::FailWrites);
    for seed in 2..=(1 + u64::from(betalike_store::disk::DEGRADED_AFTER)) {
        let reply = client
            .publish(&PublishRequest::new(synthetic(seed), Algo::Anatomy))
            .expect("publish succeeds even when its persist fails");
        assert!(!reply.cached);
    }

    let err = client
        .publish(&PublishRequest::new(synthetic(99), Algo::Anatomy))
        .expect_err("cold publish in degraded mode must be refused");
    match &err {
        ClientError::Retryable { code, .. } => assert_eq!(code, "degraded"),
        other => panic!("expected a retryable `degraded` refusal, got {other:?}"),
    }
    assert!(err.is_retryable());

    let count = client
        .count(&CountRequest {
            handle: healthy.handle.clone(),
            qi_preds: vec![],
            sa_lo: 0,
            sa_hi: u32::MAX,
            exact: false,
        })
        .expect("degraded mode still serves counts");
    assert!(count.estimate > 0.0);
    let doc = client.health().expect("health");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("degraded"));
    assert_eq!(doc.get("store").and_then(Json::as_str), Some("degraded"));

    chaos.set_plan(FaultPlan::None);
    client
        .publish(&PublishRequest::new(synthetic(99), Algo::Anatomy))
        .expect("publish after recovery");
    let doc = client.health().expect("health after recovery");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));
    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A publish with a tiny `deadline_ms` answers a retryable `deadline`
/// error while the computation continues detached on the compute pool;
/// re-requesting collects the finished artifact. The event loop itself
/// never runs the computation — other connections stay responsive.
#[test]
fn publish_deadline_cancels_the_request_not_the_computation() {
    let server = serve(&ServerConfig {
        threads: 2,
        read_timeout_ms: 25,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let request = PublishRequest::new(
        DatasetSpec::Census {
            rows: 8000,
            seed: 42,
        },
        Algo::Burel,
    );
    let mut doc = request.to_json();
    if let Json::Obj(members) = &mut doc {
        members.push(("deadline_ms".to_string(), Json::Num(1.0)));
    }
    let err = client.call(&doc).expect_err("a 1ms deadline must expire");
    match &err {
        ClientError::Retryable { code, .. } => assert_eq!(code, "deadline"),
        other => panic!("expected a retryable `deadline` error, got {other:?}"),
    }

    // While the detached publish still runs, the event loop keeps
    // serving: a second connection's ping answers immediately.
    let mut other = Client::connect(server.addr()).expect("second connect");
    other.ping().expect("loop stays responsive during compute");
    drop(other);

    let reply = client
        .publish(&request)
        .expect("followup publish collects the background result");
    assert!(reply.cached, "the detached computation must be reused");
    drop(client);
    server.shutdown_and_join();
}

/// An idle connection is closed after `idle_timeout_ms` by the loop's
/// tick sweep — but activity within the window resets the timer, and a
/// freed slot readmits a new connection.
#[test]
fn idle_connections_expire_and_free_their_slot() {
    let server = serve(&ServerConfig {
        threads: 1,
        queue: 1,
        read_timeout_ms: 25,
        idle_timeout_ms: 300,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    client.ping().expect("first ping");
    std::thread::sleep(Duration::from_millis(100));
    client
        .ping()
        .expect("activity inside the window resets the timer");

    std::thread::sleep(Duration::from_millis(900));
    assert!(
        client.ping().is_err(),
        "the idle connection must have been closed"
    );

    // Its admission slot is free again: a new client is served.
    let mut fresh = Client::connect(server.addr()).expect("reconnect");
    fresh.ping().expect("slot freed by idle expiry");
    drop(fresh);
    drop(client);
    server.shutdown_and_join();
}

/// A request line that starts but never finishes is answered with a
/// retryable `deadline` error and closed — a trickling or stalled peer
/// cannot hold its connection (or admission slot) forever.
#[test]
fn stalled_mid_request_lines_get_a_deadline_error() {
    let server = serve(&ServerConfig {
        threads: 1,
        read_timeout_ms: 25,
        request_timeout_ms: 200,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_millis(5000)))
        .expect("timeout");
    // Half a request, never completed.
    stream.write_all(b"{\"op\":\"pi").expect("partial write");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut line = String::new();
    reader.read_line(&mut line).expect("deadline reply");
    let doc = Json::parse(line.trim()).expect("deadline reply parses");
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("deadline"));
    assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));
    // Then EOF: the connection is gone.
    let mut rest = Vec::new();
    assert_eq!(reader.read_to_end(&mut rest).unwrap_or(0), 0);
    drop(stream);
    server.shutdown_and_join();
}

/// The shutdown-latency contract holds for the event core: loops poll
/// with a `read_timeout_ms` tick, so shutdown with idle connections
/// parked on multiple loops completes within a few ticks.
#[test]
fn shutdown_latency_is_bounded_by_the_loop_tick() {
    let server = serve(&ServerConfig {
        threads: 4,
        read_timeout_ms: 25,
        event_loops: 2,
        ..Default::default()
    })
    .expect("bind");
    let mut parked = Vec::new();
    for _ in 0..4 {
        let mut client = Client::connect(server.addr()).expect("connect");
        client.ping().expect("ping");
        parked.push(client);
    }
    let started = Instant::now();
    server.shutdown_and_join();
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(2),
        "shutdown with parked connections took {elapsed:?} (tick is 25ms)"
    );
    drop(parked);
}

/// Sheds stay parseable while admitted connections are mid-pipeline: a
/// full-capacity server busy with deep pipelined batches refuses the
/// next arrival with the exact `overloaded` line, and the pipelines
/// still complete in order.
#[test]
fn sheds_are_parseable_mid_pipeline_and_pipelines_complete() {
    let server = serve(&ServerConfig {
        threads: 1,
        queue: 1,
        read_timeout_ms: 25,
        event_loops: 1,
        ..Default::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Two admitted connections (capacity = 1 worker + 1 queue) each
    // write a depth-32 pipelined batch without reading yet.
    let depth = 32;
    let mut busy = Vec::new();
    for c in 0..2 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_millis(10000)))
            .expect("timeout");
        let batch: String = (0..depth)
            .map(|i| format!("{{\"op\":\"ping\",\"trace_id\":\"c{c}-{i}\"}}\n"))
            .collect();
        stream.write_all(batch.as_bytes()).expect("write batch");
        busy.push(stream);
    }

    // The third arrival sheds mid-pipeline, parseably.
    let mut extra = TcpStream::connect(addr).expect("connect extra");
    extra
        .set_read_timeout(Some(Duration::from_millis(2000)))
        .expect("timeout");
    extra.write_all(b"{\"op\":\"ping\"}\n").expect("write ping");
    let mut reader = BufReader::new(extra);
    let mut line = String::new();
    reader.read_line(&mut line).expect("shed reply");
    let doc = Json::parse(line.trim()).expect("shed reply parses");
    assert_eq!(doc.get("code").and_then(Json::as_str), Some("overloaded"));
    assert_eq!(doc.get("retryable").and_then(Json::as_bool), Some(true));

    // Both pipelines drain completely, responses in request order.
    for (c, stream) in busy.into_iter().enumerate() {
        let mut reader = BufReader::new(stream);
        for i in 0..depth {
            let mut line = String::new();
            reader.read_line(&mut line).expect("pipelined reply");
            let doc = Json::parse(line.trim()).expect("reply parses");
            assert_eq!(
                doc.get("trace_id").and_then(Json::as_str),
                Some(format!("c{c}-{i}").as_str()),
                "client {c} response {i} out of order: {line}"
            );
        }
    }
    server.shutdown_and_join();
}

/// End-to-end retry proof against the event core: the real
/// `betalike-client smoke` binary, shed once by a proxy with an injected
/// `overloaded` line, retries into the event server and exits 0 with
/// every answer bit-identical.
#[test]
fn client_smoke_retries_through_an_injected_shed() {
    let server = serve(&ServerConfig {
        threads: 4,
        read_timeout_ms: 25,
        event_loops: 2,
        ..Default::default()
    })
    .expect("bind");
    let backend = server.addr();

    let proxy = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let proxy_addr = proxy.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        // First connection: read one request, shed it, hang up.
        if let Ok((stream, _)) = proxy.accept() {
            let mut reader = BufReader::new(stream.try_clone().expect("clone"));
            let mut line = String::new();
            let _ = reader.read_line(&mut line);
            let mut stream = stream;
            let reply = retryable_error(ERR_OVERLOADED, "injected shed").compact() + "\n";
            let _ = stream.write_all(reply.as_bytes());
        }
        // Every later connection: transparent pipe to the event server.
        while let Ok((client_side, _)) = proxy.accept() {
            let Ok(server_side) = TcpStream::connect(backend) else {
                break;
            };
            let mut up_read = client_side.try_clone().expect("clone");
            let mut up_write = server_side.try_clone().expect("clone");
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut up_read, &mut up_write);
                let _ = up_write.shutdown(std::net::Shutdown::Write);
            });
            let mut down_read = server_side;
            let mut down_write = client_side;
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut down_read, &mut down_write);
                let _ = down_write.shutdown(std::net::Shutdown::Write);
            });
        }
    });

    let output = std::process::Command::new(env!("CARGO_BIN_EXE_betalike-client"))
        .args([
            "smoke",
            "--addr",
            &proxy_addr.to_string(),
            "--retries",
            "3",
            "--retry-seed",
            "5",
            "--rows",
            "300",
        ])
        .output()
        .expect("run betalike-client");
    assert!(
        output.status.success(),
        "smoke through the shedding proxy failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr)
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("failed retryably"),
        "the retry path must actually have engaged; stderr: {stderr}"
    );
    server.shutdown_and_join();
}

//! The `verify` op end to end: a served artifact passes the server-side
//! conformance oracle over TCP — including after a restart, when the
//! artifact is answered from the durable store instead of the pipeline.

use betalike_server::{serve, Algo, Client, DatasetSpec, PublishRequest, ServerConfig};

fn spec() -> DatasetSpec {
    DatasetSpec::Census {
        rows: 1_000,
        seed: 19,
    }
}

#[test]
fn verify_op_passes_every_scheme() {
    let server = serve(&ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for algo in [
        Algo::Burel,
        Algo::Sabre,
        Algo::Mondrian,
        Algo::Anatomy,
        Algo::Perturb,
    ] {
        let reply = client
            .publish(&PublishRequest::new(spec(), algo))
            .expect("publish");
        let doc = client.verify(&reply.handle, false).expect("verify");
        assert_eq!(
            doc.get("pass").and_then(|v| v.as_bool()),
            Some(true),
            "{algo:?} failed the server-side oracle: {}",
            doc.pretty()
        );
        let report = doc.get("report").expect("report document");
        assert_eq!(
            report.get("kind").and_then(|v| v.as_str()),
            Some(reply.kind.as_str())
        );
    }
    server.shutdown_and_join();
}

#[test]
fn verify_op_with_battery_and_errors() {
    let server = serve(&ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let reply = client
        .publish(&PublishRequest::new(spec(), Algo::Burel))
        .expect("publish");
    let doc = client.verify(&reply.handle, true).expect("verify+battery");
    assert_eq!(doc.get("pass").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(
        doc.get("battery_pass").and_then(|v| v.as_bool()),
        Some(true)
    );
    let verdicts = doc
        .get("battery")
        .and_then(|b| b.get("verdicts"))
        .and_then(|v| v.as_arr())
        .expect("battery verdicts");
    assert!(verdicts.len() >= 4, "full roster must run");
    // Unknown handles are a wire-level error, not a crash.
    assert!(client.verify("pub-does-not-exist", false).is_err());
    server.shutdown_and_join();
}

#[test]
fn verify_op_after_restart_reads_the_store() {
    let dir =
        std::env::temp_dir().join(format!("betalike-verify-op-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = ServerConfig {
        data_dir: Some(dir.clone()),
        ..Default::default()
    };
    let handle = {
        let server = serve(&cfg).expect("bind");
        let mut client = Client::connect(server.addr()).expect("connect");
        let reply = client
            .publish(&PublishRequest::new(spec(), Algo::Burel))
            .expect("publish");
        server.shutdown_and_join();
        reply.handle
    };
    // A fresh process: the artifact exists only on disk now.
    let server = serve(&cfg).expect("rebind");
    let mut client = Client::connect(server.addr()).expect("reconnect");
    let doc = client.verify(&handle, false).expect("verify restored");
    assert_eq!(
        doc.get("pass").and_then(|v| v.as_bool()),
        Some(true),
        "restored artifact failed the oracle: {}",
        doc.pretty()
    );
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

//! End-to-end tests over a real TCP socket: one in-process server, many
//! concurrent clients, byte-identical answers.

use betalike_microdata::json::Json;
use betalike_query::{generate_workload, PublishedAnswerer, WorkloadConfig};
use betalike_server::{
    serve, Algo, Client, ClientError, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
};
use std::sync::Arc;

const ROWS: usize = 1_200;

fn start() -> betalike_server::ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 8,
        preload: Some(DatasetSpec::Census {
            rows: ROWS,
            seed: 3,
        }),
        data_dir: None,
        ..Default::default()
    })
    .expect("bind an ephemeral port")
}

fn census_request(algo: Algo) -> PublishRequest {
    PublishRequest::new(
        DatasetSpec::Census {
            rows: ROWS,
            seed: 3,
        },
        algo,
    )
}

/// The raw count-request lines (and a serial client's responses) the
/// concurrency test replays.
fn workload_lines(handle: &str) -> Vec<String> {
    let table = betalike_microdata::census::generate(
        &betalike_microdata::census::CensusConfig::new(ROWS, 3),
    );
    let queries = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2],
            sa: 5,
            lambda: 2,
            theta: 0.2,
            num_queries: 25,
            seed: 9,
        },
    );
    queries
        .iter()
        .map(|q| {
            CountRequest {
                handle: handle.to_string(),
                qi_preds: q.qi_preds.clone(),
                sa_lo: q.sa_pred.lo,
                sa_hi: q.sa_pred.hi,
                exact: true,
            }
            .to_json()
            .compact()
        })
        .collect()
}

#[test]
fn eight_concurrent_clients_get_byte_identical_answers() {
    let server = start();
    let addr = server.addr();

    let mut publisher = Client::connect(addr).unwrap();
    let reply = publisher.publish(&census_request(Algo::Burel)).unwrap();
    assert_eq!(reply.kind, "generalized");
    assert!(!reply.cached, "first publish computes");

    // Serial reference: raw response lines from one connection.
    let lines = workload_lines(&reply.handle);
    let serial: Vec<String> = {
        let mut client = Client::connect(addr).unwrap();
        lines
            .iter()
            .map(|line| client.call_raw(line).unwrap())
            .collect()
    };
    assert!(serial.iter().all(|l| l.contains("\"ok\":true")));

    // Eight clients hammer the same handle concurrently; every one must
    // read back the exact bytes the serial client saw.
    let answers: Vec<Vec<String>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let lines = &lines;
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    lines
                        .iter()
                        .map(|line| client.call_raw(line).unwrap())
                        .collect::<Vec<String>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for got in &answers {
        assert_eq!(got, &serial, "concurrent answers must be byte-identical");
    }

    // And the served numbers are bit-identical to the in-process answerer.
    let table = Arc::new(betalike_microdata::census::generate(
        &betalike_microdata::census::CensusConfig::new(ROWS, 3),
    ));
    let partition = betalike::burel(
        &table,
        &[0, 1, 2],
        5,
        &betalike::BurelConfig::new(4.0).with_seed(42),
    )
    .unwrap();
    let answerer = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
    let queries = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2],
            sa: 5,
            lambda: 2,
            theta: 0.2,
            num_queries: 25,
            seed: 9,
        },
    );
    for (line, q) in serial.iter().zip(&queries) {
        let doc = Json::parse(line).unwrap();
        let served = doc.get("estimate").unwrap().as_f64().unwrap();
        let local = answerer.estimate(q).unwrap();
        assert_eq!(served.to_bits(), local.to_bits());
        let exact = doc.get("exact").unwrap().as_u64().unwrap();
        assert_eq!(exact, answerer.exact(q));
    }

    server.shutdown_and_join();
}

#[test]
fn concurrent_publishes_of_one_handle_compute_once() {
    let server = start();
    let addr = server.addr();
    // Ten clients race to publish the same artifact; the server must
    // resolve them to one handle, and at most one may report a fresh
    // computation... exactly one, since the artifact cannot pre-exist.
    let replies: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..10)
            .map(|_| {
                s.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.publish(&census_request(Algo::Sabre)).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let handle = &replies[0].handle;
    assert!(replies.iter().all(|r| &r.handle == handle));
    let fresh = replies.iter().filter(|r| !r.cached).count();
    assert!(fresh <= 1, "{fresh} clients claim to have computed");
    server.shutdown_and_join();
}

#[test]
fn audit_and_every_algo_roundtrip() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();
    for algo in [
        Algo::Burel,
        Algo::Sabre,
        Algo::Mondrian,
        Algo::Anatomy,
        Algo::Perturb,
    ] {
        let reply = client.publish(&census_request(algo)).unwrap();
        let audit = client.audit(&reply.handle).unwrap();
        let kind = audit.get("kind").unwrap().as_str().unwrap();
        match algo {
            Algo::Anatomy => assert_eq!(kind, "anatomy"),
            Algo::Perturb => {
                assert_eq!(kind, "perturbed");
                assert!(audit.get("min_alpha").unwrap().as_f64().unwrap() > 0.0);
            }
            _ => {
                assert_eq!(kind, "generalized");
                assert!(audit.get("max_beta").unwrap().as_f64().unwrap() >= 0.0);
            }
        }
        // Every published form answers a simple count.
        let count = client
            .count(&CountRequest {
                handle: reply.handle.clone(),
                qi_preds: vec![],
                sa_lo: 0,
                sa_hi: 49,
                exact: true,
            })
            .unwrap();
        assert_eq!(
            count.exact,
            Some(ROWS as u64),
            "full-range exact count is |DB| for {algo:?}"
        );
        assert!(count.estimate.is_finite());
    }
    server.shutdown_and_join();
}

#[test]
fn result_cache_and_no_catalog_are_byte_transparent() {
    // Server A: defaults (catalogs on, result cache on). Server B: the
    // `--no-catalog --result-cache 0` configuration. The same workload
    // must read back byte-identical response lines from both servers —
    // and from a replay on A, where every line is a cache hit.
    let server_a = start();
    let server_b = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        catalog: false,
        result_cache: 0,
        ..Default::default()
    })
    .expect("bind an ephemeral port");

    let mut a = Client::connect(server_a.addr()).unwrap();
    let mut b = Client::connect(server_b.addr()).unwrap();
    let handle = a.publish(&census_request(Algo::Burel)).unwrap().handle;
    assert_eq!(
        b.publish(&census_request(Algo::Burel)).unwrap().handle,
        handle
    );

    let lines = workload_lines(&handle);
    let first: Vec<String> = lines.iter().map(|l| a.call_raw(l).unwrap()).collect();
    let replay: Vec<String> = lines.iter().map(|l| a.call_raw(l).unwrap()).collect();
    let scan: Vec<String> = lines.iter().map(|l| b.call_raw(l).unwrap()).collect();
    assert_eq!(first, replay, "cache hits must replay the miss bytes");
    assert_eq!(first, scan, "scan-only answers must match the catalog path");

    let health_a = a.health().unwrap();
    assert_eq!(health_a.get("catalog").unwrap().as_bool(), Some(true));
    let hits = health_a.get("result_cache_hits").unwrap().as_u64().unwrap();
    assert!(
        hits >= lines.len() as u64,
        "replay hits recorded, got {hits}"
    );
    assert!(health_a.get("result_cache_size").unwrap().as_u64().unwrap() > 0);
    let health_b = b.health().unwrap();
    assert_eq!(health_b.get("catalog").unwrap().as_bool(), Some(false));
    assert_eq!(
        health_b
            .get("result_cache_capacity")
            .unwrap()
            .as_u64()
            .unwrap(),
        0
    );

    server_a.shutdown_and_join();
    server_b.shutdown_and_join();
}

#[test]
fn wire_errors_are_reported_not_fatal() {
    let server = start();
    let mut client = Client::connect(server.addr()).unwrap();

    // Malformed JSON gets an error response, and the connection survives.
    let raw = client.call_raw("{not json").unwrap();
    assert!(raw.contains("\"ok\":false"));
    client.ping().unwrap();

    // Unknown ops, unknown handles, bad predicates: all server-side errors.
    for (request, needle) in [
        (r#"{"op":"frobnicate"}"#.to_string(), "unknown op"),
        (
            r#"{"op":"count","handle":"pub-ffff","preds":[],"sa":{"lo":0,"hi":1}}"#.to_string(),
            "unknown handle",
        ),
        (
            r#"{"op":"publish","dataset":"adult","algo":"burel"}"#.to_string(),
            "unknown dataset",
        ),
    ] {
        let raw = client.call_raw(&request).unwrap();
        assert!(
            raw.contains(needle),
            "`{request}` should fail with `{needle}`, got `{raw}`"
        );
    }

    // `datasets` reflects the preload and, after a publish, the handle.
    let reply = client.publish(&census_request(Algo::Burel)).unwrap();
    let doc = client
        .call(&Json::parse(r#"{"op":"datasets"}"#).unwrap())
        .unwrap();
    let listed = |key: &str, needle: &str| {
        doc.get(key)
            .and_then(Json::as_arr)
            .is_some_and(|xs| xs.iter().any(|x| x.as_str() == Some(needle)))
    };
    assert!(listed(
        "datasets",
        &DatasetSpec::Census {
            rows: ROWS,
            seed: 3
        }
        .canonical()
    ));
    assert!(listed("published", &reply.handle));

    // A predicate outside the published QI set is rejected, not a panic.
    let err = client
        .count(&CountRequest {
            handle: reply.handle,
            qi_preds: vec![betalike_query::RangePred {
                attr: 4,
                lo: 0,
                hi: 1,
            }],
            sa_lo: 0,
            sa_hi: 1,
            exact: false,
        })
        .unwrap_err();
    assert!(matches!(err, ClientError::Server(ref m) if m.contains("outside the published QI")));

    server.shutdown_and_join();
}

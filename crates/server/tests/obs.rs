//! Observability behavior of the serving stack (DESIGN.md §14): the
//! `metrics` op's counters/gauges/histograms, per-op latency accounting,
//! `trace_id` echo, byte-identical responses with timings on vs off, and
//! the coherence of the `health` gauges rebuilt on the shared registry.

use betalike_microdata::json::Json;
use betalike_server::{serve, Client, ServerConfig};

fn publish_line() -> &'static str {
    r#"{"op":"publish","dataset":"synthetic","rows":300,"dseed":7,"algo":"anatomy"}"#
}

fn raw(client: &mut Client, line: &str) -> Json {
    let reply = client.call_raw(line).expect("call_raw");
    Json::parse(reply.trim()).expect("reply parses")
}

#[test]
fn trace_id_is_echoed_only_when_sent() {
    let server = serve(&ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let doc = raw(&mut client, r#"{"op":"ping","trace_id":"req-42"}"#);
    assert_eq!(doc.get("trace_id").and_then(Json::as_str), Some("req-42"));
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));

    let doc = raw(&mut client, r#"{"op":"ping"}"#);
    assert!(
        doc.get("trace_id").is_none(),
        "no trace_id without one sent"
    );

    // Errors echo too — the id is how a client pairs pipelined replies.
    let doc = raw(&mut client, r#"{"op":"nope","trace_id":"t-err"}"#);
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(doc.get("trace_id").and_then(Json::as_str), Some("t-err"));

    server.shutdown_and_join();
}

/// The `obs` flag gates *timings*, never content: the same request
/// sequence against a timed and an untimed server must produce
/// byte-identical response lines (trace_id echo included).
#[test]
fn responses_are_byte_identical_with_obs_on_and_off() {
    let on = serve(&ServerConfig::default()).expect("bind");
    let off = serve(&ServerConfig {
        obs: false,
        ..Default::default()
    })
    .expect("bind");
    let mut client_on = Client::connect(on.addr()).expect("connect");
    let mut client_off = Client::connect(off.addr()).expect("connect");

    let count_line = |handle: &str| {
        format!(
            r#"{{"op":"count","handle":"{handle}","preds":[],"sa":{{"lo":0,"hi":3}},"trace_id":"q-1"}}"#
        )
    };
    let pub_on = raw(&mut client_on, publish_line());
    let pub_off = raw(&mut client_off, publish_line());
    let handle = pub_on
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle")
        .to_string();
    assert_eq!(pub_on.compact(), pub_off.compact());

    for line in [
        r#"{"op":"ping"}"#.to_string(),
        r#"{"op":"ping","trace_id":"abc"}"#.to_string(),
        count_line(&handle),
        count_line(&handle), // the cache-hit replay must match too
        format!(r#"{{"op":"audit","handle":"{handle}"}}"#),
        r#"{"op":"datasets"}"#.to_string(),
        r#"{"op":"garbage?"}"#.to_string(),
    ] {
        let a = client_on.call_raw(&line).expect("raw on");
        let b = client_off.call_raw(&line).expect("raw off");
        assert_eq!(a, b, "obs flag changed the response for {line}");
    }

    on.shutdown_and_join();
    off.shutdown_and_join();
}

#[test]
fn metrics_reports_per_op_histograms_after_traffic() {
    let server = serve(&ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    let published = raw(&mut client, publish_line());
    let handle = published
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle");
    // A real QI predicate so the catalog classifies plans (an empty
    // `preds` list short-circuits to the row total without planning).
    let count_line = format!(
        r#"{{"op":"count","handle":"{handle}","preds":[{{"attr":0,"lo":2,"hi":9}}],"sa":{{"lo":0,"hi":3}}}}"#
    );
    for _ in 0..5 {
        let doc = raw(&mut client, &count_line);
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    let _ = raw(&mut client, r#"{"op":"bogus"}"#); // errors are counted too

    let doc = client.metrics().expect("metrics");
    assert_eq!(doc.get("obs").and_then(Json::as_bool), Some(true));
    let counters = doc.get("counters").expect("counters");
    let get = |obj: &Json, key: &str| obj.get(key).and_then(Json::as_f64).unwrap_or(-1.0);
    assert_eq!(get(counters, "op_count_requests"), 5.0);
    assert_eq!(get(counters, "op_publish_requests"), 1.0);
    assert_eq!(get(counters, "op_unknown_requests"), 1.0);
    assert_eq!(get(counters, "op_unknown_errors"), 1.0);
    assert_eq!(get(counters, "op_count_errors"), 0.0);
    // The count calls hit the catalog: plan classifications accumulated.
    let plans = ["disjoint", "full_cover", "straddle", "residual_scan"]
        .iter()
        .map(|k| get(counters, &format!("catalog_plan_{k}")))
        .sum::<f64>();
    assert!(plans > 0.0, "catalog plan counters never moved");

    let histograms = doc.get("histograms").expect("histograms");
    let count_hist = histograms.get("op_count_latency_ns").expect("count hist");
    assert_eq!(get(count_hist, "count"), 5.0);
    let (p50, p99, p999) = (
        get(count_hist, "p50_ns"),
        get(count_hist, "p99_ns"),
        get(count_hist, "p999_ns"),
    );
    assert!(p50 > 0.0, "a served count took nonzero time");
    assert!(p50 <= p99 && p99 <= p999, "quantiles must be ordered");
    // Every wire op is pre-registered, exercised or not.
    for op in [
        "ping", "datasets", "publish", "count", "audit", "verify", "health", "metrics", "shutdown",
    ] {
        assert!(
            histograms.get(&format!("op_{op}_latency_ns")).is_some(),
            "op `{op}` missing from the histogram roster"
        );
    }

    let gauges = doc.get("gauges").expect("gauges");
    assert_eq!(get(gauges, "artifacts_resident"), 1.0);
    assert_eq!(get(gauges, "queue_depth"), 0.0);
    assert_eq!(get(gauges, "active_connections"), 1.0, "this connection");
    assert_eq!(get(gauges, "result_cache_misses"), 1.0);
    assert_eq!(get(gauges, "result_cache_hits"), 4.0);

    let prom = doc
        .get("prometheus")
        .and_then(Json::as_str)
        .expect("prometheus text");
    assert!(prom.contains("betalike_op_count_latency_ns{quantile=\"0.99\"}"));
    assert!(prom.contains("# TYPE betalike_op_count_requests counter"));

    server.shutdown_and_join();
}

/// With `obs: false` the counters and gauges (and so `health`) keep
/// working — only the clock-reading paths go quiet.
#[test]
fn disabling_obs_stops_timings_but_not_counters() {
    let server = serve(&ServerConfig {
        obs: false,
        ..Default::default()
    })
    .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    for _ in 0..3 {
        client.ping().expect("ping");
    }
    let doc = client.metrics().expect("metrics");
    assert_eq!(doc.get("obs").and_then(Json::as_bool), Some(false));
    let counters = doc.get("counters").expect("counters");
    assert_eq!(
        counters.get("op_ping_requests").and_then(Json::as_f64),
        Some(3.0)
    );
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("op_ping_latency_ns"))
        .expect("hist");
    assert_eq!(hist.get("count").and_then(Json::as_f64), Some(0.0));

    let health = client.health().expect("health");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        health.get("active_connections").and_then(Json::as_u64),
        Some(1)
    );
    server.shutdown_and_join();
}

/// `health` must agree with `metrics` — both are views of the same
/// registry snapshot, not separately assembled gauges.
#[test]
fn health_and_metrics_agree_on_shared_gauges() {
    let server = serve(&ServerConfig::default()).expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");
    let published = raw(&mut client, publish_line());
    let handle = published
        .get("handle")
        .and_then(Json::as_str)
        .expect("handle");
    for _ in 0..4 {
        raw(
            &mut client,
            &format!(r#"{{"op":"count","handle":"{handle}","preds":[],"sa":{{"lo":0,"hi":2}}}}"#),
        );
    }
    let health = client.health().expect("health");
    let metrics = client.metrics().expect("metrics");
    let gauges = metrics.get("gauges").expect("gauges");
    for (health_key, gauge_name) in [
        ("queue_depth", "queue_depth"),
        ("active_connections", "active_connections"),
        ("artifacts", "artifacts_resident"),
        ("result_cache_size", "result_cache_size"),
        ("result_cache_hits", "result_cache_hits"),
        ("result_cache_misses", "result_cache_misses"),
    ] {
        assert_eq!(
            health.get(health_key).and_then(Json::as_f64),
            gauges.get(gauge_name).and_then(Json::as_f64),
            "health `{health_key}` disagrees with registry gauge `{gauge_name}`"
        );
    }
    server.shutdown_and_join();
}

//! Durability tests over a real data directory: a server publishes into
//! `--data-dir`, dies, and a *fresh* server process-equivalent (new
//! registry, new caches, same directory) must answer `count` and `audit`
//! for the old handles **byte-identically** — with zero pipeline
//! recomputation, asserted via the `datasets` op (a restored artifact
//! never materializes a dataset in the registry).

use betalike_microdata::json::Json;
use betalike_server::{
    serve, Algo, Client, CountRequest, DatasetSpec, PublishRequest, ServerConfig, ServerHandle,
};
use std::path::PathBuf;

const ROWS: usize = 1_100;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "betalike-persistence-test-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(data_dir: &std::path::Path) -> ServerHandle {
    serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        preload: None,
        data_dir: Some(data_dir.to_path_buf()),
        ..Default::default()
    })
    .expect("bind an ephemeral port")
}

fn census_request(algo: Algo) -> PublishRequest {
    PublishRequest::new(
        DatasetSpec::Census {
            rows: ROWS,
            seed: 6,
        },
        algo,
    )
}

/// A small fixed count workload (raw request lines, so responses can be
/// compared as bytes).
fn count_lines(handle: &str) -> Vec<String> {
    let preds = [
        (0u32, 40u32, 0u32, 25u32),
        (1, 8, 3, 30),
        (2, 15, 10, 49),
        (0, 78, 0, 49),
    ];
    preds
        .iter()
        .map(|&(hi0, hi1, sa_lo, sa_hi)| {
            CountRequest {
                handle: handle.to_string(),
                qi_preds: vec![
                    betalike_query::RangePred {
                        attr: 0,
                        lo: 0,
                        hi: hi0,
                    },
                    betalike_query::RangePred {
                        attr: 1,
                        lo: 0,
                        hi: hi1,
                    },
                ],
                sa_lo,
                sa_hi,
                exact: true,
            }
            .to_json()
            .compact()
        })
        .collect()
}

fn audit_line(handle: &str) -> String {
    Json::Obj(vec![
        ("op".into(), Json::Str("audit".into())),
        ("handle".into(), Json::Str(handle.into())),
    ])
    .compact()
}

#[test]
fn restart_serves_previous_publications_bit_identically() {
    let dir = temp_dir("restart");

    // ---- Process 1: publish every persistable form, record raw answers.
    let server = start(&dir);
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let mut handles = Vec::new();
    for algo in [Algo::Burel, Algo::Perturb, Algo::Anatomy] {
        let reply = client.publish(&census_request(algo)).expect("publish");
        handles.push(reply.handle);
    }
    let mut before = Vec::new();
    for handle in &handles {
        for line in count_lines(handle) {
            before.push(client.call_raw(&line).expect("count"));
        }
        before.push(client.call_raw(&audit_line(handle)).expect("audit"));
    }
    drop(client);
    server.shutdown_and_join();

    // ---- Process 2: same data dir, nothing resident.
    let server = start(&dir);
    let mut client = Client::connect(server.addr()).expect("connect");
    let mut after = Vec::new();
    for handle in &handles {
        for line in count_lines(handle) {
            after.push(client.call_raw(&line).expect("count after restart"));
        }
        after.push(
            client
                .call_raw(&audit_line(handle))
                .expect("audit after restart"),
        );
    }
    assert_eq!(
        before, after,
        "restarted server must serve byte-identical count/audit answers"
    );

    // Zero pipeline recomputation: serving loaded artifacts must not have
    // materialized any dataset (publishing would have), and all three
    // handles must be listed as stored.
    let doc = client
        .call(&Json::Obj(vec![(
            "op".into(),
            Json::Str("datasets".into()),
        )]))
        .expect("datasets");
    let materialized = doc.get("datasets").and_then(Json::as_arr).unwrap();
    assert!(
        materialized.is_empty(),
        "restored artifacts must not touch the registry: {materialized:?}"
    );
    let stored = doc.get("stored").and_then(Json::as_arr).unwrap();
    assert_eq!(stored.len(), 3, "all publications must be stored");

    // A republish of stored parameters is a cache hit served from disk,
    // not a recomputation.
    let reply = client
        .publish(&census_request(Algo::Burel))
        .expect("republish");
    assert!(reply.cached, "stored artifact must satisfy a republish");

    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_stored_artifact_is_quarantined_and_recomputable() {
    let dir = temp_dir("corrupt");

    let server = start(&dir);
    let mut client = Client::connect(server.addr()).expect("connect");
    let handle = client
        .publish(&census_request(Algo::Burel))
        .expect("publish")
        .handle;
    drop(client);
    server.shutdown_and_join();

    // Flip one byte mid-file.
    let path = dir.join("artifacts").join(format!("{handle}.bpub"));
    let mut bytes = std::fs::read(&path).expect("stored artifact exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&path, &bytes).unwrap();

    // Restart: open quarantines the damaged file; the handle is unknown,
    // and a republish recomputes and re-persists it.
    let server = start(&dir);
    let mut client = Client::connect(server.addr()).expect("connect");
    let err = client
        .count(&CountRequest {
            handle: handle.clone(),
            qi_preds: vec![],
            sa_lo: 0,
            sa_hi: 5,
            exact: false,
        })
        .expect_err("quarantined handle must not serve");
    assert!(err.to_string().contains("unknown handle"), "{err}");
    assert!(dir
        .join("quarantine")
        .join(format!("{handle}.bpub"))
        .exists());

    let reply = client
        .publish(&census_request(Algo::Burel))
        .expect("republish");
    assert_eq!(reply.handle, handle);
    assert!(!reply.cached, "recompute after quarantine");
    assert!(path.exists(), "republish must re-persist the artifact");

    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
}

//! # betalike-obs
//!
//! The workspace's observability layer: everything the serving stack uses
//! to *measure itself* without perturbing what it measures.
//!
//! Three pieces, all dependency-free and `std`-only:
//!
//! * [`registry`] — a process-wide metrics [`Registry`] of named
//!   [`Counter`]s, [`Gauge`]s and log-bucketed latency [`Histogram`]s.
//!   Every cell is a plain atomic behind an [`std::sync::Arc`], so a hot
//!   path that holds its handle pays one `fetch_add` per update; the
//!   registry's lock is touched only on registration, on
//!   [`Registry::snapshot`], and inside [`Registry::coherent`] blocks
//!   (multi-metric transitions that a snapshot must never observe
//!   half-applied — the fix for the `health` gauge races, see
//!   `DESIGN.md` §14).
//! * [`clock`] — the [`Clock`] seam. Production code takes time through
//!   `Arc<dyn Clock>`; [`RealClock`] is the **only** type in the
//!   workspace outside `crates/bench` allowed to touch
//!   `std::time::Instant` (betalike-lint rule D2 carves exactly that
//!   file out), and [`ManualClock`] gives tests deterministic time.
//! * [`trace`] / [`log`] — per-request [`Trace`]s with named, nested
//!   [`Span`]s timing each pipeline stage, and a leveled [`Logger`]
//!   writing structured text or JSON lines (the `BETALIKE_LOG`
//!   environment variable and the server's `--log-level` / `--log-json`
//!   flags configure it).
//!
//! The crate renders Prometheus-style text exposition
//! ([`Snapshot::to_prometheus`]) but deliberately knows nothing about the
//! workspace's JSON kernel or wire protocol — the server maps snapshots
//! onto the wire itself, keeping this crate leaf-level and reusable from
//! `crates/store` and `crates/query` without dependency cycles.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod clock;
pub mod log;
pub mod registry;
pub mod trace;

pub use clock::{Clock, ManualClock, RealClock};
pub use log::{Level, LogValue, Logger};
pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot, NUM_BUCKETS};
pub use trace::{Span, SpanRecord, Trace};

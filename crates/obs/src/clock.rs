//! The clock seam: production code reads time through `Arc<dyn Clock>`,
//! so the determinism lint (D2) stays sound — [`RealClock`] below is the
//! single place outside `crates/bench` where `std::time::Instant` may
//! appear (the lint's clock roster names exactly this file), and tests
//! drive spans and slow-query thresholds with a [`ManualClock`] instead
//! of sleeping.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic nanoseconds since an arbitrary process-local epoch.
///
/// Implementations must be cheap (called on every instrumented request)
/// and monotone per instance; nothing in the stack interprets the epoch.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds since this clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The wall clock: monotonic [`Instant`] time against a lazily-pinned
/// process epoch. This is the **only** production user of `Instant` in
/// the workspace (lint rule D2); everything else takes a `dyn Clock`.
#[derive(Debug, Clone, Copy, Default)]
pub struct RealClock;

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        let epoch = *EPOCH.get_or_init(Instant::now);
        // Saturates at u64::MAX after ~584 years of uptime.
        u64::try_from(Instant::now().duration_since(epoch).as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for tests: time moves only when
/// [`ManualClock::advance`] (or [`ManualClock::set`]) says so, making
/// span durations and slow-query thresholds exactly reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    ns: AtomicU64,
}

impl ManualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::SeqCst);
    }

    /// Jumps to an absolute time (tests re-anchoring between phases).
    pub fn set(&self, ns: u64) {
        self.ns.store(ns, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn real_clock_is_monotone() {
        let c = RealClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_command() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.advance(5);
        c.advance(7);
        assert_eq!(c.now_ns(), 12);
        c.set(3);
        assert_eq!(c.now_ns(), 3);
    }

    #[test]
    fn clocks_erase_behind_arcs() {
        let clocks: Vec<Arc<dyn Clock>> = vec![Arc::new(RealClock), Arc::new(ManualClock::new())];
        for c in &clocks {
            let _ = c.now_ns();
        }
    }
}

//! Per-request traces: a request-scoped collector of named, nested spans
//! timing the pipeline stages, tagged with the client's optional
//! `trace_id`.
//!
//! A [`Trace`] is created per request (from the request's `trace_id`
//! field when present, or a server-generated sequence id otherwise); code
//! opens a [`Span`] per stage and the guard's drop closes it. Closed
//! spans carry their start/end times and nesting depth, so the slow-query
//! log can attribute a slow request to the stage that ate it. Time comes
//! from the injected [`Clock`], so tests assert exact durations with a
//! [`crate::ManualClock`].

use crate::clock::Clock;
use std::sync::{Arc, Mutex, MutexGuard};

/// One closed (or still-open) span of a [`Trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"parse"`, `"publish"`, …).
    pub name: String,
    /// Clock reading when the span opened.
    pub start_ns: u64,
    /// Clock reading when the span closed; `None` while open.
    pub end_ns: Option<u64>,
    /// How many spans were open when this one started (0 = top level).
    pub depth: usize,
}

impl SpanRecord {
    /// The span's duration, if closed.
    pub fn duration_ns(&self) -> Option<u64> {
        self.end_ns.map(|end| end.saturating_sub(self.start_ns))
    }
}

#[derive(Debug, Default)]
struct TraceInner {
    spans: Vec<SpanRecord>,
    open: Vec<usize>,
}

/// A request-scoped span collector. Cheap to create; spans cost two clock
/// reads and two short mutex takes each (the mutex is request-private, so
/// it is never contended in practice).
#[derive(Debug)]
pub struct Trace {
    clock: Arc<dyn Clock>,
    id: Option<String>,
    inner: Mutex<TraceInner>,
}

impl Trace {
    /// A fresh trace. `id` is the request's `trace_id` when the client
    /// sent one.
    pub fn new(clock: Arc<dyn Clock>, id: Option<String>) -> Self {
        Trace {
            clock,
            id,
            inner: Mutex::new(TraceInner::default()),
        }
    }

    /// The wire-provided trace id, if any.
    pub fn id(&self) -> Option<&str> {
        self.id.as_deref()
    }

    fn lock(&self) -> MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a named span; dropping the guard closes it. Spans opened
    /// while another is open record one level deeper.
    pub fn span(&self, name: &str) -> Span<'_> {
        let start_ns = self.clock.now_ns();
        let mut inner = self.lock();
        let idx = inner.spans.len();
        let depth = inner.open.len();
        inner.spans.push(SpanRecord {
            name: name.to_string(),
            start_ns,
            end_ns: None,
            depth,
        });
        inner.open.push(idx);
        Span { trace: self, idx }
    }

    /// Every span recorded so far, in open order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.lock().spans.clone()
    }

    /// The closed span named `name`, if any (first match).
    pub fn span_named(&self, name: &str) -> Option<SpanRecord> {
        self.lock()
            .spans
            .iter()
            .find(|s| s.name == name && s.end_ns.is_some())
            .cloned()
    }
}

/// An open span; drop (or [`Span::finish`]) closes it with the current
/// clock reading.
#[derive(Debug)]
pub struct Span<'a> {
    trace: &'a Trace,
    idx: usize,
}

impl Span<'_> {
    /// Closes the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = self.trace.clock.now_ns();
        let mut inner = self.trace.lock();
        if let Some(span) = inner.spans.get_mut(self.idx) {
            span.end_ns = Some(end);
        }
        // Out-of-order drops (guards escaping scopes) still unwind the
        // stack correctly: remove this span wherever it sits.
        inner.open.retain(|&i| i != self.idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn manual_clock_span_nesting() {
        let clock = Arc::new(ManualClock::new());
        let trace = Trace::new(Arc::clone(&clock) as Arc<dyn Clock>, Some("t-1".into()));
        assert_eq!(trace.id(), Some("t-1"));
        {
            let _outer = trace.span("request");
            clock.advance(10);
            {
                let _inner = trace.span("parse");
                clock.advance(5);
            }
            {
                let _inner = trace.span("dispatch");
                clock.advance(20);
            }
            clock.advance(2);
        }
        let spans = trace.spans();
        assert_eq!(
            spans.iter().map(|s| s.name.as_str()).collect::<Vec<_>>(),
            ["request", "parse", "dispatch"]
        );
        assert_eq!(spans[0].depth, 0);
        assert_eq!(spans[1].depth, 1);
        assert_eq!(spans[2].depth, 1);
        assert_eq!(spans[0].duration_ns(), Some(37));
        assert_eq!(spans[1].duration_ns(), Some(5));
        assert_eq!(spans[2].duration_ns(), Some(20));
        assert_eq!(spans[1].start_ns, 10);
        assert_eq!(spans[2].start_ns, 15);
        assert_eq!(trace.span_named("parse"), Some(spans[1].clone()));
        assert_eq!(trace.span_named("missing"), None);
    }

    #[test]
    fn open_spans_report_no_duration() {
        let clock = Arc::new(ManualClock::new());
        let trace = Trace::new(clock as Arc<dyn Clock>, None);
        let guard = trace.span("open");
        assert_eq!(trace.spans()[0].end_ns, None);
        assert_eq!(trace.spans()[0].duration_ns(), None);
        guard.finish();
        assert_eq!(trace.spans()[0].duration_ns(), Some(0));
    }

    #[test]
    fn out_of_order_drops_keep_depths_sane() {
        let clock = Arc::new(ManualClock::new());
        let trace = Trace::new(clock as Arc<dyn Clock>, None);
        let a = trace.span("a");
        let b = trace.span("b");
        drop(a); // drops out of order
        let c = trace.span("c");
        drop(b);
        drop(c);
        let spans = trace.spans();
        assert!(spans.iter().all(|s| s.end_ns.is_some()));
        assert_eq!(spans[2].depth, 1, "b was still open when c started");
    }
}

//! Structured, leveled logging: one line per event, either
//! `ts=… level=… msg=… key=value…` text or a JSON object, written to an
//! injectable sink (stderr in production, a buffer in tests).
//!
//! The level comes from (highest precedence first) the server's
//! `--log-level` flag, the `BETALIKE_LOG` environment variable, and a
//! default of [`Level::Warn`]. Timestamps are monotonic [`Clock`]
//! nanoseconds — not wall-clock time — which keeps the crate inside the
//! determinism lint's rules (no `SystemTime` anywhere) and makes log
//! output reproducible under a [`crate::ManualClock`].

use crate::clock::Clock;
use std::io::Write;
use std::sync::{Arc, Mutex, MutexGuard};

/// Log severity, ordered so `Error < Warn < Info < Debug`: a logger at
/// level L emits events at or below L (and [`Level::Off`] emits nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Emit nothing.
    Off,
    /// Unrecoverable per-request failures (I/O errors, corrupt artifacts).
    Error,
    /// Degraded-but-serving conditions (shed connections, slow queries).
    Warn,
    /// Request-level progress (one line per op).
    Info,
    /// Stage-level detail (span timings).
    Debug,
}

impl Level {
    /// Parses `"off" | "error" | "warn" | "info" | "debug"` (ASCII
    /// case-insensitive); anything else is `None`.
    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" => Some(Level::Off),
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The canonical lowercase name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A field value in a structured log event.
#[derive(Debug, Clone, PartialEq)]
pub enum LogValue {
    /// A string field.
    S(String),
    /// A numeric field (integers pass through losslessly up to 2^53).
    N(f64),
    /// A boolean field.
    B(bool),
}

impl From<&str> for LogValue {
    fn from(v: &str) -> Self {
        LogValue::S(v.to_string())
    }
}
impl From<String> for LogValue {
    fn from(v: String) -> Self {
        LogValue::S(v)
    }
}
impl From<u64> for LogValue {
    fn from(v: u64) -> Self {
        LogValue::N(v as f64)
    }
}
impl From<usize> for LogValue {
    fn from(v: usize) -> Self {
        LogValue::N(v as f64)
    }
}
impl From<i64> for LogValue {
    fn from(v: i64) -> Self {
        LogValue::N(v as f64)
    }
}
impl From<f64> for LogValue {
    fn from(v: f64) -> Self {
        LogValue::N(v)
    }
}
impl From<bool> for LogValue {
    fn from(v: bool) -> Self {
        LogValue::B(v)
    }
}

/// A leveled, structured logger. Cloning is cheap (shared sink); emitting
/// below the configured level costs one branch.
#[derive(Clone)]
pub struct Logger {
    level: Level,
    json: bool,
    clock: Arc<dyn Clock>,
    sink: Arc<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Logger")
            .field("level", &self.level)
            .field("json", &self.json)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl Logger {
    /// A logger writing to stderr.
    pub fn new(level: Level, json: bool, clock: Arc<dyn Clock>) -> Self {
        Logger {
            level,
            json,
            clock,
            sink: Arc::new(Mutex::new(Box::new(std::io::stderr()))),
        }
    }

    /// A logger writing to an arbitrary sink (tests capture output with a
    /// shared `Vec<u8>` wrapper).
    pub fn with_sink(
        level: Level,
        json: bool,
        clock: Arc<dyn Clock>,
        sink: Box<dyn Write + Send>,
    ) -> Self {
        Logger {
            level,
            json,
            clock,
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// The level from the `BETALIKE_LOG` environment variable, or `None`
    /// when unset or unparseable.
    pub fn level_from_env() -> Option<Level> {
        std::env::var("BETALIKE_LOG")
            .ok()
            .and_then(|v| Level::parse(&v))
    }

    /// The configured level.
    pub fn level(&self) -> Level {
        self.level
    }

    /// Whether an event at `level` would be emitted.
    pub fn enabled(&self, level: Level) -> bool {
        level != Level::Off && level <= self.level
    }

    fn sink(&self) -> MutexGuard<'_, Box<dyn Write + Send>> {
        self.sink.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Emits one structured event. Field order is preserved as given.
    pub fn log(&self, level: Level, msg: &str, fields: &[(&str, LogValue)]) {
        if !self.enabled(level) {
            return;
        }
        let ts = self.clock.now_ns();
        let line = if self.json {
            render_json(ts, level, msg, fields)
        } else {
            render_text(ts, level, msg, fields)
        };
        let mut sink = self.sink();
        // A dead sink (closed stderr) must never take the server down.
        let _ = sink.write_all(line.as_bytes());
        let _ = sink.write_all(b"\n");
        let _ = sink.flush();
    }

    /// Emits at [`Level::Error`].
    pub fn error(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Error, msg, fields);
    }

    /// Emits at [`Level::Warn`].
    pub fn warn(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Warn, msg, fields);
    }

    /// Emits at [`Level::Info`].
    pub fn info(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Info, msg, fields);
    }

    /// Emits at [`Level::Debug`].
    pub fn debug(&self, msg: &str, fields: &[(&str, LogValue)]) {
        self.log(Level::Debug, msg, fields);
    }
}

fn render_text(ts: u64, level: Level, msg: &str, fields: &[(&str, LogValue)]) -> String {
    let mut line = format!("ts_ns={} level={} msg={}", ts, level.as_str(), quote(msg));
    for (k, v) in fields {
        line.push(' ');
        line.push_str(k);
        line.push('=');
        match v {
            LogValue::S(s) => line.push_str(&quote(s)),
            LogValue::N(n) => line.push_str(&fmt_num(*n)),
            LogValue::B(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line
}

fn render_json(ts: u64, level: Level, msg: &str, fields: &[(&str, LogValue)]) -> String {
    let mut line = format!(
        "{{\"ts_ns\":{},\"level\":{},\"msg\":{}",
        ts,
        json_str(level.as_str()),
        json_str(msg)
    );
    for (k, v) in fields {
        line.push(',');
        line.push_str(&json_str(k));
        line.push(':');
        match v {
            LogValue::S(s) => line.push_str(&json_str(s)),
            LogValue::N(n) => line.push_str(&fmt_num(*n)),
            LogValue::B(b) => line.push_str(if *b { "true" } else { "false" }),
        }
    }
    line.push('}');
    line
}

/// Integers render without a trailing `.0`; non-finite values (which JSON
/// cannot carry) render as 0.
fn fmt_num(n: f64) -> String {
    if !n.is_finite() {
        "0".to_string()
    } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
        format!("{}", n as i64)
    } else {
        format!("{}", n)
    }
}

/// Text-mode quoting: bare if simple, JSON-style quoted otherwise.
fn quote(s: &str) -> String {
    let simple = !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '/'));
    if simple {
        s.to_string()
    } else {
        json_str(s)
    }
}

/// A JSON string literal with full escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    /// A sink handing its bytes back through a shared buffer.
    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    impl Shared {
        fn text(&self) -> String {
            String::from_utf8_lossy(&self.0.lock().unwrap_or_else(|e| e.into_inner())).to_string()
        }
    }

    fn logger(level: Level, json: bool) -> (Logger, Shared, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let sink = Shared::default();
        let logger = Logger::with_sink(
            level,
            json,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Box::new(sink.clone()),
        );
        (logger, sink, clock)
    }

    #[test]
    fn level_parsing_round_trips() {
        for l in [
            Level::Off,
            Level::Error,
            Level::Warn,
            Level::Info,
            Level::Debug,
        ] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("WARNING"), Some(Level::Warn));
        assert_eq!(Level::parse(" Info "), Some(Level::Info));
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn level_filtering_is_ordered() {
        let (log, sink, _) = logger(Level::Warn, false);
        log.debug("dropped", &[]);
        log.info("dropped", &[]);
        log.warn("kept", &[]);
        log.error("kept", &[]);
        let text = sink.text();
        assert_eq!(text.matches("kept").count(), 2);
        assert!(!text.contains("dropped"));
        assert!(!log.enabled(Level::Off), "Off events never emit");
    }

    #[test]
    fn off_silences_everything() {
        let (log, sink, _) = logger(Level::Off, false);
        log.error("nope", &[]);
        assert_eq!(sink.text(), "");
    }

    #[test]
    fn json_lines_are_parseable_objects() {
        let (log, sink, clock) = logger(Level::Info, true);
        clock.set(42);
        log.info(
            "slow query",
            &[
                ("op", "count".into()),
                ("elapsed_ms", 17u64.into()),
                ("cached", false.into()),
                ("note", "needs \"quotes\"\n".into()),
            ],
        );
        let line = sink.text();
        assert_eq!(
            line.trim_end(),
            "{\"ts_ns\":42,\"level\":\"info\",\"msg\":\"slow query\",\"op\":\"count\",\"elapsed_ms\":17,\"cached\":false,\"note\":\"needs \\\"quotes\\\"\\n\"}"
        );
    }

    #[test]
    fn text_lines_quote_only_when_needed() {
        let (log, sink, clock) = logger(Level::Debug, false);
        clock.set(7);
        log.debug(
            "ready",
            &[("addr", "127.0.0.1:9000".into()), ("msg two", "a b".into())],
        );
        assert_eq!(
            sink.text().trim_end(),
            "ts_ns=7 level=debug msg=ready addr=127.0.0.1:9000 msg two=\"a b\""
        );
    }

    #[test]
    fn numbers_render_cleanly() {
        assert_eq!(fmt_num(17.0), "17");
        assert_eq!(fmt_num(0.5), "0.5");
        assert_eq!(fmt_num(f64::NAN), "0");
        assert_eq!(fmt_num(f64::INFINITY), "0");
    }
}

//! The metrics registry: named counters, gauges and log-bucketed
//! histograms behind atomics, with coherent snapshots.
//!
//! # Cost model
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s handed out
//! by [`Registry::counter`] / [`Registry::gauge`] /
//! [`Registry::histogram`]; callers register once (startup) and update
//! lock-free forever after — one `fetch_add` per counter bump, two plus a
//! branch-free bucket index per histogram record. The registry mutex is
//! taken only to register, to [`Registry::snapshot`], and inside
//! [`Registry::coherent`] blocks.
//!
//! # Bucket scheme
//!
//! Histograms are log-linear over `u64` values (the serving stack records
//! nanoseconds): values below 16 get one exact bucket each; every octave
//! `[2^k, 2^{k+1})` above that is split into 16 equal sub-buckets. That is
//! [`NUM_BUCKETS`] = 976 fixed buckets (constant memory per histogram,
//! ~7.6 KiB), and a quantile read back from a bucket's lower bound `r`
//! satisfies `r <= exact_sample_quantile <= r + r/16` — a relative error
//! bound of 1/16 that the property tests assert against exact sorted
//! samples. Merging is per-bucket addition, so it is associative and
//! commutative bucket-exactly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of histogram buckets: 16 exact unit buckets, then 60 octaves
/// (`2^4` through `2^63`) of 16 sub-buckets each.
pub const NUM_BUCKETS: usize = 16 + 60 * 16;

/// A monotone event counter. One `fetch_add` per increment.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero, detached from any registry (library code
    /// that *may* be instrumented holds one of these by default; the
    /// server swaps in registry-backed handles at startup).
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, sizes, 0/1 states).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero, detached from any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (negative to decrement).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The bucket a value lands in. Total over all of `u64`; monotone.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        // Highest set bit is at position `top >= 4`; the next four bits
        // select the sub-bucket within the octave.
        let top = 63 - v.leading_zeros() as u64;
        let sub = ((v >> (top - 4)) & 15) as usize;
        (top as usize - 3) * 16 + sub
    }
}

/// The inclusive lower bound of bucket `i` — the representative value
/// quantile extraction reports.
pub(crate) fn bucket_lower(i: usize) -> u64 {
    if i < 16 {
        i as u64
    } else {
        let top = (i / 16 + 3) as u32;
        let sub = (i % 16) as u64;
        (16 + sub) << (top - 4)
    }
}

/// A log-bucketed histogram of `u64` values (the stack records latencies
/// in nanoseconds). Constant memory, lock-free recording, mergeable
/// snapshots, quantiles within a 1/16 relative error of the exact sorted
/// sample (see the [module docs](self) for the scheme).
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// A fresh, empty histogram detached from any registry.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one value: a bucket `fetch_add` plus the count/sum cells.
    pub fn record(&self, v: u64) {
        // `bucket_index` is total over u64, so this never indexes out of
        // range; `get` keeps the non-panicking contract for P1 callers.
        if let Some(bucket) = self.buckets.get(bucket_index(v)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets (concurrent recorders may land
    /// between cell reads; each cell itself is atomic).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A plain-data copy of a [`Histogram`]: quantile extraction and merging
/// happen here, off the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (wrapping beyond `u64::MAX`).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the lower bound `r` of the
    /// bucket holding the exact rank-`ceil(q·count)` sample, so
    /// `r <= exact <= r + r/16`. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_lower(i);
            }
        }
        bucket_lower(NUM_BUCKETS - 1)
    }

    /// Median, 99th and 99.9th percentiles — the trio the serving stack
    /// reports everywhere.
    pub fn p50_p99_p999(&self) -> (u64, u64, u64) {
        (
            self.quantile(0.50),
            self.quantile(0.99),
            self.quantile(0.999),
        )
    }

    /// Adds `other` into `self`, bucket by bucket. Per-bucket addition is
    /// associative and commutative, so merge order never changes any
    /// quantile (the property tests pin this).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// [`HistogramSnapshot::merge`] by value.
    #[must_use]
    pub fn merged(mut self, other: &HistogramSnapshot) -> HistogramSnapshot {
        self.merge(other);
        self
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide metrics registry. See the [module docs](self) for the
/// cost model; one instance lives in the server's shared state.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, registering it at zero on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.lock()
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, registering it at zero on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.lock()
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Runs `f` under the snapshot lock, so a *group* of metric updates
    /// becomes atomic with respect to [`Registry::snapshot`]: a snapshot
    /// can never observe some of the group's updates without the rest.
    /// This is how logically-linked gauges (queue depth and shed count,
    /// say) stay mutually consistent in `health` reports.
    ///
    /// `f` must not call back into this registry (the lock is not
    /// reentrant); update pre-registered handles only.
    pub fn coherent<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.lock();
        f()
    }

    /// One coherent picture of every registered metric, taken under the
    /// same lock [`Registry::coherent`] blocks hold — so transitions made
    /// inside those blocks are observed entirely or not at all.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A coherent point-in-time copy of a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// `(name, value)` per counter, ascending by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, ascending by name.
    pub gauges: Vec<(String, i64)>,
    /// `(name, snapshot)` per histogram, ascending by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// The counter named `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// The gauge named `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// The histogram named `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Prometheus-style text exposition: counters and gauges as single
    /// samples, histograms as summaries with `quantile` labels plus
    /// `_sum` / `_count` rows. Metric names are prefixed `betalike_` and
    /// sanitized (`.` and `-` become `_`).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
        for (name, v) in &self.gauges {
            let name = prom_name(name);
            out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
        }
        for (name, h) in &self.histograms {
            let name = prom_name(name);
            let (p50, p99, p999) = h.p50_p99_p999();
            out.push_str(&format!(
                "# TYPE {name} summary\n\
                 {name}{{quantile=\"0.5\"}} {p50}\n\
                 {name}{{quantile=\"0.99\"}} {p99}\n\
                 {name}{{quantile=\"0.999\"}} {p999}\n\
                 {name}_sum {}\n\
                 {name}_count {}\n",
                h.sum(),
                h.count()
            ));
        }
        out
    }
}

fn prom_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 9);
    out.push_str("betalike_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_total() {
        let mut last = 0usize;
        for v in 0u64..5_000 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            assert!(bucket_lower(i) <= v, "lower bound exceeds {v}");
            last = i;
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i, "lower({i}) round-trip");
        }
    }

    #[test]
    fn quantiles_match_exact_small_values() {
        let h = Histogram::new();
        for v in 0..16u64 {
            for _ in 0..=v {
                h.record(v);
            }
        }
        let snap = h.snapshot();
        // Values below 16 have exact buckets: quantiles equal the exact
        // sorted-sample statistic precisely.
        let mut sorted = Vec::new();
        for v in 0..16u64 {
            for _ in 0..=v {
                sorted.push(v);
            }
        }
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(snap.quantile(q), sorted[rank - 1], "q={q}");
        }
    }

    #[test]
    fn quantile_error_bound_holds() {
        let h = Histogram::new();
        let mut sorted = Vec::new();
        let mut x = 3u64;
        for _ in 0..4_000 {
            // Cheap deterministic spread over several octaves.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = x >> (x % 50);
            h.record(v);
            sorted.push(v);
        }
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.01, 0.25, 0.5, 0.9, 0.99, 0.999] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let r = snap.quantile(q);
            assert!(r <= exact, "q={q}: {r} > exact {exact}");
            assert!(
                exact <= r + r / 16,
                "q={q}: exact {exact} above bound of {r}"
            );
        }
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let parts: Vec<HistogramSnapshot> = (0..3)
            .map(|k| {
                let h = Histogram::new();
                for i in 0..200u64 {
                    h.record(i * (k + 1) * 37 % 10_000);
                }
                h.snapshot()
            })
            .collect();
        let abc = parts[0].clone().merged(&parts[1]).merged(&parts[2]);
        let bc_a = parts[1].clone().merged(&parts[2]).merged(&parts[0]);
        let cab = parts[2].clone().merged(&parts[0]).merged(&parts[1]);
        assert_eq!(abc, bc_a);
        assert_eq!(abc, cab);
        assert_eq!(abc.count(), 600);
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("x").get(), 3);
        reg.gauge("g").set(-5);
        reg.histogram("h").record(100);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("x"), Some(3));
        assert_eq!(snap.gauge("g"), Some(-5));
        assert_eq!(snap.histogram("h").map(HistogramSnapshot::count), Some(1));
        assert_eq!(snap.counter("missing"), None);
    }

    /// The health-coherence pin (ISSUE 9 bugfix): two gauges updated as a
    /// pair inside `coherent` blocks must never be observed mid-
    /// transition by `snapshot`, no matter how the threads interleave.
    #[test]
    fn coherent_updates_are_never_observed_half_applied() {
        let reg = Arc::new(Registry::new());
        let a = reg.gauge("pair.a");
        let b = reg.gauge("pair.b");
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let writer = {
                let (reg, stop) = (Arc::clone(&reg), Arc::clone(&stop));
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    while !stop.load(Ordering::SeqCst) {
                        // Invariant: a + b == 0 at every snapshot.
                        reg.coherent(|| {
                            a.add(1);
                            b.add(-1);
                        });
                    }
                })
            };
            for _ in 0..2_000 {
                let snap = reg.snapshot();
                let (a, b) = (
                    snap.gauge("pair.a").unwrap_or(0),
                    snap.gauge("pair.b").unwrap_or(0),
                );
                assert_eq!(a + b, 0, "snapshot saw a half-applied transition");
            }
            stop.store(true, Ordering::SeqCst);
            let _ = writer.join();
        });
    }

    #[test]
    fn prometheus_exposition_shape() {
        let reg = Registry::new();
        reg.counter("op.count.requests").add(7);
        reg.gauge("server.queue_depth").set(2);
        let h = reg.histogram("op.count.latency_ns");
        for v in [10, 20, 30] {
            h.record(v);
        }
        let text = reg.snapshot().to_prometheus();
        assert!(text.contains("# TYPE betalike_op_count_requests counter"));
        assert!(text.contains("betalike_op_count_requests 7"));
        assert!(text.contains("betalike_server_queue_depth 2"));
        assert!(text.contains("betalike_op_count_latency_ns{quantile=\"0.5\"} 20"));
        assert!(text.contains("betalike_op_count_latency_ns_count 3"));
        assert!(text.contains("betalike_op_count_latency_ns_sum 60"));
    }
}

//! The histogram's accuracy contract, as properties: for arbitrary
//! samples, every reported quantile sits within the documented bucket
//! error bound of the exact sorted-sample quantile, and merging is
//! associative and commutative (so per-thread or per-client histograms
//! can be combined in any order without changing any quantile).

use betalike_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// The exact rank-th quantile the histogram approximates: with the same
/// rank rule the snapshot uses (`rank = ceil(q * count)`, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let count = sorted.len() as u64;
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    sorted[(rank - 1) as usize]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every quantile in a sweep, the histogram's answer `r` brackets
    /// the exact answer: `r <= exact <= r + r/16` (exact below 16, one
    /// sub-octave of relative error above). This is the bound DESIGN.md
    /// §14 advertises.
    #[test]
    fn quantiles_sit_within_one_sub_octave_of_exact(
        values in proptest::collection::vec(0u64..u64::MAX / 2, 1..300),
    ) {
        let snap = snapshot_of(&values);
        let mut values = values;
        values.sort_unstable();
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = exact_quantile(&values, q);
            let approx = snap.quantile(q);
            prop_assert!(
                approx <= exact && exact <= approx + approx / 16,
                "q={q}: approx {approx} must bracket exact {exact}"
            );
        }
    }

    /// Merge is associative and commutative, and merging never changes
    /// what a combined population would have reported: (a ∪ b) ∪ c and
    /// a ∪ (b ∪ c) and one histogram fed all three sample sets are the
    /// same snapshot.
    #[test]
    fn merge_is_associative_commutative_and_lossless(
        a in proptest::collection::vec(0u64..1 << 40, 0..120),
        b in proptest::collection::vec(0u64..1 << 40, 0..120),
        c in proptest::collection::vec(0u64..1 << 40, 0..120),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let left = sa.clone().merged(&sb).merged(&sc);
        let right = sa.clone().merged(&sb.clone().merged(&sc));
        let swapped = sc.clone().merged(&sa).merged(&sb);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(&left, &swapped);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
        prop_assert_eq!(left.count(), (a.len() + b.len() + c.len()) as u64);
    }
}

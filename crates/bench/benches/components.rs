//! Component-level benches and the ablations DESIGN.md §6 calls out:
//!
//! * `dp_vs_trivial` — DP bucketization vs one-value-per-bucket;
//! * `retrieve_hilbert_vs_arbitrary` — what Hilbert locality buys/costs;
//! * `seed_first_alive_vs_random` — the EC-seed policy;
//! * `pm_inverse` — Sherman–Morrison vs LU reconstruction;
//! * plus throughput benches for the Hilbert transform, the ECTree, the
//!   auditors and the Naïve-Bayes attack.

use betalike::bucketize::{dp_partition, trivial_partition};
use betalike::ectree::{bi_split, BetaEligibility};
use betalike::model::BetaLikeness;
use betalike::perturb::PerturbationPlan;
use betalike::retrieve::{hilbert_keys, FillStrategy, SeedChoice};
use betalike::{burel, BurelConfig};
use betalike_attacks::naive_bayes::naive_bayes_attack;
use betalike_bench::algos::METRIC;
use betalike_bench::SA;
use betalike_hilbert::HilbertCurve;
use betalike_metrics::audit::audit_partition;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::SaDistribution;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

const ROWS: usize = 10_000;
const QI: [usize; 3] = [0, 1, 2];

fn census_table() -> betalike_microdata::Table {
    census::generate(&CensusConfig::new(ROWS, 42))
}

fn bench_bucketize(c: &mut Criterion) {
    let table = census_table();
    let dist = table.sa_distribution(SA);
    let model = BetaLikeness::new(4.0).unwrap();
    let mut g = c.benchmark_group("bucketize");
    g.bench_function("dp_partition_m50", |b| {
        b.iter(|| dp_partition(black_box(&dist), &model, 0.25))
    });
    g.bench_function("trivial_partition_m50", |b| {
        b.iter(|| trivial_partition(black_box(&dist), &model))
    });
    g.finish();
}

fn bench_ectree(c: &mut Criterion) {
    let table = census_table();
    let dist = table.sa_distribution(SA);
    let model = BetaLikeness::new(4.0).unwrap();
    let buckets = dp_partition(&dist, &model, 0.25);
    let sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
    let elig = BetaEligibility::from_buckets(&buckets);
    c.bench_function("ectree_bi_split_10k", |b| {
        b.iter(|| bi_split(black_box(&sizes), &elig).unwrap())
    });
}

fn bench_hilbert(c: &mut Criterion) {
    let table = census_table();
    let mut g = c.benchmark_group("hilbert");
    g.bench_function("keys_10k_rows_3d", |b| {
        b.iter(|| hilbert_keys(black_box(&table), &QI))
    });
    let curve = HilbertCurve::new(5, 7).unwrap();
    g.bench_function("index_roundtrip_5d", |b| {
        b.iter(|| {
            let h = curve.index(black_box(&[13, 1, 9, 4, 7]));
            curve.point(black_box(h))
        })
    });
    g.finish();
}

/// The tentpole win tracked next to the ablations: `hilbert_keys` serial
/// vs parallel on the same input (identical output is asserted once; the
/// thread-count-invariance tests pin it exhaustively).
fn bench_hilbert_keys_serial_vs_parallel(c: &mut Criterion) {
    let table = census_table();
    let parallel_threads = std::thread::available_parallelism().map_or(4, |n| n.get().max(4));
    mini_rayon::set_threads(1);
    let serial = hilbert_keys(&table, &QI);
    mini_rayon::set_threads(parallel_threads);
    assert_eq!(serial, hilbert_keys(&table, &QI));
    let mut g = c.benchmark_group("hilbert_keys_threads");
    for threads in [1, parallel_threads] {
        mini_rayon::set_threads(threads);
        g.bench_function(format!("keys_10k_rows_3d_t{threads}"), |b| {
            b.iter(|| hilbert_keys(black_box(&table), &QI))
        });
    }
    mini_rayon::set_threads(0);
    g.finish();
}

/// Ablation: materialization strategies (utility is asserted in tests;
/// here we track cost).
fn bench_retrieve_ablation(c: &mut Criterion) {
    let table = census_table();
    let mut g = c.benchmark_group("retrieve_ablation");
    g.sample_size(10);
    for (name, strategy, seed_choice) in [
        (
            "hilbert_random_seed",
            FillStrategy::HilbertNearest,
            SeedChoice::Random,
        ),
        (
            "hilbert_sweep_seed",
            FillStrategy::HilbertNearest,
            SeedChoice::FirstAlive,
        ),
        ("arbitrary", FillStrategy::Arbitrary, SeedChoice::Random),
    ] {
        let mut cfg = BurelConfig::new(4.0);
        cfg.strategy = strategy;
        cfg.seed_choice = seed_choice;
        g.bench_function(name, |b| {
            b.iter(|| burel(black_box(&table), &QI, SA, &cfg).unwrap())
        });
    }
    g.finish();
}

/// Ablation: PM reconstruction paths (m = 50).
fn bench_pm_inverse(c: &mut Criterion) {
    let table = census_table();
    let dist = table.sa_distribution(SA);
    let model = BetaLikeness::new(4.0).unwrap();
    let plan = PerturbationPlan::new(&dist, &model).unwrap();
    let observed: Vec<f64> = (0..plan.m()).map(|i| 100.0 + i as f64).collect();
    let mut g = c.benchmark_group("pm_inverse");
    g.bench_function("sherman_morrison_m50", |b| {
        b.iter(|| {
            plan.reconstruct_sherman_morrison(black_box(&observed))
                .unwrap()
        })
    });
    g.bench_function("lu_m50", |b| {
        b.iter(|| plan.reconstruct_lu(black_box(&observed)).unwrap())
    });
    g.finish();
}

fn bench_audit_and_attack(c: &mut Criterion) {
    let table = census_table();
    let partition = burel(&table, &QI, SA, &BurelConfig::new(4.0)).unwrap();
    let mut g = c.benchmark_group("audit_attack");
    g.sample_size(10);
    g.bench_function("audit_partition", |b| {
        b.iter(|| audit_partition(black_box(&table), &partition, METRIC))
    });
    g.bench_function("naive_bayes_attack", |b| {
        b.iter(|| naive_bayes_attack(black_box(&table), &partition))
    });
    g.finish();
}

fn bench_apportion(c: &mut Criterion) {
    let weights: Vec<f64> = (0..50)
        .map(|i| 1.0 + (i as f64 * 0.37).sin().abs())
        .collect();
    c.bench_function("largest_remainder_apportion_50", |b| {
        b.iter(|| {
            betalike_microdata::distribution::largest_remainder_apportion(
                black_box(500_000),
                black_box(&weights),
            )
        })
    });
    // Keep SaDistribution used so the import is exercised under all cfgs.
    let d = SaDistribution::from_counts(vec![1, 2, 3]);
    black_box(d.entropy());
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = components;
    config = config();
    targets =
        bench_bucketize,
        bench_ectree,
        bench_hilbert,
        bench_hilbert_keys_serial_vs_parallel,
        bench_retrieve_ablation,
        bench_pm_inverse,
        bench_audit_and_attack,
        bench_apportion
}
criterion_main!(components);

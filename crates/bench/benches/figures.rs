//! Criterion benches mirroring the paper's tables and figures at
//! micro-benchmark scale (one group per figure family).
//!
//! These complement the full-scale experiment binaries in `src/bin/`: the
//! binaries regenerate the paper's *numbers*; these benches track the
//! *runtime* of each pipeline so performance regressions are caught by
//! `cargo bench --workspace`. Dataset sizes are deliberately small to keep
//! the suite fast.

use betalike::model::BetaLikeness;
use betalike::perturb::perturb;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_bench::algos::{
    run_burel, run_dmondrian, run_lmondrian, run_sabre, run_tmondrian, METRIC,
};
use betalike_bench::SA;
use betalike_metrics::audit::achieved_closeness;
use betalike_microdata::census::{self, CensusConfig};
use betalike_query::{
    estimate_anatomy, estimate_perturbed, exact_count, generate_workload, GeneralizedView,
    WorkloadConfig,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const ROWS: usize = 10_000;
const QI: [usize; 3] = [0, 1, 2];

fn census_table() -> betalike_microdata::Table {
    census::generate(&CensusConfig::new(ROWS, 42))
}

/// Figure 4 family: the three closeness-calibrated anonymizers.
fn bench_fig4_closeness(c: &mut Criterion) {
    let table = census_table();
    let mut g = c.benchmark_group("fig4_closeness");
    g.sample_size(10);
    g.bench_function("burel_beta4", |b| {
        b.iter(|| run_burel(black_box(&table), &QI, SA, 4.0, 1).unwrap())
    });
    let p = run_burel(&table, &QI, SA, 4.0, 1).unwrap();
    let (t_beta, _) = achieved_closeness(&table, &p, METRIC);
    g.bench_function("tmondrian_at_t_beta", |b| {
        b.iter(|| run_tmondrian(black_box(&table), &QI, SA, t_beta).unwrap())
    });
    g.bench_function("sabre_at_t_beta", |b| {
        b.iter(|| run_sabre(black_box(&table), &QI, SA, t_beta, 1).unwrap())
    });
    g.finish();
}

/// Figure 5 family: the β-likeness generalizers across β.
fn bench_fig5_generalization(c: &mut Criterion) {
    let table = census_table();
    let mut g = c.benchmark_group("fig5_generalization");
    g.sample_size(10);
    for beta in [2.0, 4.0] {
        g.bench_with_input(BenchmarkId::new("burel", beta), &beta, |b, &beta| {
            b.iter(|| run_burel(black_box(&table), &QI, SA, beta, 1).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lmondrian", beta), &beta, |b, &beta| {
            b.iter(|| run_lmondrian(black_box(&table), &QI, SA, beta).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("dmondrian", beta), &beta, |b, &beta| {
            b.iter(|| run_dmondrian(black_box(&table), &QI, SA, beta).unwrap())
        });
    }
    g.finish();
}

/// Figures 6–7 family: BUREL across QI dimensionality and dataset size.
fn bench_fig6_fig7_scaling(c: &mut Criterion) {
    let table = census_table();
    let mut g = c.benchmark_group("fig6_fig7_scaling");
    g.sample_size(10);
    for qi_size in [1usize, 3, 5] {
        let qi: Vec<usize> = (0..qi_size).collect();
        g.bench_with_input(BenchmarkId::new("burel_qi", qi_size), &qi, |b, qi| {
            b.iter(|| run_burel(black_box(&table), qi, SA, 4.0, 1).unwrap())
        });
    }
    for rows in [5_000usize, 10_000] {
        let prefix = table.prefix(rows);
        g.bench_with_input(BenchmarkId::new("burel_rows", rows), &prefix, |b, t| {
            b.iter(|| run_burel(black_box(t), &QI, SA, 4.0, 1).unwrap())
        });
    }
    g.finish();
}

/// Figure 8 family: query estimation over a generalized publication.
fn bench_fig8_queries(c: &mut Criterion) {
    let table = census_table();
    let partition = run_burel(&table, &QI, SA, 4.0, 1).unwrap();
    let view = GeneralizedView::new(&table, &partition);
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: QI.to_vec(),
            sa: SA,
            lambda: 2,
            theta: 0.1,
            num_queries: 100,
            seed: 3,
        },
    );
    let mut g = c.benchmark_group("fig8_queries");
    g.bench_function("generalized_estimate_100q", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|q| view.estimate(black_box(q)))
                .sum::<f64>()
        })
    });
    g.bench_function("exact_count_100q", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|q| exact_count(black_box(&table), q))
                .sum::<u64>()
        })
    });
    g.finish();
}

/// Figure 9 family: the perturbation pipeline and its estimators.
fn bench_fig9_perturbation(c: &mut Criterion) {
    let table = census_table();
    let model = BetaLikeness::new(4.0).unwrap();
    let mut g = c.benchmark_group("fig9_perturbation");
    g.sample_size(10);
    g.bench_function("perturb_table", |b| {
        b.iter(|| perturb(black_box(&table), SA, &model, 1).unwrap())
    });
    let published = perturb(&table, SA, &model, 1).unwrap();
    let baseline = AnatomyBaseline::publish(&table, SA);
    let workload = generate_workload(
        &table,
        &WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: SA,
            lambda: 3,
            theta: 0.1,
            num_queries: 50,
            seed: 4,
        },
    );
    g.bench_function("perturbed_estimate_50q", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|q| estimate_perturbed(black_box(&published), q).unwrap())
                .sum::<f64>()
        })
    });
    g.bench_function("anatomy_estimate_50q", |b| {
        b.iter(|| {
            workload
                .iter()
                .map(|q| estimate_anatomy(black_box(&baseline), &table, q))
                .sum::<f64>()
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(500))
}

criterion_group! {
    name = figures;
    config = config();
    targets =
        bench_fig4_closeness,
        bench_fig5_generalization,
        bench_fig6_fig7_scaling,
        bench_fig8_queries,
        bench_fig9_perturbation
}
criterion_main!(figures);

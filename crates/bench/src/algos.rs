//! One-call wrappers for every algorithm the experiments compare, so the
//! figure binaries and the Criterion benches share identical
//! configurations.

use betalike::error::Result;
use betalike::model::{BetaLikeness, BoundKind};
use betalike::{burel, BurelConfig};
use betalike_baselines::constraints::{
    delta_for_beta, DeltaDisclosureConstraint, LikenessConstraint, TClosenessConstraint,
};
use betalike_baselines::mondrian::{mondrian, MondrianConfig};
use betalike_baselines::sabre::{sabre, SabreConfig};
use betalike_metrics::audit::ClosenessMetric;
use betalike_metrics::Partition;
use betalike_microdata::Table;

/// The closeness metric every experiment uses (equal-distance EMD, which
/// upper-bounds the ordered variant).
pub const METRIC: ClosenessMetric = ClosenessMetric::EqualDistance;

/// BUREL at the paper's defaults (enhanced bound).
pub fn run_burel(
    table: &Table,
    qi: &[usize],
    sa: usize,
    beta: f64,
    seed: u64,
) -> Result<Partition> {
    burel(table, qi, sa, &BurelConfig::new(beta).with_seed(seed))
}

/// LMondrian: Mondrian splitting only while both halves satisfy
/// β-likeness.
pub fn run_lmondrian(table: &Table, qi: &[usize], sa: usize, beta: f64) -> Result<Partition> {
    let model = BetaLikeness::with_bound(beta, BoundKind::Enhanced)?;
    let c = LikenessConstraint::new(table, sa, model);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// DMondrian: Mondrian under δ-disclosure-privacy with
/// `δ = ln(1 + min{β, −ln max p})` so its output also satisfies
/// β-likeness (Section 6.2 of the paper).
pub fn run_dmondrian(table: &Table, qi: &[usize], sa: usize, beta: f64) -> Result<Partition> {
    let dist = table.sa_distribution(sa);
    let delta = delta_for_beta(beta, &dist);
    let c = DeltaDisclosureConstraint::new(table, sa, delta);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// tMondrian: Mondrian under t-closeness (equal-distance EMD).
pub fn run_tmondrian(table: &Table, qi: &[usize], sa: usize, t: f64) -> Result<Partition> {
    let c = TClosenessConstraint::new(table, sa, t, METRIC);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// SABRE at its defaults.
pub fn run_sabre(table: &Table, qi: &[usize], sa: usize, t: f64, seed: u64) -> Result<Partition> {
    sabre(table, qi, sa, &SabreConfig::new(t).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_metrics::audit::{achieved_beta, achieved_closeness};
    use betalike_microdata::census::{self, CensusConfig};

    #[test]
    fn all_wrappers_run_and_guarantee_their_models() {
        let t = census::generate(&CensusConfig::new(3_000, 77));
        let qi = [0usize, 1, 2];
        let beta = 3.0;

        let b = run_burel(&t, &qi, 5, beta, 1).unwrap();
        assert!(achieved_beta(&t, &b) <= beta + 1e-9);

        let l = run_lmondrian(&t, &qi, 5, beta).unwrap();
        assert!(achieved_beta(&t, &l) <= beta + 1e-9);

        let d = run_dmondrian(&t, &qi, 5, beta).unwrap();
        assert!(achieved_beta(&t, &d) <= beta + 1e-9);

        let tm = run_tmondrian(&t, &qi, 5, 0.2).unwrap();
        let (max_t, _) = achieved_closeness(&t, &tm, METRIC);
        assert!(max_t <= 0.2 + 1e-9);

        let s = run_sabre(&t, &qi, 5, 0.2, 1).unwrap();
        let (max_t, _) = achieved_closeness(&t, &s, METRIC);
        assert!(max_t <= 0.2 + 1e-9);
    }
}

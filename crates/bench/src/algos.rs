//! One-call wrappers for every algorithm the experiments compare, so the
//! figure binaries and the Criterion benches share identical
//! configurations.

use betalike::error::Result;
use betalike::model::{BetaLikeness, BoundKind};
use betalike::retrieve::hilbert_keys;
use betalike::{burel, burel_with_keys, BurelConfig};
use betalike_baselines::constraints::{
    delta_for_beta, DeltaDisclosureConstraint, LikenessConstraint, TClosenessConstraint,
};
use betalike_baselines::mondrian::{mondrian, MondrianConfig};
use betalike_baselines::sabre::{sabre, sabre_with_keys, SabreConfig};
use betalike_metrics::audit::ClosenessMetric;
use betalike_metrics::Partition;
use betalike_microdata::Table;

/// The closeness metric every experiment uses (equal-distance EMD, which
/// upper-bounds the ordered variant).
pub const METRIC: ClosenessMetric = ClosenessMetric::EqualDistance;

/// Evaluates every grid cell of an experiment sweep across the
/// [`mini_rayon`] pool, preserving cell order.
///
/// This is the one-liner the figure binaries use for their (β, seed, t, …)
/// grids: each cell is an independent anonymize-and-measure run, so the
/// sweep parallelizes without changing any cell's result (the algorithms
/// themselves are thread-count invariant, and nested parallel calls inside
/// a cell run inline). Do **not** use it for sweeps that report per-cell
/// wall-clock times (fig5–fig7): concurrent cells contend for cores and
/// would distort each other's timings.
pub fn run_grid<P, R, F>(params: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    mini_rayon::par_map(params, f)
}

/// One table's QI geometry, shared across algorithms.
///
/// BUREL and SABRE both materialize over the same per-row Hilbert keys;
/// before this cache every comparison run recomputed them per invocation
/// (the binary searches of fig4 pay dozens of invocations per cell). The
/// cache computes the keys once per `(table, qi)` pair.
#[derive(Debug)]
pub struct QiGeometry<'a> {
    table: &'a Table,
    qi: Vec<usize>,
    keys: Vec<u128>,
}

impl<'a> QiGeometry<'a> {
    /// Computes the Hilbert keys of `table` over `qi` once.
    pub fn new(table: &'a Table, qi: &[usize]) -> Self {
        QiGeometry {
            table,
            qi: qi.to_vec(),
            keys: hilbert_keys(table, qi),
        }
    }

    /// The cached per-row Hilbert keys.
    pub fn keys(&self) -> &[u128] {
        &self.keys
    }

    /// BUREL at the paper's defaults, reusing the cached keys.
    ///
    /// # Errors
    ///
    /// As [`burel()`].
    pub fn burel(&self, sa: usize, beta: f64, seed: u64) -> Result<Partition> {
        burel_with_keys(
            self.table,
            &self.qi,
            sa,
            &BurelConfig::new(beta).with_seed(seed),
            &self.keys,
        )
    }

    /// SABRE at its defaults, reusing the cached keys.
    ///
    /// # Errors
    ///
    /// As [`sabre`].
    pub fn sabre(&self, sa: usize, t: f64, seed: u64) -> Result<Partition> {
        sabre_with_keys(
            self.table,
            &self.qi,
            sa,
            &SabreConfig::new(t).with_seed(seed),
            &self.keys,
        )
    }
}

/// BUREL at the paper's defaults (enhanced bound).
pub fn run_burel(
    table: &Table,
    qi: &[usize],
    sa: usize,
    beta: f64,
    seed: u64,
) -> Result<Partition> {
    burel(table, qi, sa, &BurelConfig::new(beta).with_seed(seed))
}

/// LMondrian: Mondrian splitting only while both halves satisfy
/// β-likeness.
pub fn run_lmondrian(table: &Table, qi: &[usize], sa: usize, beta: f64) -> Result<Partition> {
    let model = BetaLikeness::with_bound(beta, BoundKind::Enhanced)?;
    let c = LikenessConstraint::new(table, sa, model);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// DMondrian: Mondrian under δ-disclosure-privacy with
/// `δ = ln(1 + min{β, −ln max p})` so its output also satisfies
/// β-likeness (Section 6.2 of the paper).
pub fn run_dmondrian(table: &Table, qi: &[usize], sa: usize, beta: f64) -> Result<Partition> {
    let dist = table.sa_distribution(sa);
    let delta = delta_for_beta(beta, &dist);
    let c = DeltaDisclosureConstraint::new(table, sa, delta);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// tMondrian: Mondrian under t-closeness (equal-distance EMD).
pub fn run_tmondrian(table: &Table, qi: &[usize], sa: usize, t: f64) -> Result<Partition> {
    let c = TClosenessConstraint::new(table, sa, t, METRIC);
    mondrian(table, qi, sa, &c, &MondrianConfig::default())
}

/// SABRE at its defaults.
pub fn run_sabre(table: &Table, qi: &[usize], sa: usize, t: f64, seed: u64) -> Result<Partition> {
    sabre(table, qi, sa, &SabreConfig::new(t).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_metrics::audit::{achieved_beta, achieved_closeness};
    use betalike_microdata::census::{self, CensusConfig};

    #[test]
    fn all_wrappers_run_and_guarantee_their_models() {
        let t = census::generate(&CensusConfig::new(3_000, 77));
        let qi = [0usize, 1, 2];
        let beta = 3.0;

        let b = run_burel(&t, &qi, 5, beta, 1).unwrap();
        assert!(achieved_beta(&t, &b) <= beta + 1e-9);

        let l = run_lmondrian(&t, &qi, 5, beta).unwrap();
        assert!(achieved_beta(&t, &l) <= beta + 1e-9);

        let d = run_dmondrian(&t, &qi, 5, beta).unwrap();
        assert!(achieved_beta(&t, &d) <= beta + 1e-9);

        let tm = run_tmondrian(&t, &qi, 5, 0.2).unwrap();
        let (max_t, _) = achieved_closeness(&t, &tm, METRIC);
        assert!(max_t <= 0.2 + 1e-9);

        let s = run_sabre(&t, &qi, 5, 0.2, 1).unwrap();
        let (max_t, _) = achieved_closeness(&t, &s, METRIC);
        assert!(max_t <= 0.2 + 1e-9);
    }

    #[test]
    fn qi_geometry_matches_direct_runs() {
        let t = census::generate(&CensusConfig::new(2_000, 13));
        let qi = [0usize, 1];
        let geo = QiGeometry::new(&t, &qi);
        assert_eq!(geo.keys().len(), t.num_rows());
        let b_direct = run_burel(&t, &qi, 5, 3.0, 7).unwrap();
        let b_cached = geo.burel(5, 3.0, 7).unwrap();
        assert_eq!(b_direct.ecs(), b_cached.ecs());
        let s_direct = run_sabre(&t, &qi, 5, 0.2, 7).unwrap();
        let s_cached = geo.sabre(5, 0.2, 7).unwrap();
        assert_eq!(s_direct.ecs(), s_cached.ecs());
    }

    #[test]
    fn run_grid_preserves_cell_order() {
        let grid: Vec<u64> = (0..17).collect();
        let out = run_grid(&grid, |&x| x * x);
        assert_eq!(out, grid.iter().map(|&x| x * x).collect::<Vec<_>>());
    }
}

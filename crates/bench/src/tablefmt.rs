//! Aligned text tables for experiment output.

/// Prints a header row, a rule, and data rows with columns padded to the
/// widest cell. Cells are right-aligned except the first column.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(headers, rows));
}

/// Renders the table to a string (testable).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match the header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, &w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{cell:<w$}"));
            } else {
                line.push_str(&format!("{cell:>w$}"));
            }
        }
        line
    };
    out.push_str(&fmt_row(headers.to_vec(), &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

/// Formats a float with the given number of decimals.
pub fn f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Formats a percentage with two decimals.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render_table(
            &["name", "ail", "time"],
            &[
                vec!["BUREL".into(), "0.123".into(), "1.5".into()],
                vec!["LMondrian".into(), "0.4".into(), "12.25".into()],
            ],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // All rows equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(lines[3].starts_with("LMondrian"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        render_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn number_helpers() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(12.345), "12.35%");
    }
}

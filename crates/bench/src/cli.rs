//! A dependency-free `--key value` argument parser for the experiment
//! binaries.
//!
//! Recognized keys (binaries may ignore those that do not apply):
//!
//! * `--rows N` — dataset size (default 100 000; the paper uses 500 000);
//! * `--seed S` — dataset / algorithm seed (default 42);
//! * `--queries N` — workload size (default 2 000; the paper uses 10 000);
//! * `--qi N` — number of QI attributes (default 3, Table 3 order);
//! * `--beta X` — β threshold where a single value is needed (default 4);
//! * a single positional word selects a sub-experiment (e.g. `a`..`d` for
//!   Figures 4, 8, 9).

use std::collections::BTreeMap;

/// Parsed common arguments.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpArgs {
    /// Dataset size.
    pub rows: usize,
    /// RNG seed.
    pub seed: u64,
    /// Queries per workload.
    pub queries: usize,
    /// Number of QI attributes (prefix of the Table 3 order).
    pub qi: usize,
    /// Default β.
    pub beta: f64,
    /// Positional sub-experiment selector, if any.
    pub sub: Option<String>,
    /// Unrecognized `--key value` pairs, for binary-specific extensions.
    pub extra: BTreeMap<String, String>,
}

impl Default for ExpArgs {
    fn default() -> Self {
        ExpArgs {
            rows: 100_000,
            seed: 42,
            queries: 2_000,
            qi: 3,
            beta: 4.0,
            sub: None,
            extra: BTreeMap::new(),
        }
    }
}

impl ExpArgs {
    /// Parses from an explicit iterator (testable); see the module docs.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on malformed input.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut out = ExpArgs::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--{key} expects a value"))?;
                match key {
                    "rows" => out.rows = parse_num(key, &value)?,
                    "seed" => out.seed = parse_num(key, &value)?,
                    "queries" => out.queries = parse_num(key, &value)?,
                    "qi" => out.qi = parse_num(key, &value)?,
                    "beta" => {
                        out.beta = value
                            .parse()
                            .map_err(|_| format!("--beta expects a number, got `{value}`"))?
                    }
                    _ => {
                        out.extra.insert(key.to_string(), value);
                    }
                }
            } else if out.sub.is_none() {
                out.sub = Some(arg);
            } else {
                return Err(format!("unexpected positional argument `{arg}`"));
            }
        }
        if out.rows == 0 {
            return Err("--rows must be positive".into());
        }
        if out.qi == 0 || out.qi > 5 {
            return Err("--qi must be within 1..=5 (Table 3 has 5 QI attributes)".into());
        }
        Ok(out)
    }

    /// Parses `std::env::args()` and exits with a message on error.
    pub fn parse() -> Self {
        match Self::parse_from(std::env::args().skip(1)) {
            Ok(a) => a,
            Err(msg) => {
                eprintln!("argument error: {msg}");
                std::process::exit(2);
            }
        }
    }

    /// An extra `--key` as f64, with a default.
    pub fn extra_f64(&self, key: &str, default: f64) -> f64 {
        self.extra
            .get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn parse_num<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("--{key} expects a number, got `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<ExpArgs, String> {
        ExpArgs::parse_from(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = parse(&[]).unwrap();
        assert_eq!(a.rows, 100_000);
        assert_eq!(a.seed, 42);
        assert_eq!(a.queries, 2_000);
        assert_eq!(a.qi, 3);
        assert_eq!(a.sub, None);
    }

    #[test]
    fn full_parse() {
        let a = parse(&[
            "b",
            "--rows",
            "500000",
            "--seed",
            "7",
            "--queries",
            "10000",
            "--qi",
            "5",
            "--beta",
            "2.5",
            "--theta",
            "0.2",
        ])
        .unwrap();
        assert_eq!(a.sub.as_deref(), Some("b"));
        assert_eq!(a.rows, 500_000);
        assert_eq!(a.seed, 7);
        assert_eq!(a.queries, 10_000);
        assert_eq!(a.qi, 5);
        assert!((a.beta - 2.5).abs() < 1e-12);
        assert!((a.extra_f64("theta", 0.1) - 0.2).abs() < 1e-12);
        assert!((a.extra_f64("missing", 0.3) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn errors() {
        assert!(parse(&["--rows"]).is_err());
        assert!(parse(&["--rows", "abc"]).is_err());
        assert!(parse(&["--rows", "0"]).is_err());
        assert!(parse(&["--qi", "6"]).is_err());
        assert!(parse(&["a", "b"]).is_err());
    }
}

//! Binary searches for the Figure 4 calibrations.
//!
//! Figure 4 compares BUREL against t-closeness algorithms at *matched*
//! privacy or utility levels:
//!
//! * (b) given a target closeness `t`, find the largest β whose BUREL
//!   output achieves max-EMD ≤ `t` (closeness grows with β);
//! * (c) given a target AIL `l`, find for each algorithm the parameter
//!   whose output achieves AIL ≤ `l` (AIL falls as β or t grows).
//!
//! Both reduce to a bisection over a monotone measurement; measurement
//! noise (seeded tuple placement) is tolerated by keeping the best
//! parameter seen that satisfies the target.

/// Bisects over `param ∈ [lo, hi]` for the largest value whose measurement
/// stays at or below `target`, assuming `measure` is (approximately)
/// non-decreasing in the parameter. Returns `None` if even `lo` overshoots.
///
/// `iters` bisection steps give a resolution of `(hi − lo) / 2^iters`.
pub fn max_param_below(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    iters: usize,
    mut measure: impl FnMut(f64) -> f64,
) -> Option<f64> {
    assert!(lo < hi, "empty search interval");
    if measure(lo) > target {
        return None;
    }
    let mut best = lo;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if measure(mid) <= target {
            best = mid;
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(best)
}

/// Bisects for the *smallest* parameter whose measurement is at or below
/// `target`, assuming `measure` is (approximately) non-increasing in the
/// parameter. Returns `None` if even `hi` overshoots.
pub fn min_param_below(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    iters: usize,
    mut measure: impl FnMut(f64) -> f64,
) -> Option<f64> {
    assert!(lo < hi, "empty search interval");
    if measure(hi) > target {
        return None;
    }
    let mut best = hi;
    for _ in 0..iters {
        let mid = 0.5 * (lo + hi);
        if measure(mid) <= target {
            best = mid;
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_param_below_finds_boundary() {
        // measure(x) = x²; target 4 -> boundary at 2.
        let got = max_param_below(0.0, 10.0, 4.0, 40, |x| x * x).unwrap();
        assert!((got - 2.0).abs() < 1e-9);
    }

    #[test]
    fn max_param_below_rejects_impossible() {
        assert!(max_param_below(1.0, 2.0, 0.5, 10, |x| x).is_none());
    }

    #[test]
    fn min_param_below_finds_boundary() {
        // measure(x) = 10 − x; target 4 -> smallest x with 10 − x ≤ 4 is 6.
        let got = min_param_below(0.0, 10.0, 4.0, 40, |x| 10.0 - x).unwrap();
        assert!((got - 6.0).abs() < 1e-9);
    }

    #[test]
    fn min_param_below_rejects_impossible() {
        assert!(min_param_below(0.0, 1.0, -5.0, 10, |x| 1.0 - x).is_none());
    }

    #[test]
    fn tolerates_step_functions() {
        // A step measurement (like AIL over discrete EC structures).
        let got = max_param_below(0.0, 8.0, 1.0, 30, |x| if x < 5.0 { 0.5 } else { 2.0 }).unwrap();
        assert!((4.9..5.0).contains(&got), "got {got}");
    }
}

//! # betalike-bench
//!
//! The experiment harness: one binary per table/figure of the paper (see
//! `src/bin/`) plus Criterion micro-benchmarks (see `benches/`). This
//! library holds what they share: a dependency-free CLI parser, aligned
//! text-table output, timing, the three Mondrian adaptations as one-call
//! wrappers, and the binary searches Figure 4 needs (β ↔ t ↔ AIL
//! calibration).
//!
//! Every binary accepts `--rows N --seed S` (default 100 000 / 42; pass
//! `--rows 500000` for the paper's full scale) and prints the same
//! rows/series the paper reports. `EXPERIMENTS.md` records paper-vs-measured
//! values.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod algos;
pub mod cli;
pub mod search;
pub mod tablefmt;

use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::Table;
use std::time::{Duration, Instant};

/// Runs `f`, returning its output and wall-clock duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Generates the CENSUS table per the common arguments.
pub fn load_census(args: &cli::ExpArgs) -> Table {
    census::generate(&CensusConfig::new(args.rows, args.seed))
}

/// The first `n` QI attributes in Table 3 order (age, gender, education,
/// marital, work class).
pub fn qi_set(n: usize) -> Vec<usize> {
    assert!((1..=5).contains(&n), "Table 3 has 5 candidate QIs");
    (0..n).collect()
}

/// The SA index of the CENSUS schema (salary class).
pub const SA: usize = census::attr::SALARY;

/// Formats a duration as fractional seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_it_returns_value() {
        let (v, d) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn secs_formats() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
    }
}

//! E6 — Figure 5: information loss and wall-clock time as functions of β
//! for BUREL, LMondrian and DMondrian (QI = first 3 attributes, default
//! dataset).
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig5 -- --rows 500000
//! ```

use betalike_bench::algos::{run_burel, run_dmondrian, run_lmondrian};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, qi_set, secs, time_it, SA};
use betalike_metrics::loss::average_information_loss;

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let qi = qi_set(args.qi);
    println!(
        "Figure 5: AIL and time vs beta ({} rows, QI size {})\n",
        table.num_rows(),
        qi.len()
    );

    let mut ail_rows = Vec::new();
    let mut time_rows = Vec::new();
    for beta in [1.0, 2.0, 3.0, 4.0, 5.0] {
        let (b, tb) = time_it(|| run_burel(&table, &qi, SA, beta, args.seed).expect("BUREL"));
        let (l, tl) = time_it(|| run_lmondrian(&table, &qi, SA, beta).expect("LMondrian"));
        let (d, td) = time_it(|| run_dmondrian(&table, &qi, SA, beta).expect("DMondrian"));
        ail_rows.push(vec![
            f(beta, 0),
            f(average_information_loss(&table, &b), 4),
            f(average_information_loss(&table, &l), 4),
            f(average_information_loss(&table, &d), 4),
        ]);
        time_rows.push(vec![f(beta, 0), secs(tb), secs(tl), secs(td)]);
    }
    println!("(a) information loss (AIL)");
    print_table(&["beta", "BUREL", "LMondrian", "DMondrian"], &ail_rows);
    println!("\n(b) time (seconds)");
    print_table(&["beta", "BUREL", "LMondrian", "DMondrian"], &time_rows);
    println!(
        "\n(paper's Fig. 5: AIL falls as beta grows; BUREL achieves roughly\n\
         half the loss of the Mondrian adaptations, DMondrian worst)"
    );
}

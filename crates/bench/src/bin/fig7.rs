//! E8 — Figure 7: information loss and time as functions of dataset size
//! (100K–500K tuples) at fixed β and QI size.
//!
//! The size sweep takes prefixes of one generated table, matching the
//! paper's "randomly picking 100K to 500K tuples from the dataset".
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig7 -- --rows 500000
//! ```

use betalike_bench::algos::{run_burel, run_dmondrian, run_lmondrian};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, qi_set, secs, time_it, SA};
use betalike_metrics::loss::average_information_loss;

fn main() {
    let args = ExpArgs::parse();
    let full = load_census(&args);
    let qi = qi_set(args.qi);
    println!(
        "Figure 7: AIL and time vs dataset size (up to {} rows, beta = {})\n",
        full.num_rows(),
        args.beta
    );

    // Five evenly spaced sizes up to --rows (paper: 100K..500K).
    let sizes: Vec<usize> = (1..=5).map(|i| full.num_rows() * i / 5).collect();
    let mut ail_rows = Vec::new();
    let mut time_rows = Vec::new();
    for &n in &sizes {
        let table = full.prefix(n);
        let (b, tb) = time_it(|| run_burel(&table, &qi, SA, args.beta, args.seed).expect("BUREL"));
        let (l, tl) = time_it(|| run_lmondrian(&table, &qi, SA, args.beta).expect("LMondrian"));
        let (d, td) = time_it(|| run_dmondrian(&table, &qi, SA, args.beta).expect("DMondrian"));
        ail_rows.push(vec![
            n.to_string(),
            f(average_information_loss(&table, &b), 4),
            f(average_information_loss(&table, &l), 4),
            f(average_information_loss(&table, &d), 4),
        ]);
        time_rows.push(vec![n.to_string(), secs(tb), secs(tl), secs(td)]);
    }
    println!("(a) information loss (AIL)");
    print_table(&["rows", "BUREL", "LMondrian", "DMondrian"], &ail_rows);
    println!("\n(b) time (seconds)");
    print_table(&["rows", "BUREL", "LMondrian", "DMondrian"], &time_rows);
    println!(
        "\n(paper's Fig. 7: size has no clear effect on AIL; time grows with\n\
         size; BUREL superior on both axes)"
    );
}

//! `audit` — verify a generalized release you received.
//!
//! A β-likeness audit needs nothing but the release itself: the published
//! file carries every SA value verbatim, so the overall distribution `P`
//! and each EC's `Q` are reconstructible by any recipient. This binary
//! reads a release produced by `anonymize generalize` (or any CSV with an
//! `ec` column and the SA in the last column), recomputes the cross-model
//! audit, and — given `--beta` — checks the claimed guarantee.
//!
//! ```text
//! audit --release release.csv --schema schema.json --beta 4
//! ```

use betalike::model::BetaLikeness;
use betalike_bench::tablefmt::{f, print_table};
use betalike_metrics::audit::{delta_disclosure, distinct_l, inverse_max_freq_l, ClosenessMetric};
use betalike_metrics::distance::max_relative_gain;
use betalike_microdata::{SaDistribution, SchemaSpec};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("audit: {msg}");
    exit(2)
}

fn main() {
    let mut release_path = None;
    let mut schema_path = None;
    let mut beta: Option<f64> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} expects a value")))
        };
        match flag.as_str() {
            "--release" => release_path = Some(value()),
            "--schema" => schema_path = Some(value()),
            "--beta" => beta = Some(value().parse().unwrap_or_else(|_| fail("bad --beta"))),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    let release_path = release_path.unwrap_or_else(|| fail("--release <file.csv> is required"));
    let schema_path = schema_path.unwrap_or_else(|| fail("--schema <file.json> is required"));

    let spec = SchemaSpec::from_json(
        &std::fs::read_to_string(&schema_path)
            .unwrap_or_else(|e| fail(&format!("reading {schema_path}: {e}"))),
    )
    .unwrap_or_else(|e| fail(&format!("parsing schema: {e}")));
    let schema = spec
        .to_schema()
        .unwrap_or_else(|e| fail(&format!("building schema: {e}")));
    let sa_attr = schema.attr(schema.default_sa());

    // Parse the release: header `ec,...,<SA name>`; the SA is the last
    // column, `ec` the first.
    let file = std::fs::File::open(&release_path)
        .unwrap_or_else(|e| fail(&format!("opening {release_path}: {e}")));
    let mut lines = std::io::BufReader::new(file).lines();
    let header = lines
        .next()
        .unwrap_or_else(|| fail("empty release"))
        .unwrap_or_else(|e| fail(&format!("reading header: {e}")));
    let cols: Vec<&str> = header.split(',').collect();
    if cols.first() != Some(&"ec") {
        fail("release must start with an `ec` column (produced by `anonymize generalize`)");
    }
    if cols.last() != Some(&sa_attr.name()) {
        fail(&format!(
            "last column is `{}`, schema says the SA is `{}`",
            cols.last().unwrap_or(&""),
            sa_attr.name()
        ));
    }

    let mut per_ec: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    let mut all: Vec<u32> = Vec::new();
    for line in lines {
        let line = line.unwrap_or_else(|e| fail(&format!("reading release: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.split(',');
        let ec: u64 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| fail(&format!("bad ec field in `{line}`")));
        let sa_label = line.rsplit(',').next().expect("non-empty line");
        let code = sa_attr
            .code_of(sa_label)
            .unwrap_or_else(|_| fail(&format!("unknown SA label `{sa_label}`")));
        per_ec.entry(ec).or_default().push(code);
        all.push(code);
    }
    if all.is_empty() {
        fail("release has no tuples");
    }

    let m = sa_attr.cardinality();
    let p = SaDistribution::from_codes(&all, m);
    let metric = ClosenessMetric::EqualDistance;
    let mut max_beta: f64 = 0.0;
    let mut max_t: f64 = 0.0;
    let mut min_l = usize::MAX;
    let mut min_inv_l = f64::INFINITY;
    let mut max_delta: f64 = 0.0;
    let mut min_size = usize::MAX;
    for codes in per_ec.values() {
        let q = SaDistribution::from_codes(codes, m);
        max_beta = max_beta.max(max_relative_gain(p.freqs(), q.freqs()));
        max_t = max_t.max(metric.distance(p.freqs(), q.freqs()));
        min_l = min_l.min(distinct_l(&q));
        min_inv_l = min_inv_l.min(inverse_max_freq_l(&q));
        max_delta = max_delta.max(delta_disclosure(&p, &q));
        min_size = min_size.min(codes.len());
    }

    println!(
        "release: {} tuples in {} equivalence classes\n",
        all.len(),
        per_ec.len()
    );
    let fmt_delta = if max_delta.is_finite() {
        f(max_delta, 3)
    } else {
        "inf (some EC misses a value)".into()
    };
    print_table(
        &["Audit", "Value"],
        &[
            vec!["real beta (max relative gain)".into(), f(max_beta, 3)],
            vec!["t-closeness (max EMD)".into(), f(max_t, 3)],
            vec!["distinct l-diversity (min)".into(), min_l.to_string()],
            vec!["probabilistic l (min 1/max q)".into(), f(min_inv_l, 2)],
            vec!["delta-disclosure (max |ln q/p|)".into(), fmt_delta],
            vec!["k-anonymity (min EC size)".into(), min_size.to_string()],
        ],
    );

    if let Some(claimed) = beta {
        let model =
            BetaLikeness::new(claimed).unwrap_or_else(|e| fail(&format!("bad --beta: {e}")));
        let mut violations = 0usize;
        for codes in per_ec.values() {
            let q = SaDistribution::from_codes(codes, m);
            if model.check_distribution(&p, &q, 0).is_err() {
                violations += 1;
            }
        }
        if violations == 0 {
            println!("\nOK: every EC satisfies (enhanced) {claimed}-likeness");
        } else {
            println!("\nFAIL: {violations} EC(s) violate {claimed}-likeness");
            exit(1);
        }
    }
}

//! E7 — Figure 6: information loss and time as functions of QI
//! dimensionality (1–5) at fixed β.
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig6 -- --rows 500000 --beta 4
//! ```

use betalike_bench::algos::{run_burel, run_dmondrian, run_lmondrian};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, qi_set, secs, time_it, SA};
use betalike_metrics::loss::average_information_loss;

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    println!(
        "Figure 6: AIL and time vs QI size ({} rows, beta = {})\n",
        table.num_rows(),
        args.beta
    );

    let mut ail_rows = Vec::new();
    let mut time_rows = Vec::new();
    for qi_size in 1..=5usize {
        let qi = qi_set(qi_size);
        let (b, tb) = time_it(|| run_burel(&table, &qi, SA, args.beta, args.seed).expect("BUREL"));
        let (l, tl) = time_it(|| run_lmondrian(&table, &qi, SA, args.beta).expect("LMondrian"));
        let (d, td) = time_it(|| run_dmondrian(&table, &qi, SA, args.beta).expect("DMondrian"));
        ail_rows.push(vec![
            qi_size.to_string(),
            f(average_information_loss(&table, &b), 4),
            f(average_information_loss(&table, &l), 4),
            f(average_information_loss(&table, &d), 4),
        ]);
        time_rows.push(vec![qi_size.to_string(), secs(tb), secs(tl), secs(td)]);
    }
    println!("(a) information loss (AIL)");
    print_table(&["QI size", "BUREL", "LMondrian", "DMondrian"], &ail_rows);
    println!("\n(b) time (seconds)");
    print_table(&["QI size", "BUREL", "LMondrian", "DMondrian"], &time_rows);
    println!(
        "\n(paper's Fig. 6: loss grows with dimensionality as the QI space\n\
         sparsifies; BUREL stays lowest and fastest)"
    );
}

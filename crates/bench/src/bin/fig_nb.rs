//! E12 — the Section 7 figure: Naïve-Bayes attack accuracy on BUREL output
//! as a function of β (Equations 15–17 of the paper). Also runs the
//! simplified deFinetti attack for context.
//!
//! Expected shape: accuracy stays "remarkably close to the frequency of the
//! most frequent SA value" (4.8402% in the paper).
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig_nb -- --rows 500000
//! ```

use betalike_attacks::definetti::{definetti_attack, DefinettiConfig};
use betalike_attacks::naive_bayes::naive_bayes_attack;
use betalike_bench::algos::{run_grid, QiGeometry};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{pct, print_table};
use betalike_bench::{load_census, qi_set, SA};

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let qi = qi_set(args.qi);
    println!(
        "Section 7 figure: attack accuracy on BUREL output ({} rows, QI = {})\n",
        table.num_rows(),
        qi.len()
    );
    let geo = QiGeometry::new(&table, &qi);
    let cells = run_grid(&[1.0, 2.0, 3.0, 4.0, 5.0], |&beta| {
        let p = geo.burel(SA, beta, args.seed).expect("BUREL");
        let nb = naive_bayes_attack(&table, &p);
        let df = definetti_attack(&table, &p, &DefinettiConfig::default());
        (
            vec![
                format!("{beta:.0}"),
                pct(nb.accuracy * 100.0),
                pct(df.accuracy * 100.0),
                pct(df.random_baseline * 100.0),
            ],
            nb.majority_freq,
        )
    });
    let majority = cells.last().map(|(_, m)| *m).unwrap_or(0.0);
    let rows: Vec<Vec<String>> = cells.into_iter().map(|(row, _)| row).collect();
    print_table(
        &["beta", "NaiveBayes", "deFinetti", "random matching"],
        &rows,
    );
    println!(
        "\nmost frequent SA value: {} — the paper's NB accuracy stays near\n\
         this line for all beta (its figure shows ~5% across beta in 1..5)",
        pct(majority * 100.0)
    );
}

//! E9 — Figure 8: median relative error of aggregation queries on
//! generalized publications (BUREL, LMondrian, DMondrian).
//!
//! Sub-experiments (positional; default `all`):
//!
//! * `a` — vary λ (number of QI predicates) ∈ 1..5, QI = 5, θ = 0.1, β = 4;
//! * `b` — vary β ∈ 1..5, λ = 3, θ = 0.1;
//! * `c` — vary QI size ∈ 1..5 (λ = min(3, QI)), θ = 0.1, β = 4;
//! * `d` — vary θ ∈ {0.05..0.25}, λ = 3, β = 4.
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig8 -- a --rows 500000 --queries 10000
//! ```

use betalike_bench::algos::{run_burel, run_dmondrian, run_grid, run_lmondrian};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{pct, print_table};
use betalike_bench::{load_census, qi_set, SA};
use betalike_metrics::Partition;
use betalike_microdata::Table;
use betalike_query::{
    exact_count, generate_workload, median_relative_error, relative_error, GeneralizedView,
    WorkloadConfig,
};

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let sub = args.sub.clone().unwrap_or_else(|| "all".into());
    println!(
        "Figure 8: median relative error, generalization ({} rows, {} queries/point)\n",
        table.num_rows(),
        args.queries
    );
    if sub == "a" || sub == "all" {
        fig8a(&table, &args);
    }
    if sub == "b" || sub == "all" {
        fig8b(&table, &args);
    }
    if sub == "c" || sub == "all" {
        fig8c(&table, &args);
    }
    if sub == "d" || sub == "all" {
        fig8d(&table, &args);
    }
    if !["a", "b", "c", "d", "all"].contains(&sub.as_str()) {
        eprintln!("unknown sub-experiment `{sub}`");
        std::process::exit(2);
    }
}

/// Median relative error of one published partition over a workload.
fn workload_error(table: &Table, partition: &Partition, cfg: &WorkloadConfig) -> String {
    let view = GeneralizedView::new(table, partition);
    let queries = generate_workload(table, cfg);
    let med = median_relative_error(
        queries
            .iter()
            .map(|q| relative_error(view.estimate(q), exact_count(table, q) as f64)),
    );
    med.map(pct).unwrap_or_else(|| "n/a".into())
}

fn workload(qi: &[usize], lambda: usize, theta: f64, args: &ExpArgs) -> WorkloadConfig {
    WorkloadConfig {
        qi_pool: qi.to_vec(),
        sa: SA,
        lambda,
        theta,
        num_queries: args.queries,
        seed: args.seed ^ 0x5eed,
    }
}

fn fig8a(table: &Table, args: &ExpArgs) {
    println!("(a) vary lambda (QI = 5, theta = 0.1, beta = 4)");
    let qi = qi_set(5);
    let pubs = publish_all(table, &qi, 4.0, args.seed);
    let lambdas: Vec<usize> = (1..=5).collect();
    let rows = run_grid(&lambdas, |&lambda| {
        let cfg = workload(&qi, lambda, 0.1, args);
        row(lambda.to_string(), table, &pubs, &cfg)
    });
    print_table(&["lambda", "BUREL", "LMondrian", "DMondrian"], &rows);
    println!();
}

fn fig8b(table: &Table, args: &ExpArgs) {
    println!("(b) vary beta (lambda = 3, theta = 0.1, QI = 5)");
    let qi = qi_set(5);
    let rows = run_grid(&[1.0, 2.0, 3.0, 4.0, 5.0], |&beta| {
        let pubs = publish_all(table, &qi, beta, args.seed);
        let cfg = workload(&qi, 3, 0.1, args);
        row(format!("{beta:.0}"), table, &pubs, &cfg)
    });
    print_table(&["beta", "BUREL", "LMondrian", "DMondrian"], &rows);
    println!();
}

fn fig8c(table: &Table, args: &ExpArgs) {
    println!("(c) vary QI size (lambda = min(3, QI), theta = 0.1, beta = 4)");
    let qi_sizes: Vec<usize> = (1..=5).collect();
    let rows = run_grid(&qi_sizes, |&qi_size| {
        let qi = qi_set(qi_size);
        let pubs = publish_all(table, &qi, 4.0, args.seed);
        let cfg = workload(&qi, qi_size.min(3), 0.1, args);
        row(qi_size.to_string(), table, &pubs, &cfg)
    });
    print_table(&["QI size", "BUREL", "LMondrian", "DMondrian"], &rows);
    println!();
}

fn fig8d(table: &Table, args: &ExpArgs) {
    println!("(d) vary theta (lambda = 3, QI = 5, beta = 4)");
    let qi = qi_set(5);
    let pubs = publish_all(table, &qi, 4.0, args.seed);
    let rows = run_grid(&[0.05, 0.10, 0.15, 0.20, 0.25], |&theta| {
        let cfg = workload(&qi, 3, theta, args);
        row(format!("{theta:.2}"), table, &pubs, &cfg)
    });
    print_table(&["theta", "BUREL", "LMondrian", "DMondrian"], &rows);
    println!();
}

fn publish_all(table: &Table, qi: &[usize], beta: f64, seed: u64) -> [Partition; 3] {
    [
        run_burel(table, qi, SA, beta, seed).expect("BUREL"),
        run_lmondrian(table, qi, SA, beta).expect("LMondrian"),
        run_dmondrian(table, qi, SA, beta).expect("DMondrian"),
    ]
}

fn row(label: String, table: &Table, pubs: &[Partition; 3], cfg: &WorkloadConfig) -> Vec<String> {
    vec![
        label,
        workload_error(table, &pubs[0], cfg),
        workload_error(table, &pubs[1], cfg),
        workload_error(table, &pubs[2], cfg),
    ]
}

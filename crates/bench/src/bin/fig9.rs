//! E10 — Figure 9: median relative error of aggregation queries on the
//! perturbation scheme ((ρ1i, ρ2i)-privacy) vs. the Anatomy-style Baseline.
//!
//! Sub-experiments (positional; default `all`):
//!
//! * `a` — vary λ ∈ 1..5 (QI = 5, θ = 0.1, β = 4);
//! * `b` — vary β ∈ 1..5 (λ = 3, θ = 0.1);
//! * `c` — vary QI size ∈ 1..5 (λ = min(3, QI), θ = 0.1, β = 4);
//! * `d` — vary θ ∈ {0.05..0.25} (λ = 3, β = 4).
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig9 -- b --rows 500000 --queries 10000
//! ```

use betalike::model::BetaLikeness;
use betalike::perturb::{perturb, PerturbedTable};
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_bench::algos::run_grid;
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{pct, print_table};
use betalike_bench::{load_census, qi_set, SA};
use betalike_microdata::Table;
use betalike_query::{
    estimate_anatomy, estimate_perturbed, exact_count, generate_workload, median_relative_error,
    relative_error, WorkloadConfig,
};

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let sub = args.sub.clone().unwrap_or_else(|| "all".into());
    println!(
        "Figure 9: median relative error, perturbation vs Baseline ({} rows, {} queries/point)\n",
        table.num_rows(),
        args.queries
    );
    let baseline = AnatomyBaseline::publish(&table, SA);
    if sub == "a" || sub == "all" {
        println!("(a) vary lambda (QI = 5, theta = 0.1, beta = 4)");
        let published = publish(&table, 4.0, args.seed);
        let lambdas: Vec<usize> = (1..=5).collect();
        let rows = run_grid(&lambdas, |&lambda| {
            let cfg = workload(&qi_set(5), lambda, 0.1, &args);
            row(lambda.to_string(), &table, &published, &baseline, &cfg)
        });
        print_table(&["lambda", "(rho1,rho2)-privacy", "Baseline"], &rows);
        println!();
    }
    if sub == "b" || sub == "all" {
        println!("(b) vary beta (lambda = 3, theta = 0.1)");
        let rows = run_grid(&[1.0, 2.0, 3.0, 4.0, 5.0], |&beta| {
            let published = publish(&table, beta, args.seed);
            let cfg = workload(&qi_set(5), 3, 0.1, &args);
            row(format!("{beta:.0}"), &table, &published, &baseline, &cfg)
        });
        print_table(&["beta", "(rho1,rho2)-privacy", "Baseline"], &rows);
        println!();
    }
    if sub == "c" || sub == "all" {
        println!("(c) vary QI size (lambda = min(3, QI), theta = 0.1, beta = 4)");
        let published = publish(&table, 4.0, args.seed);
        let qi_sizes: Vec<usize> = (1..=5).collect();
        let rows = run_grid(&qi_sizes, |&qi_size| {
            let cfg = workload(&qi_set(qi_size), qi_size.min(3), 0.1, &args);
            row(qi_size.to_string(), &table, &published, &baseline, &cfg)
        });
        print_table(&["QI size", "(rho1,rho2)-privacy", "Baseline"], &rows);
        println!();
    }
    if sub == "d" || sub == "all" {
        println!("(d) vary theta (lambda = 3, beta = 4)");
        let published = publish(&table, 4.0, args.seed);
        let rows = run_grid(&[0.05, 0.10, 0.15, 0.20, 0.25], |&theta| {
            let cfg = workload(&qi_set(5), 3, theta, &args);
            row(format!("{theta:.2}"), &table, &published, &baseline, &cfg)
        });
        print_table(&["theta", "(rho1,rho2)-privacy", "Baseline"], &rows);
        println!();
    }
    if !["a", "b", "c", "d", "all"].contains(&sub.as_str()) {
        eprintln!("unknown sub-experiment `{sub}`");
        std::process::exit(2);
    }
    println!("(paper's Fig. 9: the perturbation scheme beats the Baseline on\n every grid; error falls with lambda, beta and theta)");
}

fn publish(table: &Table, beta: f64, seed: u64) -> PerturbedTable {
    let model = BetaLikeness::new(beta).expect("valid beta");
    perturb(table, SA, &model, seed).expect("perturbation")
}

fn workload(qi: &[usize], lambda: usize, theta: f64, args: &ExpArgs) -> WorkloadConfig {
    WorkloadConfig {
        qi_pool: qi.to_vec(),
        sa: SA,
        lambda,
        theta,
        num_queries: args.queries,
        seed: args.seed ^ 0x5eed,
    }
}

fn row(
    label: String,
    table: &Table,
    published: &PerturbedTable,
    baseline: &AnatomyBaseline,
    cfg: &WorkloadConfig,
) -> Vec<String> {
    let queries = generate_workload(table, cfg);
    let mut pert = Vec::with_capacity(queries.len());
    let mut base = Vec::with_capacity(queries.len());
    for q in &queries {
        let exact = exact_count(table, q) as f64;
        pert.push(relative_error(
            estimate_perturbed(published, q).expect("reconstruction"),
            exact,
        ));
        base.push(relative_error(estimate_anatomy(baseline, table, q), exact));
    }
    vec![
        label,
        median_relative_error(pert)
            .map(pct)
            .unwrap_or_else(|| "n/a".into()),
        median_relative_error(base)
            .map(pct)
            .unwrap_or_else(|| "n/a".into()),
    ]
}

//! `anonymize` — the end-user release tool.
//!
//! Reads a microdata CSV plus a JSON schema descriptor, applies one of the
//! paper's two anonymization schemes, and writes a publication bundle:
//!
//! ```text
//! # Generalization (BUREL): writes <out>.csv (generalized QI + exact SA)
//! anonymize generalize --input data.csv --schema schema.json \
//!           --beta 4 --output release
//!
//! # Perturbation: writes <out>.csv (exact QI + randomized SA) and
//! # <out>.plan.json (the PM matrix, priors and caps per Section 5)
//! anonymize perturb --input data.csv --schema schema.json \
//!           --beta 4 --output release
//!
//! # Emit a schema descriptor for the built-in CENSUS layout to start from
//! anonymize schema --output schema.json
//! ```
//!
//! The QI set defaults to every non-sensitive attribute; restrict it with
//! `--qi Name1,Name2,...`. Both paths verify the β-likeness guarantee
//! before anything is written.

use betalike::model::BetaLikeness;
use betalike::perturb::{perturb, PlanRelease};
use betalike::{burel, BurelConfig};
use betalike_metrics::export::write_generalized_csv;
use betalike_microdata::{io as mio, SchemaSpec};
use std::fs::File;
use std::io::Write as _;
use std::process::exit;

fn fail(msg: &str) -> ! {
    eprintln!("anonymize: {msg}");
    exit(2)
}

struct Args {
    command: String,
    input: Option<String>,
    schema: Option<String>,
    output: String,
    beta: f64,
    seed: u64,
    qi: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        command: String::new(),
        input: None,
        schema: None,
        output: "release".into(),
        beta: 4.0,
        seed: 42,
        qi: None,
    };
    let mut it = std::env::args().skip(1);
    match it.next() {
        Some(c) if ["generalize", "perturb", "schema"].contains(&c.as_str()) => args.command = c,
        Some(other) => fail(&format!(
            "unknown command `{other}` (expected generalize, perturb or schema)"
        )),
        None => fail("missing command (generalize | perturb | schema)"),
    }
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .unwrap_or_else(|| fail(&format!("{flag} expects a value")))
        };
        match flag.as_str() {
            "--input" => args.input = Some(value()),
            "--schema" => args.schema = Some(value()),
            "--output" => args.output = value(),
            "--beta" => {
                args.beta = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--beta expects a number"))
            }
            "--seed" => {
                args.seed = value()
                    .parse()
                    .unwrap_or_else(|_| fail("--seed expects an integer"))
            }
            "--qi" => args.qi = Some(value()),
            other => fail(&format!("unknown flag `{other}`")),
        }
    }
    args
}

fn load_table(args: &Args) -> (betalike_microdata::Table, usize) {
    let schema_path = args
        .schema
        .as_deref()
        .unwrap_or_else(|| fail("--schema <file.json> is required"));
    let input_path = args
        .input
        .as_deref()
        .unwrap_or_else(|| fail("--input <file.csv> is required"));
    let schema_json = std::fs::read_to_string(schema_path)
        .unwrap_or_else(|e| fail(&format!("reading {schema_path}: {e}")));
    let spec = SchemaSpec::from_json(&schema_json)
        .unwrap_or_else(|e| fail(&format!("parsing {schema_path}: {e}")));
    let schema = spec
        .to_schema()
        .unwrap_or_else(|e| fail(&format!("building schema: {e}")));
    let sa = schema.default_sa();
    let file =
        File::open(input_path).unwrap_or_else(|e| fail(&format!("opening {input_path}: {e}")));
    let table =
        mio::read_csv(schema, file).unwrap_or_else(|e| fail(&format!("reading {input_path}: {e}")));
    if table.is_empty() {
        fail("input table is empty");
    }
    (table, sa)
}

fn resolve_qi(args: &Args, table: &betalike_microdata::Table, sa: usize) -> Vec<usize> {
    match &args.qi {
        None => (0..table.schema().arity()).filter(|&a| a != sa).collect(),
        Some(names) => names
            .split(',')
            .map(|name| {
                table
                    .schema()
                    .index_of(name.trim())
                    .unwrap_or_else(|| fail(&format!("unknown QI attribute `{name}`")))
            })
            .collect(),
    }
}

fn main() {
    let args = parse_args();
    match args.command.as_str() {
        "schema" => {
            let spec = SchemaSpec::from_schema(&betalike_microdata::census::census_schema());
            let path = if args.output == "release" {
                "schema.json".to_string()
            } else {
                args.output.clone()
            };
            std::fs::write(&path, spec.to_json() + "\n")
                .unwrap_or_else(|e| fail(&format!("writing {path}: {e}")));
            println!("wrote CENSUS schema descriptor to {path}");
        }
        "generalize" => {
            let (table, sa) = load_table(&args);
            let qi = resolve_qi(&args, &table, sa);
            let cfg = BurelConfig::new(args.beta).with_seed(args.seed);
            let partition = burel(&table, &qi, sa, &cfg)
                .unwrap_or_else(|e| fail(&format!("anonymization failed: {e}")));
            let out_path = format!("{}.csv", args.output);
            let file = File::create(&out_path)
                .unwrap_or_else(|e| fail(&format!("creating {out_path}: {e}")));
            write_generalized_csv(&table, &partition, file)
                .unwrap_or_else(|e| fail(&format!("writing {out_path}: {e}")));
            println!(
                "published {} tuples in {} equivalence classes under (enhanced) {}-likeness -> {out_path}",
                table.num_rows(),
                partition.num_ecs(),
                args.beta
            );
        }
        "perturb" => {
            let (table, sa) = load_table(&args);
            let model =
                BetaLikeness::new(args.beta).unwrap_or_else(|e| fail(&format!("bad beta: {e}")));
            let published = perturb(&table, sa, &model, args.seed)
                .unwrap_or_else(|e| fail(&format!("perturbation failed: {e}")));
            let out_path = format!("{}.csv", args.output);
            let file = File::create(&out_path)
                .unwrap_or_else(|e| fail(&format!("creating {out_path}: {e}")));
            mio::write_csv(&published.table, file)
                .unwrap_or_else(|e| fail(&format!("writing {out_path}: {e}")));
            let plan_path = format!("{}.plan.json", args.output);
            let mut plan_file = File::create(&plan_path)
                .unwrap_or_else(|e| fail(&format!("creating {plan_path}: {e}")));
            let release = PlanRelease::from_plan(&published.plan);
            writeln!(plan_file, "{}", release.to_json())
                .unwrap_or_else(|e| fail(&format!("writing {plan_path}: {e}")));
            println!(
                "published {} tuples with randomized SA under {}-likeness -> {out_path}\n\
                 reconstruction matrix and priors -> {plan_path}",
                table.num_rows(),
                args.beta
            );
        }
        _ => unreachable!("validated in parse_args"),
    }
}

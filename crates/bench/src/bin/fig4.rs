//! E3–E5 — Figure 4: β-likeness achieved by BUREL vs. t-closeness schemes
//! (tMondrian, SABRE) at matched privacy/utility levels.
//!
//! Sub-experiments (positional argument):
//!
//! * `a` (default) — vary β ∈ {2, 3, 4, 5}: run BUREL, measure its
//!   closeness `t_β`, run tMondrian and SABRE at `t_β`, report everyone's
//!   *real β* (Figure 4a);
//! * `b` — vary t ∈ {0.05, 0.1, 0.15, 0.2}: run the t-closeness schemes at
//!   t, binary-search the β giving BUREL the same (or smaller) closeness,
//!   report real β (Figure 4b);
//! * `c` — vary target AIL ∈ {0.30, 0.35, 0.40, 0.45}: binary-search each
//!   algorithm's parameter to land at (or below) the AIL, report real β
//!   (Figure 4c).
//!
//! ```text
//! cargo run --release -p betalike-bench --bin fig4 -- a --rows 100000
//! ```

use betalike_bench::algos::{run_grid, run_tmondrian, QiGeometry, METRIC};
use betalike_bench::cli::ExpArgs;
use betalike_bench::search::{max_param_below, min_param_below};
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, qi_set, SA};
use betalike_metrics::audit::{achieved_beta, achieved_closeness};
use betalike_metrics::loss::average_information_loss;
use betalike_microdata::Table;

const BETA_GRID: [f64; 4] = [2.0, 3.0, 4.0, 5.0];
const T_GRID: [f64; 4] = [0.05, 0.10, 0.15, 0.20];
const AIL_GRID: [f64; 4] = [0.30, 0.35, 0.40, 0.45];
const SEARCH_ITERS: usize = 10;

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let qi = qi_set(args.qi);
    // Every cell below runs BUREL and SABRE on the same (table, QI): one
    // shared Hilbert-key computation instead of one per invocation.
    let geo = QiGeometry::new(&table, &qi);
    let sub = args.sub.clone().unwrap_or_else(|| "a".into());
    match sub.as_str() {
        "a" => fig4a(&table, &qi, &geo, args.seed),
        "b" => fig4b(&table, &qi, &geo, args.seed),
        "c" => fig4c(&table, &qi, &geo, args.seed),
        other => {
            eprintln!("unknown sub-experiment `{other}` (expected a, b or c)");
            std::process::exit(2);
        }
    }
}

/// Real β (max over ECs of the max relative gain) of a partition.
fn real_beta(table: &Table, p: &betalike_metrics::Partition) -> f64 {
    achieved_beta(table, p)
}

fn fig4a(table: &Table, qi: &[usize], geo: &QiGeometry, seed: u64) {
    println!("Figure 4(a): real beta as a function of beta (equal t calibration)\n");
    let rows = run_grid(&BETA_GRID, |&beta| {
        let burel_p = geo.burel(SA, beta, seed).expect("BUREL");
        let (t_beta, _) = achieved_closeness(table, &burel_p, METRIC);
        let tm = run_tmondrian(table, qi, SA, t_beta).expect("tMondrian");
        let sb = geo.sabre(SA, t_beta, seed).expect("SABRE");
        vec![
            f(beta, 0),
            f(t_beta, 4),
            f(real_beta(table, &burel_p), 2),
            f(real_beta(table, &tm), 2),
            f(real_beta(table, &sb), 2),
        ]
    });
    print_table(&["beta", "t_beta", "BUREL", "tMondrian", "SABRE"], &rows);
    println!("\n(the paper's Fig. 4a shows BUREL at ~beta and the t-closeness\n schemes 1–3 orders of magnitude above; log-scale y-axis)");
}

fn fig4b(table: &Table, qi: &[usize], geo: &QiGeometry, seed: u64) {
    println!("Figure 4(b): real beta as a function of t\n");
    let rows = run_grid(&T_GRID, |&t| {
        let tm = run_tmondrian(table, qi, SA, t).expect("tMondrian");
        let sb = geo.sabre(SA, t, seed).expect("SABRE");
        // Largest β whose BUREL output closes within t.
        let beta_t = max_param_below(0.05, 64.0, t, SEARCH_ITERS, |beta| {
            match geo.burel(SA, beta, seed) {
                Ok(p) => achieved_closeness(table, &p, METRIC).0,
                Err(_) => f64::INFINITY,
            }
        });
        let burel_beta = match beta_t {
            Some(beta) => {
                let p = geo.burel(SA, beta, seed).expect("BUREL");
                f(real_beta(table, &p), 3)
            }
            None => "n/a".into(),
        };
        vec![
            f(t, 2),
            beta_t.map(|b| f(b, 3)).unwrap_or_else(|| "n/a".into()),
            burel_beta,
            f(real_beta(table, &tm), 2),
            f(real_beta(table, &sb), 2),
        ]
    });
    print_table(&["t", "beta_t", "BUREL", "tMondrian", "SABRE"], &rows);
}

fn fig4c(table: &Table, qi: &[usize], geo: &QiGeometry, seed: u64) {
    println!("Figure 4(c): real beta as a function of target AIL\n");
    let ail_of = |p: &betalike_metrics::Partition| average_information_loss(table, p);
    let rows = run_grid(&AIL_GRID, |&l| {
        // BUREL: AIL decreases as β grows -> smallest β with AIL <= l.
        let beta_l = min_param_below(0.05, 64.0, l, SEARCH_ITERS, |beta| {
            geo.burel(SA, beta, seed)
                .map(|p| ail_of(&p))
                .unwrap_or(f64::INFINITY)
        });
        // t-closeness schemes: AIL decreases as t grows -> smallest t.
        let t_tm = min_param_below(0.005, 1.0, l, SEARCH_ITERS, |t| {
            run_tmondrian(table, qi, SA, t)
                .map(|p| ail_of(&p))
                .unwrap_or(f64::INFINITY)
        });
        let t_sb = min_param_below(0.005, 1.0, l, SEARCH_ITERS, |t| {
            geo.sabre(SA, t, seed)
                .map(|p| ail_of(&p))
                .unwrap_or(f64::INFINITY)
        });
        let cell = |v: Option<f64>, run: &dyn Fn(f64) -> Option<f64>| -> String {
            match v.and_then(run) {
                Some(beta) => f(beta, 2),
                None => "n/a".into(),
            }
        };
        vec![
            f(l, 2),
            cell(beta_l, &|b| {
                geo.burel(SA, b, seed).ok().map(|p| real_beta(table, &p))
            }),
            cell(t_tm, &|t| {
                run_tmondrian(table, qi, SA, t)
                    .ok()
                    .map(|p| real_beta(table, &p))
            }),
            cell(t_sb, &|t| {
                geo.sabre(SA, t, seed).ok().map(|p| real_beta(table, &p))
            }),
        ]
    });
    print_table(&["AIL", "BUREL", "tMondrian", "SABRE"], &rows);
}

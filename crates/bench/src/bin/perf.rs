//! PERF — the reproducible performance harness behind `BENCH_*.json`.
//!
//! Times every BUREL pipeline stage plus the end-to-end run on the CENSUS
//! generator, at several dataset sizes and at 1 vs N worker threads
//! (N = `max(4, available_parallelism)`), and writes the measurements as a
//! JSON trajectory file every future PR appends to.
//!
//! Stages (best-of-`iters` wall clock each):
//!
//! * `hilbert_keys` — per-row Hilbert transform over the QI grid;
//! * `bucketize` — the `DPpartition` dynamic program;
//! * `ectree` — `biSplit` reallocation;
//! * `materialize` — per-bucket store build + EC filling;
//! * `audit` — the full cross-model [`audit_partition`];
//! * `naive_bayes` — the Section 7 attack;
//! * `burel_e2e` — the whole pipeline through [`burel()`].
//!
//! ```text
//! cargo run --release -p betalike-bench --bin perf -- --rows 200000
//! cargo run --release -p betalike-bench --bin perf -- smoke --out perf-smoke.json
//! ```
//!
//! `smoke` (positional) shrinks the grid to one small dataset and a single
//! iteration so CI can exercise the harness on every push; `--rows N`
//! replaces the default 10k/50k/200k grid with the single size N; `--out
//! FILE` overrides the default `BENCH_2.json`.

use betalike::bucketize::dp_partition;
use betalike::burel::rows_per_bucket;
use betalike::ectree::{bi_split, BetaEligibility};
use betalike::model::BetaLikeness;
use betalike::retrieve::{hilbert_keys, FillStrategy, Materializer, SeedChoice};
use betalike::{burel, BurelConfig};
use betalike_attacks::naive_bayes::naive_bayes_attack;
use betalike_bench::algos::METRIC;
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::print_table;
use betalike_bench::{qi_set, secs, time_it, SA};
use betalike_metrics::audit::audit_partition;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::json::Json;
use betalike_microdata::{RowId, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const BETA: f64 = 4.0;

/// One measured cell of the grid.
struct Measurement {
    stage: &'static str,
    rows: usize,
    threads: usize,
    secs: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let smoke = args.sub.as_deref() == Some("smoke");
    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_2.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-core host 4 threads still exercise the pool (and honestly
    // record the oversubscription cost); on real hardware N = all cores.
    let parallel_threads = cpus.max(4);
    // Flag *presence* (not value) selects single-size mode, so an explicit
    // `--rows 100000` equal to the ExpArgs default still replaces the grid.
    let rows_flag_passed = std::env::args().any(|a| a == "--rows");
    let (row_grid, iters): (Vec<usize>, usize) = if smoke {
        (vec![2_000], 1)
    } else if rows_flag_passed {
        (vec![args.rows], 3)
    } else {
        (vec![10_000, 50_000, 200_000], 3)
    };
    let qi = qi_set(args.qi);
    println!(
        "perf harness: CENSUS, beta = {BETA}, QI = {}, threads 1 vs {parallel_threads} \
         ({cpus} cpu(s) visible), best of {iters}\n",
        qi.len()
    );

    let mut measurements: Vec<Measurement> = Vec::new();
    for &rows in &row_grid {
        let table = census::generate(&CensusConfig::new(rows, args.seed));
        for &threads in &[1usize, parallel_threads] {
            mini_rayon::set_threads(threads);
            measure_stages(&table, &qi, rows, threads, iters, &mut measurements);
        }
    }
    mini_rayon::set_threads(0);

    print_measurements(&measurements, parallel_threads);
    let doc = to_json(&measurements, cpus, parallel_threads, iters, smoke);
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write perf JSON");
    println!("\nwrote {out_path}");
}

/// Runs `f` `iters` times and returns the best wall-clock duration.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let (_, d) = time_it(&mut f);
        best = best.min(d);
    }
    best
}

/// Times every stage at the current thread count.
fn measure_stages(
    table: &Table,
    qi: &[usize],
    rows: usize,
    threads: usize,
    iters: usize,
    out: &mut Vec<Measurement>,
) {
    let mut push = |stage: &'static str, d: Duration| {
        out.push(Measurement {
            stage,
            rows,
            threads,
            secs: d.as_secs_f64(),
        });
    };

    // Stage inputs, computed once (the stages themselves are timed).
    let model = BetaLikeness::new(BETA).expect("valid beta");
    let dist = table.sa_distribution(SA);
    let keys = hilbert_keys(table, qi);
    let buckets = dp_partition(&dist, &model, 0.25);
    let sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
    let eligibility = BetaEligibility::from_buckets(&buckets);
    let templates = bi_split(&sizes, &eligibility).expect("root eligible");
    let bucket_rows = rows_per_bucket(table, SA, &buckets);
    let partition = burel(table, qi, SA, &BurelConfig::new(BETA).with_seed(42)).expect("BUREL");

    push("hilbert_keys", best_of(iters, || hilbert_keys(table, qi)));
    push(
        "bucketize",
        best_of(iters, || dp_partition(&dist, &model, 0.25)),
    );
    push(
        "ectree",
        best_of(iters, || bi_split(&sizes, &eligibility).expect("eligible")),
    );
    push(
        "materialize",
        best_of(iters, || {
            let mut mat = Materializer::with_seed_choice(
                &keys,
                &bucket_rows,
                FillStrategy::HilbertNearest,
                SeedChoice::Random,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let ecs: Vec<Vec<RowId>> = templates
                .iter()
                .map(|t| mat.fill(&t.counts, &mut rng))
                .collect();
            ecs
        }),
    );
    push(
        "audit",
        best_of(iters, || audit_partition(table, &partition, METRIC)),
    );
    push(
        "naive_bayes",
        best_of(iters, || naive_bayes_attack(table, &partition)),
    );
    push(
        "burel_e2e",
        best_of(iters, || {
            burel(table, qi, SA, &BurelConfig::new(BETA).with_seed(42)).expect("BUREL")
        }),
    );
}

/// Prints the per-stage serial/parallel/speedup table per dataset size.
fn print_measurements(measurements: &[Measurement], parallel_threads: usize) {
    let mut sizes: Vec<usize> = Vec::new();
    for m in measurements {
        if !sizes.contains(&m.rows) {
            sizes.push(m.rows);
        }
    }
    for &rows in &sizes {
        println!("rows = {rows}");
        let mut table_rows = Vec::new();
        let mut stages: Vec<&'static str> = Vec::new();
        for m in measurements.iter().filter(|m| m.rows == rows) {
            if !stages.contains(&m.stage) {
                stages.push(m.stage);
            }
        }
        for stage in stages {
            let find = |threads: usize| {
                measurements
                    .iter()
                    .find(|m| m.rows == rows && m.stage == stage && m.threads == threads)
                    .map(|m| m.secs)
            };
            let (Some(serial), Some(parallel)) = (find(1), find(parallel_threads)) else {
                continue;
            };
            table_rows.push(vec![
                stage.to_string(),
                secs(Duration::from_secs_f64(serial)),
                secs(Duration::from_secs_f64(parallel)),
                format!("{:.2}x", serial / parallel.max(1e-12)),
            ]);
        }
        print_table(
            &[
                "stage",
                "serial (s)",
                &format!("{parallel_threads} threads (s)"),
                "speedup",
            ],
            &table_rows,
        );
        println!();
    }
}

/// Renders the trajectory document.
fn to_json(
    measurements: &[Measurement],
    cpus: usize,
    parallel_threads: usize,
    iters: usize,
    smoke: bool,
) -> Json {
    let cells: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("stage".into(), Json::Str(m.stage.into())),
                ("rows".into(), Json::Num(m.rows as f64)),
                ("threads".into(), Json::Num(m.threads as f64)),
                ("secs".into(), Json::Num(m.secs)),
            ])
        })
        .collect();
    Json::Obj(vec![
        ("pr".into(), Json::Num(2.0)),
        ("harness".into(), Json::Str("perf".into())),
        ("dataset".into(), Json::Str("CENSUS (synthetic)".into())),
        ("beta".into(), Json::Num(BETA)),
        ("cpus_visible".into(), Json::Num(cpus as f64)),
        (
            "parallel_threads".into(),
            Json::Num(parallel_threads as f64),
        ),
        ("iters".into(), Json::Num(iters as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("measurements".into(), Json::Arr(cells)),
    ])
}

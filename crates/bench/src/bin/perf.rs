//! PERF — the reproducible performance harness behind `BENCH_*.json`.
//!
//! Times every BUREL pipeline stage plus the end-to-end run on the CENSUS
//! generator, at several dataset sizes and at 1 vs N worker threads
//! (N = `max(4, available_parallelism)`), and writes the measurements as a
//! JSON trajectory file every future PR appends to.
//!
//! Stages (best-of-`iters` wall clock each):
//!
//! * `hilbert_keys` — per-row Hilbert transform over the QI grid;
//! * `bucketize` — the `DPpartition` dynamic program;
//! * `ectree` — `biSplit` reallocation;
//! * `materialize` — per-bucket store build + EC filling;
//! * `audit` — the full cross-model [`audit_partition`];
//! * `naive_bayes` — the Section 7 attack;
//! * `burel_e2e` — the whole pipeline through [`burel()`].
//!
//! Since PR 3 the harness also measures *serving*: an in-process
//! `betalike-server` publishes one BUREL artifact and the harness replays a
//! count workload through 1 vs N concurrent TCP clients, recording
//! queries/sec into a `serve` section of the same JSON document.
//!
//! Since PR 4 it also measures *durability* (`store` section): per dataset
//! size, the cold publish cost (dataset generation + full BUREL + view
//! build, i.e. what a restart used to pay per artifact) versus the warm
//! path (read the `.bpub` snapshot and restore a serving-ready artifact),
//! plus raw snapshot write/read throughput in MB/s.
//!
//! Since PR 5 it also measures *conformance* (`verify` section): per
//! dataset size, the independent oracle's full verification of a BUREL
//! and a perturbation snapshot versus the (warm-registry) publish cost —
//! the price of never trusting a publication the pipeline's own auditor
//! blessed.
//!
//! Since PR 6 it also measures *resilience* (`faults` section): client-
//! observed count-query p50/p99 under a flood of more clients than
//! workers, with the bounded admission queue shedding (`overloaded`
//! refusals + deterministic client backoff) versus an effectively
//! unbounded queue; count throughput while the store is degraded
//! (read-only after injected write failures); and the post-crash
//! recovery-to-first-answer time — process start through store recovery
//! to the first served count over a freshly opened data dir.
//!
//! Since PR 7 it also measures *indexed answering* (`catalog` section):
//! per dataset size, count-query throughput through the per-artifact
//! aggregate catalog (`betalike_query::Catalog`) versus the row-scan path
//! — the same workload, bit-identical answers, different asymptotics —
//! plus an end-to-end comparison of two servers (one `--no-catalog`)
//! replaying the same count workload over TCP.
//!
//! Since PR 8 the serve section also records client-observed latency
//! quantiles (`p50_ms`/`p99_ms`/`p999_ms`, from a log-bucketed
//! `betalike_obs::Histogram` shared across the client threads) — the
//! single-client `qps` field is kept for trajectory continuity but
//! deprecated in favour of them — and an `obs` section measures the
//! cost of observability itself: the same warm count workload against
//! two in-process servers, timings on vs `obs: false`, with the
//! fractional overhead asserted ≤ 5% by the schema checker.
//!
//! Since PR 9 the serve section also carries `pipeline` points: one
//! client pipelining batches of depth 1 and 32 against each server core
//! (`--event-loops` event-driven vs threaded), recording batch-amortized
//! per-request latency quantiles. The schema checker holds the event
//! core's p99 at depth 32 to be no worse than the threaded core's p99 at
//! depth 1 — the amortization claim of DESIGN.md §15, as a gate.
//!
//! ```text
//! cargo run --release -p betalike-bench --bin perf -- --rows 200000
//! cargo run --release -p betalike-bench --bin perf -- smoke --out perf-smoke.json
//! cargo run --release -p betalike-bench --bin perf -- serve
//! cargo run --release -p betalike-bench --bin perf -- catalog
//! cargo run --release -p betalike-bench --bin perf -- check --file perf-smoke.json
//! ```
//!
//! Positional sub-modes:
//!
//! * `smoke` — one small dataset, one iteration, a small serve workload:
//!   what CI runs on every push;
//! * `serve` — only the serve-throughput section (quick iteration on the
//!   server);
//! * `catalog` — only the catalog-vs-scan section (quick iteration on the
//!   query planner; prints, never writes);
//! * `check` — parse `--file` and validate it against the trajectory
//!   schema (the checked-in schema *is* this binary's `check_schema`);
//!   non-zero exit on any violation, so CI catches a malformed artifact
//!   before uploading it.
//!
//! `--rows N` replaces the default 10k/50k/200k grid with the single size
//! N; `--out FILE` overrides the default `BENCH_9.json`.

use betalike::bucketize::dp_partition;
use betalike::burel::rows_per_bucket;
use betalike::ectree::{bi_split, BetaEligibility};
use betalike::model::BetaLikeness;
use betalike::retrieve::{hilbert_keys, FillStrategy, Materializer, SeedChoice};
use betalike::{burel, BurelConfig};
use betalike_attacks::naive_bayes::naive_bayes_attack;
use betalike_bench::algos::METRIC;
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::print_table;
use betalike_bench::{qi_set, secs, time_it, SA};
use betalike_metrics::audit::audit_partition;
use betalike_microdata::census::{self, CensusConfig};
use betalike_microdata::json::Json;
use betalike_microdata::{RowId, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

const BETA: f64 = 4.0;

/// One measured cell of the grid.
struct Measurement {
    stage: &'static str,
    rows: usize,
    threads: usize,
    secs: f64,
}

fn main() {
    let args = ExpArgs::parse();
    let sub = args.sub.as_deref().unwrap_or("");
    if sub == "check" {
        run_check(&args);
        return;
    }
    let smoke = sub == "smoke";
    let serve_only = sub == "serve";
    let catalog_only = sub == "catalog";
    let explicit_out = args.extra.contains_key("out");
    let out_path = args
        .extra
        .get("out")
        .cloned()
        .unwrap_or_else(|| "BENCH_9.json".into());
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // On a single-core host 4 threads still exercise the pool (and honestly
    // record the oversubscription cost); on real hardware N = all cores.
    let parallel_threads = cpus.max(4);
    // Flag *presence* (not value) selects single-size mode, so an explicit
    // `--rows 100000` equal to the ExpArgs default still replaces the grid.
    let rows_flag_passed = std::env::args().any(|a| a == "--rows");
    let (row_grid, iters): (Vec<usize>, usize) = if smoke {
        (vec![2_000], 1)
    } else if rows_flag_passed {
        (vec![args.rows], 3)
    } else {
        (vec![10_000, 50_000, 200_000], 3)
    };
    let qi = qi_set(args.qi);
    println!(
        "perf harness: CENSUS, beta = {BETA}, QI = {}, threads 1 vs {parallel_threads} \
         ({cpus} cpu(s) visible), best of {iters}\n",
        qi.len()
    );

    if catalog_only {
        let serve_rows = row_grid.iter().copied().max().unwrap_or(50_000).min(50_000);
        let catalog = measure_catalog(&row_grid, 300, iters, &qi, serve_rows, 300);
        print_catalog(&catalog);
        println!("(catalog mode prints only; run the full harness to write a trajectory document)");
        return;
    }

    let mut measurements: Vec<Measurement> = Vec::new();
    if !serve_only {
        for &rows in &row_grid {
            let table = census::generate(&CensusConfig::new(rows, args.seed));
            for &threads in &[1usize, parallel_threads] {
                mini_rayon::set_threads(threads);
                measure_stages(&table, &qi, rows, threads, iters, &mut measurements);
            }
        }
        mini_rayon::set_threads(0);
        print_measurements(&measurements, parallel_threads);
    }

    let (serve_rows, serve_queries) = if smoke { (2_000, 100) } else { (50_000, 1_000) };
    let serve = measure_serve(serve_rows, serve_queries, &[1, parallel_threads]);
    print_serve(&serve);

    let (store, verify, faults, catalog, obs) = if serve_only {
        (Vec::new(), Vec::new(), None, None, None)
    } else {
        let store = measure_store(&row_grid, iters);
        print_store(&store);
        let verify = measure_verify(&row_grid, iters);
        print_verify(&verify);
        let (faults_rows, faults_queries, flood_clients) = if smoke {
            (2_000, 60, 6)
        } else {
            (10_000, 300, 8)
        };
        let faults = measure_faults(faults_rows, faults_queries, flood_clients);
        print_faults(&faults);
        let (catalog_queries, catalog_serve_rows, catalog_serve_queries) = if smoke {
            (100, 2_000, 100)
        } else {
            (300, 50_000, 300)
        };
        let catalog = measure_catalog(
            &row_grid,
            catalog_queries,
            iters,
            &qi,
            catalog_serve_rows,
            catalog_serve_queries,
        );
        print_catalog(&catalog);
        // Even the smoke pass replays a decent workload: the overhead is
        // a ratio of two ~millisecond measurements, so a small numerator
        // would be noise-dominated against the 5% budget.
        let (obs_rows, obs_queries, obs_passes) = if smoke {
            (2_000, 400, 5)
        } else {
            (10_000, 400, 5)
        };
        let obs = measure_obs_overhead(obs_rows, obs_queries, obs_passes);
        print_obs_overhead(&obs);
        (store, verify, Some(faults), Some(catalog), Some(obs))
    };

    if serve_only && !explicit_out {
        // Quick-iteration mode: a default write would clobber the committed
        // trajectory with a document whose `measurements` array is empty.
        println!("\n(serve mode prints only; pass --out FILE to write a trajectory document)");
        return;
    }
    let doc = to_json(
        &measurements,
        &serve,
        &store,
        &verify,
        faults.as_ref(),
        catalog.as_ref(),
        obs.as_ref(),
        cpus,
        parallel_threads,
        iters,
        smoke,
    );
    if let Err(e) = check_schema(&doc) {
        // The harness must never write a document its own checker rejects.
        eprintln!("internal error: emitted document fails the schema: {e}");
        std::process::exit(1);
    }
    std::fs::write(&out_path, doc.pretty() + "\n").expect("write perf JSON");
    println!("\nwrote {out_path}");
}

/// `perf -- check --file F`: validate a trajectory document against the
/// checked-in schema.
fn run_check(args: &ExpArgs) {
    let Some(file) = args.extra.get("file") else {
        eprintln!("check needs --file FILE");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("read {file}: {e}");
        std::process::exit(1);
    });
    let doc = Json::parse(&text).unwrap_or_else(|e| {
        eprintln!("{file}: not JSON: {e}");
        std::process::exit(1);
    });
    match check_schema(&doc) {
        Ok(summary) => println!("{file}: schema OK ({summary})"),
        Err(e) => {
            eprintln!("{file}: schema check failed: {e}");
            std::process::exit(1);
        }
    }
}

/// The trajectory-document schema, as executable checks. CI runs this over
/// the freshly-emitted smoke artifact; the writer runs it over every
/// document before writing.
fn check_schema(doc: &Json) -> Result<String, String> {
    let num = |d: &Json, key: &str| {
        d.get(key)
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("missing/ill-typed number `{key}`"))
    };
    let text = |d: &Json, key: &str| {
        d.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("missing/ill-typed string `{key}`"))
    };
    let pr = num(doc, "pr")?;
    text(doc, "harness")?;
    text(doc, "dataset")?;
    num(doc, "beta")?;
    num(doc, "cpus_visible")?;
    num(doc, "parallel_threads")?;
    num(doc, "iters")?;
    doc.get("smoke")
        .and_then(Json::as_bool)
        .ok_or("missing/ill-typed bool `smoke`")?;
    let measurements = doc
        .get("measurements")
        .and_then(Json::as_arr)
        .ok_or("missing array `measurements`")?;
    for (i, m) in measurements.iter().enumerate() {
        let ctx = |e: String| format!("measurements[{i}]: {e}");
        text(m, "stage").map_err(ctx)?;
        num(m, "rows").map_err(ctx)?;
        num(m, "threads").map_err(ctx)?;
        let secs = num(m, "secs").map_err(ctx)?;
        if secs.is_nan() || secs < 0.0 {
            return Err(format!("measurements[{i}]: secs = {secs} is not >= 0"));
        }
    }
    // The `serve` section exists from PR 3 on; earlier committed
    // trajectory files (BENCH_2.json) must still validate.
    let serve = match doc.get("serve") {
        Some(serve) => serve,
        None if pr < 3.0 => {
            return Ok(format!(
                "{} stage measurements, pre-PR3 document without a serve section",
                measurements.len()
            ))
        }
        None => return Err("missing object `serve` (required from pr 3 on)".into()),
    };
    num(serve, "dataset_rows").map_err(|e| format!("serve: {e}"))?;
    num(serve, "workload_queries").map_err(|e| format!("serve: {e}"))?;
    text(serve, "algo").map_err(|e| format!("serve: {e}"))?;
    let clients = serve
        .get("clients")
        .and_then(Json::as_arr)
        .ok_or("serve: missing array `clients`")?;
    if clients.is_empty() {
        return Err("serve: `clients` must not be empty".into());
    }
    for (i, c) in clients.iter().enumerate() {
        let ctx = |e: String| format!("serve.clients[{i}]: {e}");
        num(c, "clients").map_err(ctx)?;
        num(c, "total_queries").map_err(ctx)?;
        num(c, "secs").map_err(ctx)?;
        let qps = num(c, "qps").map_err(ctx)?;
        if !qps.is_finite() || qps <= 0.0 {
            return Err(format!("serve.clients[{i}]: qps = {qps} is not > 0"));
        }
        // Latency quantiles exist from PR 8 on (`qps` is kept but
        // deprecated); earlier committed trajectory files must validate.
        if pr >= 8.0 {
            let p50 = num(c, "p50_ms").map_err(ctx)?;
            let p99 = num(c, "p99_ms").map_err(ctx)?;
            let p999 = num(c, "p999_ms").map_err(ctx)?;
            if !p50.is_finite() || p50 <= 0.0 || p50 > p99 || p99 > p999 {
                return Err(format!(
                    "serve.clients[{i}]: p50_ms = {p50} / p99_ms = {p99} / p999_ms = {p999} \
                     are not ordered positive latencies"
                ));
            }
        }
    }
    // Pipelined serve points exist from PR 9 on, and carry the event
    // core's acceptance gate: batch-amortized p99 at depth 32 must be no
    // worse than the threaded core's p99 at depth 1 — pipelining that
    // fails to amortize latency is a regression, not a feature.
    if pr >= 9.0 {
        let pipeline = serve
            .get("pipeline")
            .and_then(Json::as_arr)
            .ok_or("serve: missing array `pipeline` (required from pr 9 on)")?;
        let mut threaded_d1_p99 = None;
        let mut event_d32_p99 = None;
        for (i, p) in pipeline.iter().enumerate() {
            let ctx = |e: String| format!("serve.pipeline[{i}]: {e}");
            let mode = text(p, "mode").map_err(ctx)?;
            if mode != "threaded" && mode != "event" {
                return Err(format!(
                    "serve.pipeline[{i}]: mode `{mode}` is neither `threaded` nor `event`"
                ));
            }
            let depth = num(p, "depth").map_err(ctx)?;
            num(p, "total_queries").map_err(ctx)?;
            num(p, "secs").map_err(ctx)?;
            let qps = num(p, "qps").map_err(ctx)?;
            if !qps.is_finite() || qps <= 0.0 {
                return Err(format!("serve.pipeline[{i}]: qps = {qps} is not > 0"));
            }
            let p50 = num(p, "p50_ms").map_err(ctx)?;
            let p99 = num(p, "p99_ms").map_err(ctx)?;
            let p999 = num(p, "p999_ms").map_err(ctx)?;
            if !p50.is_finite() || p50 <= 0.0 || p50 > p99 || p99 > p999 {
                return Err(format!(
                    "serve.pipeline[{i}]: p50_ms = {p50} / p99_ms = {p99} / p999_ms = {p999} \
                     are not ordered positive latencies"
                ));
            }
            if mode == "threaded" && depth == 1.0 {
                threaded_d1_p99 = Some(p99);
            }
            if mode == "event" && depth == 32.0 {
                event_d32_p99 = Some(p99);
            }
        }
        let threaded =
            threaded_d1_p99.ok_or("serve.pipeline: missing the threaded depth-1 baseline point")?;
        let event = event_d32_p99.ok_or("serve.pipeline: missing the event depth-32 point")?;
        if event > threaded {
            return Err(format!(
                "serve.pipeline: event-core p99 at depth 32 ({event} ms) exceeds the \
                 threaded-core p99 at depth 1 ({threaded} ms) — pipelining must amortize"
            ));
        }
    }
    // The `store` section exists from PR 4 on; earlier committed
    // trajectory files (BENCH_2/BENCH_3) must still validate.
    let store = match doc.get("store") {
        Some(store) => store,
        None if pr < 4.0 => {
            return Ok(format!(
                "{} stage measurements, {} serve points, pre-PR4 document without a store section",
                measurements.len(),
                clients.len()
            ))
        }
        None => return Err("missing object `store` (required from pr 4 on)".into()),
    };
    let points = store
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("store: missing array `points`")?;
    for (i, p) in points.iter().enumerate() {
        let ctx = |e: String| format!("store.points[{i}]: {e}");
        num(p, "rows").map_err(ctx)?;
        num(p, "bytes").map_err(ctx)?;
        for key in [
            "write_mbps",
            "read_mbps",
            "cold_publish_secs",
            "warm_load_secs",
        ] {
            let v = num(p, key).map_err(ctx)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("store.points[{i}]: {key} = {v} is not > 0"));
            }
        }
    }
    // The `verify` section exists from PR 5 on; earlier committed
    // trajectory files (BENCH_2/3/4) must still validate.
    let verify = match doc.get("verify") {
        Some(verify) => verify,
        None if pr < 5.0 => {
            return Ok(format!(
                "{} stage measurements, {} serve points, {} store points, \
                 pre-PR5 document without a verify section",
                measurements.len(),
                clients.len(),
                points.len()
            ))
        }
        None => return Err("missing object `verify` (required from pr 5 on)".into()),
    };
    let verify_points = verify
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("verify: missing array `points`")?;
    for (i, p) in verify_points.iter().enumerate() {
        let ctx = |e: String| format!("verify.points[{i}]: {e}");
        num(p, "rows").map_err(ctx)?;
        text(p, "algo").map_err(ctx)?;
        for key in ["publish_secs", "verify_secs"] {
            let v = num(p, key).map_err(ctx)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("verify.points[{i}]: {key} = {v} is not > 0"));
            }
        }
    }
    // The `faults` section exists from PR 6 on; earlier committed
    // trajectory files (BENCH_2..5) must still validate.
    let faults = match doc.get("faults") {
        Some(faults) => faults,
        None if pr < 6.0 => {
            return Ok(format!(
                "{} stage measurements, {} serve points, {} store points, {} verify points, \
                 pre-PR6 document without a faults section",
                measurements.len(),
                clients.len(),
                points.len(),
                verify_points.len()
            ))
        }
        None => return Err("missing object `faults` (required from pr 6 on)".into()),
    };
    let overload = faults
        .get("overload")
        .and_then(Json::as_arr)
        .ok_or("faults: missing array `overload`")?;
    // A serve-only document (empty measurements) may skip the faults
    // measurements; a full or smoke run must carry them.
    if overload.is_empty() && !measurements.is_empty() {
        return Err("faults: `overload` must not be empty".into());
    }
    for (i, p) in overload.iter().enumerate() {
        let ctx = |e: String| format!("faults.overload[{i}]: {e}");
        p.get("shedding")
            .and_then(Json::as_bool)
            .ok_or_else(|| format!("faults.overload[{i}]: missing/ill-typed bool `shedding`"))?;
        num(p, "clients").map_err(ctx)?;
        num(p, "queue").map_err(ctx)?;
        num(p, "total_queries").map_err(ctx)?;
        let sheds = num(p, "sheds").map_err(ctx)?;
        if sheds < 0.0 {
            return Err(format!("faults.overload[{i}]: sheds = {sheds} is negative"));
        }
        let p50 = num(p, "p50_ms").map_err(ctx)?;
        let p99 = num(p, "p99_ms").map_err(ctx)?;
        if !p50.is_finite() || p50 <= 0.0 || !p99.is_finite() || p99 < p50 {
            return Err(format!(
                "faults.overload[{i}]: p50_ms = {p50} / p99_ms = {p99} are not sane latencies"
            ));
        }
    }
    if !overload.is_empty() {
        let degraded = faults
            .get("degraded")
            .ok_or("faults: missing object `degraded`")?;
        num(degraded, "queries").map_err(|e| format!("faults.degraded: {e}"))?;
        let qps = num(degraded, "count_qps").map_err(|e| format!("faults.degraded: {e}"))?;
        if !qps.is_finite() || qps <= 0.0 {
            return Err(format!("faults.degraded: count_qps = {qps} is not > 0"));
        }
        let recovery = faults
            .get("recovery")
            .ok_or("faults: missing object `recovery`")?;
        num(recovery, "rows").map_err(|e| format!("faults.recovery: {e}"))?;
        let secs = num(recovery, "secs").map_err(|e| format!("faults.recovery: {e}"))?;
        if !secs.is_finite() || secs <= 0.0 {
            return Err(format!("faults.recovery: secs = {secs} is not > 0"));
        }
    }
    // The `catalog` section exists from PR 7 on; earlier committed
    // trajectory files (BENCH_2..6) must still validate.
    let catalog = match doc.get("catalog") {
        Some(catalog) => catalog,
        None if pr < 7.0 => {
            return Ok(format!(
                "{} stage measurements, {} serve points, {} store points, {} verify points, \
                 {} overload points, pre-PR7 document without a catalog section",
                measurements.len(),
                clients.len(),
                points.len(),
                verify_points.len(),
                overload.len()
            ))
        }
        None => return Err("missing object `catalog` (required from pr 7 on)".into()),
    };
    num(catalog, "workload_queries").map_err(|e| format!("catalog: {e}"))?;
    let catalog_points = catalog
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("catalog: missing array `points`")?;
    // A serve-only document (empty measurements) may skip the catalog
    // measurements; a full or smoke run must carry them.
    if catalog_points.is_empty() && !measurements.is_empty() {
        return Err("catalog: `points` must not be empty".into());
    }
    for (i, p) in catalog_points.iter().enumerate() {
        let ctx = |e: String| format!("catalog.points[{i}]: {e}");
        num(p, "rows").map_err(ctx)?;
        text(p, "algo").map_err(ctx)?;
        for key in ["scan_qps", "catalog_qps"] {
            let v = num(p, key).map_err(ctx)?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("catalog.points[{i}]: {key} = {v} is not > 0"));
            }
        }
    }
    if !catalog_points.is_empty() {
        let serve = catalog
            .get("serve")
            .ok_or("catalog: missing object `serve`")?;
        num(serve, "rows").map_err(|e| format!("catalog.serve: {e}"))?;
        num(serve, "queries").map_err(|e| format!("catalog.serve: {e}"))?;
        for key in ["scan_qps", "catalog_qps"] {
            let v = num(serve, key).map_err(|e| format!("catalog.serve: {e}"))?;
            if !v.is_finite() || v <= 0.0 {
                return Err(format!("catalog.serve: {key} = {v} is not > 0"));
            }
        }
    }
    // The `obs` overhead section exists from PR 8 on; earlier committed
    // trajectory files (BENCH_2..7) must still validate, and a serve-only
    // document (empty measurements) may skip the measurement.
    match doc.get("obs") {
        Some(obs) => {
            for key in ["rows", "queries", "passes"] {
                num(obs, key).map_err(|e| format!("obs: {e}"))?;
            }
            for key in ["on_secs", "off_secs"] {
                let v = num(obs, key).map_err(|e| format!("obs: {e}"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(format!("obs: {key} = {v} is not > 0"));
                }
            }
            let frac = num(obs, "overhead_frac").map_err(|e| format!("obs: {e}"))?;
            // The observability contract itself: timings must cost less
            // than 5% of the serving path (DESIGN.md §14).
            if !frac.is_finite() || !(0.0..=0.05).contains(&frac) {
                return Err(format!(
                    "obs: overhead_frac = {frac} is outside the 5% observability budget"
                ));
            }
        }
        None if pr < 8.0 || measurements.is_empty() => {}
        None => return Err("missing object `obs` (required from pr 8 on)".into()),
    }
    Ok(format!(
        "{} stage measurements, {} serve points, {} store points, {} verify points, \
         {} overload points, {} catalog points",
        measurements.len(),
        clients.len(),
        points.len(),
        verify_points.len(),
        overload.len(),
        catalog_points.len()
    ))
}

/// Runs `f` `iters` times and returns the best wall-clock duration.
fn best_of<T>(iters: usize, mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let (_, d) = time_it(&mut f);
        best = best.min(d);
    }
    best
}

/// Times every stage at the current thread count.
fn measure_stages(
    table: &Table,
    qi: &[usize],
    rows: usize,
    threads: usize,
    iters: usize,
    out: &mut Vec<Measurement>,
) {
    let mut push = |stage: &'static str, d: Duration| {
        out.push(Measurement {
            stage,
            rows,
            threads,
            secs: d.as_secs_f64(),
        });
    };

    // Stage inputs, computed once (the stages themselves are timed).
    let model = BetaLikeness::new(BETA).expect("valid beta");
    let dist = table.sa_distribution(SA);
    let keys = hilbert_keys(table, qi);
    let buckets = dp_partition(&dist, &model, 0.25);
    let sizes: Vec<u64> = buckets.iter().map(|b| b.count).collect();
    let eligibility = BetaEligibility::from_buckets(&buckets);
    let templates = bi_split(&sizes, &eligibility).expect("root eligible");
    let bucket_rows = rows_per_bucket(table, SA, &buckets);
    let partition = burel(table, qi, SA, &BurelConfig::new(BETA).with_seed(42)).expect("BUREL");

    push("hilbert_keys", best_of(iters, || hilbert_keys(table, qi)));
    push(
        "bucketize",
        best_of(iters, || dp_partition(&dist, &model, 0.25)),
    );
    push(
        "ectree",
        best_of(iters, || bi_split(&sizes, &eligibility).expect("eligible")),
    );
    push(
        "materialize",
        best_of(iters, || {
            let mut mat = Materializer::with_seed_choice(
                &keys,
                &bucket_rows,
                FillStrategy::HilbertNearest,
                SeedChoice::Random,
            );
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let ecs: Vec<Vec<RowId>> = templates
                .iter()
                .map(|t| mat.fill(&t.counts, &mut rng))
                .collect();
            ecs
        }),
    );
    push(
        "audit",
        best_of(iters, || audit_partition(table, &partition, METRIC)),
    );
    push(
        "naive_bayes",
        best_of(iters, || naive_bayes_attack(table, &partition)),
    );
    push(
        "burel_e2e",
        best_of(iters, || {
            burel(table, qi, SA, &BurelConfig::new(BETA).with_seed(42)).expect("BUREL")
        }),
    );
}

/// One serve-throughput point: `clients` concurrent TCP clients each
/// replaying the workload once.
struct ServePoint {
    clients: usize,
    total_queries: usize,
    secs: f64,
    /// Aggregate throughput. Deprecated since PR 8 (a single-client rate
    /// says little once latency quantiles are recorded); kept so older
    /// trajectory tooling keeps parsing the document.
    qps: f64,
    /// Client-observed per-request latency quantiles, merged across all
    /// client threads through one log-bucketed obs histogram.
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

/// One pipelined serving point: a single client writing `depth` requests
/// per batch before reading any response, against one of the two server
/// cores. `p*_ms` are batch-amortized per-request latencies
/// (`batch_elapsed / batch_len`), the quantity pipelining improves.
struct PipelinePoint {
    /// `"threaded"` or `"event"` — which core served the workload.
    mode: &'static str,
    depth: usize,
    total_queries: usize,
    secs: f64,
    qps: f64,
    p50_ms: f64,
    p99_ms: f64,
    p999_ms: f64,
}

/// The serve-throughput section of the trajectory document.
struct ServeMeasurement {
    dataset_rows: usize,
    workload_queries: usize,
    points: Vec<ServePoint>,
    /// Pipelined points, mode × depth ∈ {1, 32} (PR 9 on). The schema
    /// checker holds the event core's batch-amortized p99 at depth 32 to
    /// be no worse than the threaded core's p99 at depth 1.
    pipeline: Vec<PipelinePoint>,
}

/// Publishes one BUREL artifact on an in-process `betalike-server` and
/// measures count-query throughput at each client count. Every response is
/// checked for `ok`, so a served error would fail the harness rather than
/// inflate the rate.
fn measure_serve(rows: usize, num_queries: usize, client_counts: &[usize]) -> ServeMeasurement {
    use betalike_server::{
        serve, Algo, Client, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
    };

    let max_clients = client_counts.iter().copied().max().unwrap_or(1);
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: max_clients + 1,
        preload: None,
        data_dir: None,
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();
    let spec = DatasetSpec::Census { rows, seed: 42 };
    let request = PublishRequest::new(spec, Algo::Burel);
    let handle = {
        let mut client = Client::connect(addr).expect("connect");
        client.publish(&request).expect("publish").handle
    };

    // The request lines every client replays (exact=false: measure the
    // serving path, not the ground-truth scan).
    let table = census::generate(&CensusConfig::new(rows, 42));
    let queries = betalike_query::generate_workload(
        &table,
        &betalike_query::WorkloadConfig {
            qi_pool: (0..3).collect(),
            sa: SA,
            lambda: 2,
            theta: 0.1,
            num_queries,
            seed: 7,
        },
    );
    let lines: Vec<String> = queries
        .iter()
        .map(|q| {
            CountRequest {
                handle: handle.clone(),
                qi_preds: q.qi_preds.clone(),
                sa_lo: q.sa_pred.lo,
                sa_hi: q.sa_pred.hi,
                exact: false,
            }
            .to_json()
            .compact()
        })
        .collect();

    let mut points = Vec::new();
    for &clients in client_counts {
        // One histogram shared by every client thread: atomic buckets, so
        // recording from N threads needs no locking and the quantiles are
        // the merged client-observed distribution.
        let latency = betalike_obs::Histogram::new();
        let (_, elapsed) = betalike_bench::time_it(|| {
            // betalike-lint: allow(D3, reason = "perf harness simulates N independent TCP clients; the worker pool cannot model separate connections")
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..clients)
                    .map(|_| {
                        let lines = &lines;
                        let latency = &latency;
                        s.spawn(move || {
                            let mut client = Client::connect(addr).expect("connect");
                            for line in lines {
                                let t0 = std::time::Instant::now();
                                let response = client.call_raw(line).expect("count");
                                latency.record(t0.elapsed().as_nanos() as u64);
                                assert!(
                                    response.contains("\"ok\":true"),
                                    "served error during perf: {response}"
                                );
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().expect("client thread");
                }
            });
        });
        let total = clients * lines.len();
        let secs = elapsed.as_secs_f64();
        let (p50, p99, p999) = latency.snapshot().p50_p99_p999();
        points.push(ServePoint {
            clients,
            total_queries: total,
            secs,
            qps: total as f64 / secs.max(1e-12),
            p50_ms: p50 as f64 / 1e6,
            p99_ms: p99 as f64 / 1e6,
            p999_ms: p999 as f64 / 1e6,
        });
    }
    // Pipelined points: one client, batches of `depth` requests written
    // before any response is read, batch-amortized per-request latency.
    // The threaded core serves pipelined batches serially (requests are
    // answered one line at a time), so its depth-1 point is the baseline
    // the event core's depth-32 point is held against.
    let mut pipeline = Vec::new();
    let measure_pipelined = |addr: std::net::SocketAddr, mode: &'static str, depth: usize| {
        let latency = betalike_obs::Histogram::new();
        let mut client = Client::connect(addr).expect("connect pipelined");
        let (_, elapsed) = betalike_bench::time_it(|| {
            for batch in lines.chunks(depth) {
                let t0 = std::time::Instant::now();
                let responses = client.pipeline_raw(batch).expect("pipelined batch");
                let amortized = t0.elapsed().as_nanos() as u64 / batch.len() as u64;
                for response in &responses {
                    latency.record(amortized);
                    assert!(
                        response.contains("\"ok\":true"),
                        "served error during pipelined perf: {response}"
                    );
                }
            }
        });
        let secs = elapsed.as_secs_f64();
        let (p50, p99, p999) = latency.snapshot().p50_p99_p999();
        PipelinePoint {
            mode,
            depth,
            total_queries: lines.len(),
            secs,
            qps: lines.len() as f64 / secs.max(1e-12),
            p50_ms: p50 as f64 / 1e6,
            p99_ms: p99 as f64 / 1e6,
            p999_ms: p999 as f64 / 1e6,
        }
    };
    for depth in [1, 32] {
        pipeline.push(measure_pipelined(addr, "threaded", depth));
    }
    server.shutdown_and_join();

    let event_server = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        event_loops: 2,
        ..Default::default()
    })
    .expect("bind the event core");
    {
        let mut client = Client::connect(event_server.addr()).expect("connect");
        client.publish(&request).expect("publish on the event core");
    }
    for depth in [1, 32] {
        pipeline.push(measure_pipelined(event_server.addr(), "event", depth));
    }
    event_server.shutdown_and_join();

    ServeMeasurement {
        dataset_rows: rows,
        workload_queries: num_queries,
        points,
        pipeline,
    }
}

/// The `obs` section: what request timing itself costs. Criterion for the
/// whole observability layer — DESIGN.md §14 promises that per-request
/// timings stay under 5% of the serving path, and the schema checker
/// holds every emitted document to it.
struct ObsOverhead {
    rows: usize,
    queries: usize,
    passes: usize,
    /// Best-pass wall clock replaying the workload with timings on.
    on_secs: f64,
    /// Best-pass wall clock against an `obs: false` server.
    off_secs: f64,
    /// `max(0, (on - off) / off)` over the best passes.
    overhead_frac: f64,
}

/// Replays one warm count workload against two in-process servers — one
/// with request timings, one `obs: false` — and reports the fractional
/// wall-clock cost of the timed path. Both servers run with the result
/// cache disabled so every request pays the full lookup + catalog answer
/// (a cache-hit replay would shrink the denominator and overstate the
/// overhead), and each gets one untimed warm-up replay first. Passes
/// alternate on/off and the best pass per server is compared, so a
/// background hiccup lands on one pass, not one server.
fn measure_obs_overhead(rows: usize, num_queries: usize, passes: usize) -> ObsOverhead {
    use betalike_server::{
        serve, Algo, Client, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
    };

    let setup = |obs: bool| {
        let server = serve(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            result_cache: 0,
            obs,
            ..Default::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.addr();
        let spec = DatasetSpec::Census { rows, seed: 42 };
        let handle = {
            let mut client = Client::connect(addr).expect("connect");
            client
                .publish(&PublishRequest::new(spec, Algo::Burel))
                .expect("publish")
                .handle
        };
        (server, addr, handle)
    };
    let (server_on, addr_on, handle_on) = setup(true);
    let (server_off, addr_off, handle_off) = setup(false);

    let table = census::generate(&CensusConfig::new(rows, 42));
    let workload = betalike_query::generate_workload(
        &table,
        &betalike_query::WorkloadConfig {
            qi_pool: (0..3).collect(),
            sa: SA,
            lambda: 2,
            theta: 0.1,
            num_queries,
            seed: 7,
        },
    );
    let lines_for = |handle: &str| -> Vec<String> {
        workload
            .iter()
            .map(|q| {
                CountRequest {
                    handle: handle.to_string(),
                    qi_preds: q.qi_preds.clone(),
                    sa_lo: q.sa_pred.lo,
                    sa_hi: q.sa_pred.hi,
                    exact: false,
                }
                .to_json()
                .compact()
            })
            .collect()
    };
    let lines_on = lines_for(&handle_on);
    let lines_off = lines_for(&handle_off);

    let mut client_on = Client::connect(addr_on).expect("connect");
    let mut client_off = Client::connect(addr_off).expect("connect");
    let replay = |client: &mut Client, lines: &[String]| {
        for line in lines {
            let response = client.call_raw(line).expect("count");
            assert!(
                response.contains("\"ok\":true"),
                "served error during obs overhead run: {response}"
            );
        }
    };
    // Warm-up: fault in the artifact and JIT-warm both connections.
    replay(&mut client_on, &lines_on);
    replay(&mut client_off, &lines_off);

    let (mut on_secs, mut off_secs) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..passes {
        let (_, on) = time_it(|| replay(&mut client_on, &lines_on));
        let (_, off) = time_it(|| replay(&mut client_off, &lines_off));
        on_secs = on_secs.min(on.as_secs_f64());
        off_secs = off_secs.min(off.as_secs_f64());
    }
    server_on.shutdown_and_join();
    server_off.shutdown_and_join();
    ObsOverhead {
        rows,
        queries: num_queries,
        passes,
        on_secs,
        off_secs,
        overhead_frac: ((on_secs - off_secs) / off_secs.max(1e-12)).max(0.0),
    }
}

/// One measured durability point: snapshot size and throughput plus the
/// cold-vs-warm publish comparison at one dataset size.
struct StorePoint {
    rows: usize,
    bytes: u64,
    write_mbps: f64,
    read_mbps: f64,
    cold_publish_secs: f64,
    warm_load_secs: f64,
}

/// Measures the `store` section: per dataset size, the cold artifact cost
/// (generate + BUREL + view build, from an empty registry — what every
/// restart used to pay) versus the warm path (`ArtifactStore::load` +
/// `persist::restore`), and raw snapshot write/read MB/s.
fn measure_store(row_grid: &[usize], iters: usize) -> Vec<StorePoint> {
    use betalike_server::artifact::Artifact;
    use betalike_server::{persist, Algo, DatasetSpec, PublishRequest, Registry};
    use betalike_store::ArtifactStore;

    let mut points = Vec::new();
    for &rows in row_grid {
        let request = PublishRequest::new(DatasetSpec::Census { rows, seed: 42 }, Algo::Burel);
        // Cold: a fresh registry per run, so dataset generation and the
        // Hilbert transform are paid like on a cold restart.
        let cold = best_of(iters, || {
            Artifact::publish(&Registry::new(), &request).expect("publish")
        });

        let registry = Registry::new();
        let artifact = Artifact::publish(&registry, &request).expect("publish");
        let snap = persist::snapshot(&artifact);
        let dir =
            std::env::temp_dir().join(format!("betalike-perf-store-{}-{rows}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (store, _) = ArtifactStore::open(&dir).expect("open data dir");
        let write = best_of(iters, || store.save(&snap).expect("save"));
        let entry = store.entry(&snap.params.handle).expect("saved");
        let read = best_of(iters, || {
            store
                .load(&snap.params.handle)
                .expect("load")
                .expect("stored")
        });
        let warm = best_of(iters, || {
            let loaded = store
                .load(&snap.params.handle)
                .expect("load")
                .expect("stored");
            persist::restore(loaded).expect("restore")
        });
        let _ = std::fs::remove_dir_all(&dir);

        let mb = entry.bytes as f64 / 1e6;
        points.push(StorePoint {
            rows,
            bytes: entry.bytes,
            write_mbps: mb / write.as_secs_f64().max(1e-12),
            read_mbps: mb / read.as_secs_f64().max(1e-12),
            cold_publish_secs: cold.as_secs_f64(),
            warm_load_secs: warm.as_secs_f64(),
        });
    }
    points
}

/// One measured conformance point: the independent oracle's verification
/// time versus the (warm-registry) publish time, per dataset size and
/// scheme.
struct VerifyPoint {
    rows: usize,
    algo: &'static str,
    publish_secs: f64,
    verify_secs: f64,
}

/// Measures the `verify` section: per dataset size, snapshot a BUREL and a
/// perturbation publication the way the durable store would and time the
/// independent conformance oracle's full verification of each, alongside
/// the warm publish cost for scale.
fn measure_verify(row_grid: &[usize], iters: usize) -> Vec<VerifyPoint> {
    use betalike_server::artifact::Artifact;
    use betalike_server::{persist, Algo, DatasetSpec, PublishRequest, Registry};

    let mut points = Vec::new();
    for &rows in row_grid {
        let registry = Registry::new();
        for algo in [Algo::Burel, Algo::Perturb] {
            let request = PublishRequest::new(DatasetSpec::Census { rows, seed: 42 }, algo);
            // Warm the dataset/geometry caches, then time the pipeline and
            // the oracle on equal footing.
            let artifact = Artifact::publish(&registry, &request).expect("publish");
            let publish = best_of(iters, || {
                Artifact::publish(&registry, &request).expect("publish")
            });
            let snap = persist::snapshot(&artifact);
            let verify = best_of(iters, || {
                let report = betalike_conformance::verify_snapshot(&snap);
                assert!(
                    report.pass(),
                    "perf artifact must verify: {}",
                    report.summary()
                );
                report
            });
            points.push(VerifyPoint {
                rows,
                algo: algo.as_str(),
                publish_secs: publish.as_secs_f64(),
                verify_secs: verify.as_secs_f64(),
            });
        }
    }
    points
}

/// One overload point: client-observed count latency with `clients`
/// concurrent connections against a 2-worker server, with or without the
/// bounded admission queue doing real shedding.
struct OverloadPoint {
    shedding: bool,
    clients: usize,
    queue: usize,
    /// Server-side shed counter (from `health`) after the flood.
    sheds: u64,
    total_queries: usize,
    p50_ms: f64,
    p99_ms: f64,
}

/// The `faults` section of the trajectory document.
struct FaultsMeasurement {
    overload: Vec<OverloadPoint>,
    degraded_queries: usize,
    /// Count throughput against a server whose store is degraded
    /// (read-only): reads must not pay for the broken disk.
    degraded_count_qps: f64,
    recovery_rows: usize,
    /// Process start → store recovery → first served count, over a data
    /// dir left behind by a simulated mid-save crash.
    recovery_secs: f64,
}

fn percentile_ms(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Measures the `faults` section: overload latency with and without
/// shedding, degraded-store read throughput, and post-crash recovery to
/// the first served answer.
fn measure_faults(rows: usize, num_queries: usize, flood_clients: usize) -> FaultsMeasurement {
    use betalike_faults::{ChaosVfs, FaultPlan, RetryPolicy};
    use betalike_server::artifact::Artifact;
    use betalike_server::{
        persist, serve, Algo, Client, CountRequest, DatasetSpec, PublishRequest, Registry,
        ServerConfig,
    };
    use betalike_store::disk::DEGRADED_AFTER;
    use betalike_store::ArtifactStore;
    use std::sync::Arc;
    use std::time::Instant;

    let spec = DatasetSpec::Census { rows, seed: 42 };
    let request = PublishRequest::new(spec.clone(), Algo::Burel);
    let table = census::generate(&CensusConfig::new(rows, 42));
    let workload = betalike_query::generate_workload(
        &table,
        &betalike_query::WorkloadConfig {
            qi_pool: (0..3).collect(),
            sa: SA,
            lambda: 2,
            theta: 0.1,
            num_queries,
            seed: 7,
        },
    );
    let lines_for = |handle: &str| -> Vec<String> {
        workload
            .iter()
            .map(|q| {
                CountRequest {
                    handle: handle.to_string(),
                    qi_preds: q.qi_preds.clone(),
                    sa_lo: q.sa_pred.lo,
                    sa_hi: q.sa_pred.hi,
                    exact: false,
                }
                .to_json()
                .compact()
            })
            .collect()
    };

    // --- Overload: flood 2 workers with more clients than seats. ---
    let mut overload = Vec::new();
    for (shedding, queue) in [(true, 2usize), (false, 4096usize)] {
        let server = serve(&ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            queue,
            ..Default::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.addr();
        let handle = {
            let mut client = Client::connect(addr).expect("connect");
            client.publish(&request).expect("publish").handle
        };
        let lines = lines_for(&handle);
        let mut latencies: Vec<f64> = Vec::new();
        // betalike-lint: allow(D3, reason = "the overload bench simulates N independent TCP clients; the worker pool cannot model separate connections")
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..flood_clients)
                .map(|c| {
                    let lines = &lines;
                    s.spawn(move || {
                        let policy = RetryPolicy::standard(12, c as u64);
                        let mut lat = Vec::with_capacity(lines.len());
                        let mut conn: Option<Client> = None;
                        for line in lines {
                            let t0 = Instant::now();
                            let mut attempt = 0u32;
                            loop {
                                let client = match conn.as_mut() {
                                    Some(client) => client,
                                    None => {
                                        conn = Some(Client::connect(addr).expect("connect"));
                                        conn.as_mut().expect("just connected")
                                    }
                                };
                                match client.call_raw(line) {
                                    Ok(resp) if resp.contains("\"retryable\":true") => {
                                        conn = None;
                                    }
                                    Ok(resp) => {
                                        assert!(
                                            resp.contains("\"ok\":true"),
                                            "served error during overload bench: {resp}"
                                        );
                                        break;
                                    }
                                    Err(_) => conn = None,
                                }
                                attempt += 1;
                                assert!(attempt < 200, "overload bench cannot make progress");
                                std::thread::sleep(Duration::from_millis(policy.delay_ms(attempt)));
                            }
                            lat.push(t0.elapsed().as_secs_f64() * 1e3);
                        }
                        lat
                    })
                })
                .collect();
            for h in handles {
                latencies.extend(h.join().expect("flood client"));
            }
        });
        let sheds = {
            let mut client = Client::connect(addr).expect("connect");
            client
                .health()
                .expect("health")
                .get("shed")
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        server.shutdown_and_join();
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        overload.push(OverloadPoint {
            shedding,
            clients: flood_clients,
            queue,
            sheds,
            total_queries: latencies.len(),
            p50_ms: percentile_ms(&latencies, 0.50),
            p99_ms: percentile_ms(&latencies, 0.99),
        });
    }

    // --- Degraded store: reads must keep full speed while writes fail. ---
    let dir = std::env::temp_dir().join(format!(
        "betalike-perf-degraded-{}-{rows}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        data_dir: Some(dir.clone()),
        vfs: Some(chaos.clone()),
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let addr = server.addr();
    let mut client = Client::connect(addr).expect("connect");
    let handle = client.publish(&request).expect("publish").handle;
    // Injected write failures trip the store into degraded (read-only).
    chaos.set_plan(FaultPlan::FailWrites);
    for i in 0..DEGRADED_AFTER {
        let broken = PublishRequest::new(
            DatasetSpec::Census {
                rows,
                seed: 100 + u64::from(i),
            },
            Algo::Burel,
        );
        client
            .publish(&broken)
            .expect("publish computes; persist fails");
    }
    let lines = lines_for(&handle);
    let (_, elapsed) = betalike_bench::time_it(|| {
        for line in &lines {
            let resp = client.call_raw(line).expect("count");
            assert!(
                resp.contains("\"ok\":true"),
                "degraded reads must keep serving: {resp}"
            );
        }
    });
    let degraded_count_qps = lines.len() as f64 / elapsed.as_secs_f64().max(1e-12);
    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);

    // --- Recovery: crash mid-save, then time restart → first answer. ---
    let dir = std::env::temp_dir().join(format!(
        "betalike-perf-recovery-{}-{rows}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let registry = Registry::new();
    let artifact = Artifact::publish(&registry, &request).expect("publish");
    let snap = persist::snapshot(&artifact);
    let second = persist::snapshot(
        &Artifact::publish(
            &registry,
            &PublishRequest::new(DatasetSpec::Census { rows, seed: 43 }, Algo::Burel),
        )
        .expect("publish"),
    );
    {
        let chaos = Arc::new(ChaosVfs::new(FaultPlan::None));
        let (store, _) = ArtifactStore::open_with(&dir, chaos.clone()).expect("open");
        store.save(&snap).expect("save committed artifact");
        // Power loss on the next syscall: the second save tears mid-write,
        // leaving a stale tempfile for recovery to sweep.
        chaos.set_plan(FaultPlan::CrashAt(chaos.ops()));
        let _ = store.save(&second);
    }
    let count_line = lines_for(&snap.params.handle)
        .into_iter()
        .next()
        .expect("one query");
    let t0 = Instant::now();
    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        data_dir: Some(dir.clone()),
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let resp = client.call_raw(&count_line).expect("count");
    assert!(
        resp.contains("\"ok\":true"),
        "post-crash count must serve from the recovered store: {resp}"
    );
    let recovery_secs = t0.elapsed().as_secs_f64();
    drop(client);
    server.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);

    FaultsMeasurement {
        overload,
        degraded_queries: num_queries,
        degraded_count_qps,
        recovery_rows: rows,
        recovery_secs,
    }
}

/// One catalog point: count-query throughput through the aggregate
/// catalog versus the row-scan path, same workload, at one dataset size
/// and publication form.
struct CatalogPoint {
    rows: usize,
    algo: &'static str,
    scan_qps: f64,
    catalog_qps: f64,
}

/// The `catalog` section of the trajectory document.
struct CatalogMeasurement {
    workload_queries: usize,
    points: Vec<CatalogPoint>,
    serve_rows: usize,
    serve_queries: usize,
    /// End-to-end count qps of a `--no-catalog` server (1 client,
    /// `exact: true`, result cache off).
    serve_scan_qps: f64,
    /// Same server configuration with catalogs on.
    serve_catalog_qps: f64,
}

/// Measures the `catalog` section: per dataset size, exact-count
/// throughput over the same workload through `PublishedAnswerer::exact`
/// (catalog) versus `exact_scan` (row scan) for an EC-grouped BUREL
/// catalog and a block-grouped Anatomy catalog — asserting bitwise
/// equality before timing — plus the end-to-end server comparison.
fn measure_catalog(
    row_grid: &[usize],
    num_queries: usize,
    iters: usize,
    qi: &[usize],
    serve_rows: usize,
    serve_queries: usize,
) -> CatalogMeasurement {
    use betalike_query::{generate_workload, PublishedAnswerer, WorkloadConfig};
    use std::sync::Arc;

    let mut points = Vec::new();
    for &rows in row_grid {
        let table = Arc::new(census::generate(&CensusConfig::new(rows, 42)));
        let workload = generate_workload(
            &table,
            &WorkloadConfig {
                qi_pool: qi.to_vec(),
                sa: SA,
                lambda: 2,
                theta: 0.1,
                num_queries,
                seed: 7,
            },
        );
        let partition =
            burel(&table, qi, SA, &BurelConfig::new(BETA).with_seed(42)).expect("BUREL");
        let answerers = [
            (
                "burel",
                PublishedAnswerer::generalized(Arc::clone(&table), &partition),
            ),
            (
                "anatomy",
                PublishedAnswerer::anatomy(Arc::clone(&table), SA),
            ),
        ];
        for (algo, answerer) in &answerers {
            // The whole point is bit-identity: a fast wrong answer must
            // fail the harness before it gets timed.
            for q in &workload {
                assert_eq!(
                    answerer.exact(q),
                    answerer.exact_scan(q),
                    "catalog diverged from scan for {algo}"
                );
            }
            let scan = best_of(iters, || {
                workload
                    .iter()
                    .fold(0u64, |acc, q| acc.wrapping_add(answerer.exact_scan(q)))
            });
            let catalog = best_of(iters, || {
                workload
                    .iter()
                    .fold(0u64, |acc, q| acc.wrapping_add(answerer.exact(q)))
            });
            points.push(CatalogPoint {
                rows,
                algo,
                scan_qps: num_queries as f64 / scan.as_secs_f64().max(1e-12),
                catalog_qps: num_queries as f64 / catalog.as_secs_f64().max(1e-12),
            });
        }
    }

    let serve_scan_qps = catalog_serve_qps(serve_rows, serve_queries, qi, false);
    let serve_catalog_qps = catalog_serve_qps(serve_rows, serve_queries, qi, true);
    CatalogMeasurement {
        workload_queries: num_queries,
        points,
        serve_rows,
        serve_queries,
        serve_scan_qps,
        serve_catalog_qps,
    }
}

/// End-to-end count qps of one server configuration: publish a BUREL
/// artifact, replay `num_queries` exact counts over one TCP connection.
/// The result cache is off in both configurations so the comparison
/// isolates the answer path itself.
fn catalog_serve_qps(rows: usize, num_queries: usize, qi: &[usize], catalog: bool) -> f64 {
    use betalike_server::{
        serve, Algo, Client, CountRequest, DatasetSpec, PublishRequest, ServerConfig,
    };

    let server = serve(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        catalog,
        result_cache: 0,
        ..Default::default()
    })
    .expect("bind an ephemeral port");
    let mut client = Client::connect(server.addr()).expect("connect");
    let request = PublishRequest::new(DatasetSpec::Census { rows, seed: 42 }, Algo::Burel);
    let handle = client.publish(&request).expect("publish").handle;
    let table = census::generate(&CensusConfig::new(rows, 42));
    let workload = betalike_query::generate_workload(
        &table,
        &betalike_query::WorkloadConfig {
            qi_pool: qi.to_vec(),
            sa: SA,
            lambda: 2,
            theta: 0.1,
            num_queries,
            seed: 7,
        },
    );
    let lines: Vec<String> = workload
        .iter()
        .map(|q| {
            CountRequest {
                handle: handle.clone(),
                qi_preds: q.qi_preds.clone(),
                sa_lo: q.sa_pred.lo,
                sa_hi: q.sa_pred.hi,
                exact: true,
            }
            .to_json()
            .compact()
        })
        .collect();
    let (_, elapsed) = betalike_bench::time_it(|| {
        for line in &lines {
            let resp = client.call_raw(line).expect("count");
            assert!(
                resp.contains("\"ok\":true"),
                "served error during catalog bench: {resp}"
            );
        }
    });
    drop(client);
    server.shutdown_and_join();
    lines.len() as f64 / elapsed.as_secs_f64().max(1e-12)
}

/// Prints the catalog-vs-scan table.
fn print_catalog(catalog: &CatalogMeasurement) {
    println!(
        "catalog: exact-count throughput, aggregate catalog vs row scan \
         ({} queries/workload, bit-identical answers)",
        catalog.workload_queries
    );
    let rows: Vec<Vec<String>> = catalog
        .points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                p.algo.to_string(),
                format!("{:.0}", p.scan_qps),
                format!("{:.0}", p.catalog_qps),
                format!("{:.1}x", p.catalog_qps / p.scan_qps.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        &["rows", "algo", "scan qps", "catalog qps", "speedup"],
        &rows,
    );
    println!(
        "serve end-to-end ({} rows, {} exact counts, 1 client, cache off): \
         {:.0} qps without catalog, {:.0} qps with ({:.1}x)",
        catalog.serve_rows,
        catalog.serve_queries,
        catalog.serve_scan_qps,
        catalog.serve_catalog_qps,
        catalog.serve_catalog_qps / catalog.serve_scan_qps.max(1e-12)
    );
    println!();
}

/// Prints the resilience tables.
fn print_faults(faults: &FaultsMeasurement) {
    println!("faults: overload latency (2 workers) with vs without shedding");
    let rows: Vec<Vec<String>> = faults
        .overload
        .iter()
        .map(|p| {
            vec![
                if p.shedding { "bounded" } else { "unbounded" }.to_string(),
                p.queue.to_string(),
                p.clients.to_string(),
                p.total_queries.to_string(),
                p.sheds.to_string(),
                format!("{:.1}", p.p50_ms),
                format!("{:.1}", p.p99_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "queue", "depth", "clients", "queries", "sheds", "p50 ms", "p99 ms",
        ],
        &rows,
    );
    println!(
        "degraded store: {:.0} count qps over {} queries (reads keep serving)",
        faults.degraded_count_qps, faults.degraded_queries
    );
    println!(
        "post-crash recovery to first answer: {} ({} rows)",
        secs(Duration::from_secs_f64(faults.recovery_secs)),
        faults.recovery_rows
    );
    println!();
}

/// Prints the conformance table.
fn print_verify(points: &[VerifyPoint]) {
    println!("verify: independent conformance oracle vs warm publish");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                p.algo.to_string(),
                secs(Duration::from_secs_f64(p.publish_secs)),
                secs(Duration::from_secs_f64(p.verify_secs)),
                format!("{:.2}x", p.verify_secs / p.publish_secs.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        &["rows", "algo", "publish", "verify", "verify/publish"],
        &rows,
    );
    println!();
}

/// Prints the durability table.
fn print_store(points: &[StorePoint]) {
    println!("store: cold publish (BUREL from empty registry) vs warm snapshot load");
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.rows.to_string(),
                format!("{:.1} KB", p.bytes as f64 / 1e3),
                format!("{:.0}", p.write_mbps),
                format!("{:.0}", p.read_mbps),
                secs(Duration::from_secs_f64(p.cold_publish_secs)),
                secs(Duration::from_secs_f64(p.warm_load_secs)),
                format!("{:.1}x", p.cold_publish_secs / p.warm_load_secs.max(1e-12)),
            ]
        })
        .collect();
    print_table(
        &[
            "rows",
            "snapshot",
            "write MB/s",
            "read MB/s",
            "cold publish",
            "warm load",
            "cold/warm",
        ],
        &rows,
    );
    println!();
}

/// Prints the serve-throughput table.
fn print_serve(serve: &ServeMeasurement) {
    println!(
        "serve throughput: BUREL over census {} rows, {} queries/workload",
        serve.dataset_rows, serve.workload_queries
    );
    let rows: Vec<Vec<String>> = serve
        .points
        .iter()
        .map(|p| {
            vec![
                p.clients.to_string(),
                p.total_queries.to_string(),
                secs(Duration::from_secs_f64(p.secs)),
                format!("{:.0}", p.qps),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.3}", p.p999_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "clients",
            "queries",
            "secs",
            "queries/sec",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
        ],
        &rows,
    );
    println!();
    println!("pipelined (1 client, batch-amortized per-request latency):");
    let rows: Vec<Vec<String>> = serve
        .pipeline
        .iter()
        .map(|p| {
            vec![
                p.mode.to_string(),
                p.depth.to_string(),
                p.total_queries.to_string(),
                secs(Duration::from_secs_f64(p.secs)),
                format!("{:.0}", p.qps),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p99_ms),
                format!("{:.3}", p.p999_ms),
            ]
        })
        .collect();
    print_table(
        &[
            "core",
            "depth",
            "queries",
            "secs",
            "queries/sec",
            "p50 ms",
            "p99 ms",
            "p99.9 ms",
        ],
        &rows,
    );
    println!();
}

/// Prints the observability-overhead comparison.
fn print_obs_overhead(obs: &ObsOverhead) {
    println!(
        "observability overhead: {} count queries over census {} rows, best of {} passes\n\
         timings on {} / off {} -> {:.2}% overhead (budget 5%)",
        obs.queries,
        obs.rows,
        obs.passes,
        secs(Duration::from_secs_f64(obs.on_secs)),
        secs(Duration::from_secs_f64(obs.off_secs)),
        obs.overhead_frac * 100.0
    );
    println!();
}

/// Prints the per-stage serial/parallel/speedup table per dataset size.
fn print_measurements(measurements: &[Measurement], parallel_threads: usize) {
    let mut sizes: Vec<usize> = Vec::new();
    for m in measurements {
        if !sizes.contains(&m.rows) {
            sizes.push(m.rows);
        }
    }
    for &rows in &sizes {
        println!("rows = {rows}");
        let mut table_rows = Vec::new();
        let mut stages: Vec<&'static str> = Vec::new();
        for m in measurements.iter().filter(|m| m.rows == rows) {
            if !stages.contains(&m.stage) {
                stages.push(m.stage);
            }
        }
        for stage in stages {
            let find = |threads: usize| {
                measurements
                    .iter()
                    .find(|m| m.rows == rows && m.stage == stage && m.threads == threads)
                    .map(|m| m.secs)
            };
            let (Some(serial), Some(parallel)) = (find(1), find(parallel_threads)) else {
                continue;
            };
            table_rows.push(vec![
                stage.to_string(),
                secs(Duration::from_secs_f64(serial)),
                secs(Duration::from_secs_f64(parallel)),
                format!("{:.2}x", serial / parallel.max(1e-12)),
            ]);
        }
        print_table(
            &[
                "stage",
                "serial (s)",
                &format!("{parallel_threads} threads (s)"),
                "speedup",
            ],
            &table_rows,
        );
        println!();
    }
}

/// Renders the trajectory document.
#[allow(clippy::too_many_arguments)] // one argument per document section
fn to_json(
    measurements: &[Measurement],
    serve: &ServeMeasurement,
    store: &[StorePoint],
    verify: &[VerifyPoint],
    faults: Option<&FaultsMeasurement>,
    catalog: Option<&CatalogMeasurement>,
    obs: Option<&ObsOverhead>,
    cpus: usize,
    parallel_threads: usize,
    iters: usize,
    smoke: bool,
) -> Json {
    let cells: Vec<Json> = measurements
        .iter()
        .map(|m| {
            Json::Obj(vec![
                ("stage".into(), Json::Str(m.stage.into())),
                ("rows".into(), Json::Num(m.rows as f64)),
                ("threads".into(), Json::Num(m.threads as f64)),
                ("secs".into(), Json::Num(m.secs)),
            ])
        })
        .collect();
    let serve_points: Vec<Json> = serve
        .points
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("clients".into(), Json::Num(p.clients as f64)),
                ("total_queries".into(), Json::Num(p.total_queries as f64)),
                ("secs".into(), Json::Num(p.secs)),
                ("qps".into(), Json::Num(p.qps)),
                ("p50_ms".into(), Json::Num(p.p50_ms)),
                ("p99_ms".into(), Json::Num(p.p99_ms)),
                ("p999_ms".into(), Json::Num(p.p999_ms)),
            ])
        })
        .collect();
    let pipeline_points: Vec<Json> = serve
        .pipeline
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("mode".into(), Json::Str(p.mode.into())),
                ("depth".into(), Json::Num(p.depth as f64)),
                ("total_queries".into(), Json::Num(p.total_queries as f64)),
                ("secs".into(), Json::Num(p.secs)),
                ("qps".into(), Json::Num(p.qps)),
                ("p50_ms".into(), Json::Num(p.p50_ms)),
                ("p99_ms".into(), Json::Num(p.p99_ms)),
                ("p999_ms".into(), Json::Num(p.p999_ms)),
            ])
        })
        .collect();
    let store_points: Vec<Json> = store
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("rows".into(), Json::Num(p.rows as f64)),
                ("bytes".into(), Json::Num(p.bytes as f64)),
                ("write_mbps".into(), Json::Num(p.write_mbps)),
                ("read_mbps".into(), Json::Num(p.read_mbps)),
                ("cold_publish_secs".into(), Json::Num(p.cold_publish_secs)),
                ("warm_load_secs".into(), Json::Num(p.warm_load_secs)),
            ])
        })
        .collect();
    let verify_points: Vec<Json> = verify
        .iter()
        .map(|p| {
            Json::Obj(vec![
                ("rows".into(), Json::Num(p.rows as f64)),
                ("algo".into(), Json::Str(p.algo.into())),
                ("publish_secs".into(), Json::Num(p.publish_secs)),
                ("verify_secs".into(), Json::Num(p.verify_secs)),
            ])
        })
        .collect();
    let overload_points: Vec<Json> = faults
        .map(|f| {
            f.overload
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("shedding".into(), Json::Bool(p.shedding)),
                        ("clients".into(), Json::Num(p.clients as f64)),
                        ("queue".into(), Json::Num(p.queue as f64)),
                        ("sheds".into(), Json::Num(p.sheds as f64)),
                        ("total_queries".into(), Json::Num(p.total_queries as f64)),
                        ("p50_ms".into(), Json::Num(p.p50_ms)),
                        ("p99_ms".into(), Json::Num(p.p99_ms)),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    let catalog_points: Vec<Json> = catalog
        .map(|c| {
            c.points
                .iter()
                .map(|p| {
                    Json::Obj(vec![
                        ("rows".into(), Json::Num(p.rows as f64)),
                        ("algo".into(), Json::Str(p.algo.into())),
                        ("scan_qps".into(), Json::Num(p.scan_qps)),
                        ("catalog_qps".into(), Json::Num(p.catalog_qps)),
                    ])
                })
                .collect()
        })
        .unwrap_or_default();
    let mut catalog_members = vec![
        (
            "workload_queries".into(),
            Json::Num(catalog.map_or(0, |c| c.workload_queries) as f64),
        ),
        ("points".into(), Json::Arr(catalog_points)),
    ];
    if let Some(c) = catalog {
        catalog_members.push((
            "serve".into(),
            Json::Obj(vec![
                ("rows".into(), Json::Num(c.serve_rows as f64)),
                ("queries".into(), Json::Num(c.serve_queries as f64)),
                ("scan_qps".into(), Json::Num(c.serve_scan_qps)),
                ("catalog_qps".into(), Json::Num(c.serve_catalog_qps)),
            ]),
        ));
    }
    let mut faults_members = vec![("overload".into(), Json::Arr(overload_points))];
    if let Some(f) = faults {
        faults_members.push((
            "degraded".into(),
            Json::Obj(vec![
                ("queries".into(), Json::Num(f.degraded_queries as f64)),
                ("count_qps".into(), Json::Num(f.degraded_count_qps)),
            ]),
        ));
        faults_members.push((
            "recovery".into(),
            Json::Obj(vec![
                ("rows".into(), Json::Num(f.recovery_rows as f64)),
                ("secs".into(), Json::Num(f.recovery_secs)),
            ]),
        ));
    }
    let mut members = vec![
        ("pr".into(), Json::Num(9.0)),
        ("harness".into(), Json::Str("perf".into())),
        ("dataset".into(), Json::Str("CENSUS (synthetic)".into())),
        ("beta".into(), Json::Num(BETA)),
        ("cpus_visible".into(), Json::Num(cpus as f64)),
        (
            "parallel_threads".into(),
            Json::Num(parallel_threads as f64),
        ),
        ("iters".into(), Json::Num(iters as f64)),
        ("smoke".into(), Json::Bool(smoke)),
        ("measurements".into(), Json::Arr(cells)),
        (
            "serve".into(),
            Json::Obj(vec![
                ("dataset_rows".into(), Json::Num(serve.dataset_rows as f64)),
                (
                    "workload_queries".into(),
                    Json::Num(serve.workload_queries as f64),
                ),
                ("algo".into(), Json::Str("burel".into())),
                ("clients".into(), Json::Arr(serve_points)),
                ("pipeline".into(), Json::Arr(pipeline_points)),
            ]),
        ),
        (
            "store".into(),
            Json::Obj(vec![
                ("algo".into(), Json::Str("burel".into())),
                ("points".into(), Json::Arr(store_points)),
            ]),
        ),
        (
            "verify".into(),
            Json::Obj(vec![("points".into(), Json::Arr(verify_points))]),
        ),
        ("faults".into(), Json::Obj(faults_members)),
        ("catalog".into(), Json::Obj(catalog_members)),
    ];
    if let Some(o) = obs {
        members.push((
            "obs".into(),
            Json::Obj(vec![
                ("rows".into(), Json::Num(o.rows as f64)),
                ("queries".into(), Json::Num(o.queries as f64)),
                ("passes".into(), Json::Num(o.passes as f64)),
                ("on_secs".into(), Json::Num(o.on_secs)),
                ("off_secs".into(), Json::Num(o.off_secs)),
                ("overhead_frac".into(), Json::Num(o.overhead_frac)),
            ]),
        ));
    }
    Json::Obj(members)
}

//! E11 — the Section 7 table: the t-closeness and ℓ-diversity readings of
//! BUREL's output for β ∈ 1..5, relevant to the deFinetti-attack
//! discussion (Cormode measured the attack's success to collapse for
//! ℓ ≥ 5–7).
//!
//! ```text
//! cargo run --release -p betalike-bench --bin table_sec7 -- --rows 500000
//! ```

use betalike_bench::algos::{run_grid, QiGeometry, METRIC};
use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, qi_set, SA};
use betalike_metrics::audit::audit_partition;

fn main() {
    let args = ExpArgs::parse();
    let table = load_census(&args);
    let qi = qi_set(args.qi);
    println!(
        "Section 7 table: cross-model audit of BUREL output ({} rows)\n",
        table.num_rows()
    );
    let geo = QiGeometry::new(&table, &qi);
    let rows = run_grid(&[1.0, 2.0, 3.0, 4.0, 5.0], |&beta| {
        let p = geo.burel(SA, beta, args.seed).expect("BUREL");
        let audit = audit_partition(&table, &p, METRIC);
        vec![
            f(beta, 0),
            f(audit.max_closeness, 2),
            f(audit.avg_closeness, 2),
            f(audit.min_distinct_l as f64, 1),
            f(audit.avg_distinct_l, 1),
        ]
    });
    print_table(&["beta", "t", "Avg t", "l", "Avg l"], &rows);
    println!(
        "\n(paper: beta=1 -> t=0.02, l=19.0; beta=5 -> t=0.17, l=6.6;\n\
         t grows and l falls as beta is relaxed. For l >= 5 the deFinetti\n\
         attack's success rate is below 50% per Cormode's study.)"
    );
}

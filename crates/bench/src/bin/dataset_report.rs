//! E2 — reproduces Table 3 of the paper: the CENSUS dataset description,
//! plus the sensitive-attribute frequency profile the experiments rely on.
//!
//! ```text
//! cargo run --release -p betalike-bench --bin dataset_report -- --rows 500000
//! ```

use betalike_bench::cli::ExpArgs;
use betalike_bench::tablefmt::{f, print_table};
use betalike_bench::{load_census, time_it, SA};

fn main() {
    let args = ExpArgs::parse();
    let (table, gen_time) = time_it(|| load_census(&args));
    println!(
        "CENSUS dataset: {} tuples, seed {}, generated in {:.2}s\n",
        table.num_rows(),
        args.seed,
        gen_time.as_secs_f64()
    );

    // Table 3.
    let rows: Vec<Vec<String>> = table
        .schema()
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let kind = if i == SA {
                "sensitive attribute".to_string()
            } else if a.is_numeric() {
                "numerical".to_string()
            } else {
                format!(
                    "categorical ({})",
                    a.hierarchy().map(|h| h.height()).unwrap_or(0)
                )
            };
            vec![a.name().to_string(), a.cardinality().to_string(), kind]
        })
        .collect();
    println!("Table 3: attributes");
    print_table(&["Attribute", "Cardinality", "Type"], &rows);

    // SA frequency profile (the Section 6 prose).
    let dist = table.sa_distribution(SA);
    let mut indexed: Vec<(usize, f64)> = dist.freqs().iter().copied().enumerate().collect();
    indexed.sort_by(|a, b| a.1.total_cmp(&b.1));
    let (min_v, min_f) = indexed[0];
    let (max_v, max_f) = indexed[indexed.len() - 1];
    println!("\nSensitive attribute (salary class) profile:");
    print_table(
        &["Statistic", "Value"],
        &[
            vec!["distinct classes".into(), dist.support_size().to_string()],
            vec![
                format!("least frequent (class {min_v})"),
                format!("{}%", f(min_f * 100.0, 4)),
            ],
            vec![
                format!("most frequent (class {max_v})"),
                format!("{}%", f(max_f * 100.0, 4)),
            ],
            vec!["paper's least frequent".into(), "0.2018%".into()],
            vec!["paper's most frequent".into(), "4.8402%".into()],
            vec!["entropy (nats)".into(), f(dist.entropy(), 3)],
        ],
    );

    // The β = 1 sanity check from Section 6: e^{-1} ≈ 37% marks every class
    // infrequent, capping any EC frequency at 2 · max p.
    let cap = 2.0 * max_f;
    println!(
        "\nWith beta = 1: threshold e^-1 = 36.8% > max p, so every class is\n\
         'infrequent' and no EC frequency may exceed 2 x {}% = {}%.",
        f(max_f * 100.0, 2),
        f(cap * 100.0, 2)
    );
}

//! # betalike-hilbert
//!
//! A self-contained Hilbert space-filling-curve implementation used by the
//! BUREL anonymizer (Section 4.5 of *Publishing Microdata with a Robust
//! Privacy Guarantee*, VLDB 2012): tuples are mapped from the
//! multidimensional QI space to one-dimensional Hilbert values, so that
//! tuples close in QI space are likely to receive nearby Hilbert values and
//! the greedy EC-filling procedure picks tuples with small bounding boxes.
//!
//! The implementation follows John Skilling's transpose algorithm
//! (*Programming the Hilbert curve*, AIP Conf. Proc. 707, 2004): coordinates
//! are transformed in place between axes form and "transpose" form, and the
//! transpose form is bit-interleaved into a single `u128` key.
//!
//! **Limits.** A curve needs `dims ≥ 1` and `bits` in `1..=32`, and the key
//! must fit its `u128` carrier: `dims × bits ≤ 128`. So 16 dimensions are
//! possible at up to 8 bits each, and the full 32 bits are possible up to 4
//! dimensions ([`HilbertCurve::new`] returns [`HilbertError::BadBits`] /
//! [`HilbertError::KeyOverflow`] otherwise).
//!
//! ```
//! use betalike_hilbert::HilbertCurve;
//!
//! let curve = HilbertCurve::new(2, 4).unwrap();
//! let key = curve.index(&[3, 5]);
//! assert_eq!(curve.point(key), vec![3, 5]);
//! ```

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// Errors raised by [`HilbertCurve::new`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HilbertError {
    /// `dims` was zero.
    ZeroDims,
    /// `bits` was zero or above 32.
    BadBits(u32),
    /// `dims * bits` exceeded 128, the key width.
    KeyOverflow {
        /// Requested dimensions.
        dims: usize,
        /// Requested bits per dimension.
        bits: u32,
    },
}

impl fmt::Display for HilbertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HilbertError::ZeroDims => write!(f, "hilbert curve needs at least one dimension"),
            HilbertError::BadBits(b) => write!(f, "bits per dimension must be in 1..=32, got {b}"),
            HilbertError::KeyOverflow { dims, bits } => write!(
                f,
                "dims * bits = {} exceeds the 128-bit key width",
                *dims as u64 * *bits as u64
            ),
        }
    }
}

impl std::error::Error for HilbertError {}

/// A Hilbert curve over a `dims`-dimensional grid of side `2^bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HilbertCurve {
    dims: usize,
    bits: u32,
}

impl HilbertCurve {
    /// Creates a curve over `dims` dimensions with `bits` bits each.
    ///
    /// # Errors
    ///
    /// See [`HilbertError`].
    pub fn new(dims: usize, bits: u32) -> Result<Self, HilbertError> {
        if dims == 0 {
            return Err(HilbertError::ZeroDims);
        }
        if bits == 0 || bits > 32 {
            return Err(HilbertError::BadBits(bits));
        }
        if dims as u64 * bits as u64 > 128 {
            return Err(HilbertError::KeyOverflow { dims, bits });
        }
        Ok(HilbertCurve { dims, bits })
    }

    /// Smallest number of bits so a domain of `cardinality` codes fits on the
    /// grid side (at least 1).
    pub fn bits_for_cardinality(cardinality: usize) -> u32 {
        let c = cardinality.max(2) as u64;
        64 - (c - 1).leading_zeros()
    }

    /// Number of dimensions.
    #[inline]
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Bits per dimension.
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Largest valid coordinate (`2^bits − 1`).
    #[inline]
    pub fn max_coord(&self) -> u32 {
        if self.bits == 32 {
            u32::MAX
        } else {
            (1u32 << self.bits) - 1
        }
    }

    /// Largest index on the curve (`2^(dims·bits) − 1`).
    #[inline]
    pub fn max_index(&self) -> u128 {
        let total = self.dims as u32 * self.bits;
        if total == 128 {
            u128::MAX
        } else {
            (1u128 << total) - 1
        }
    }

    /// Maps a point to its position along the Hilbert curve.
    ///
    /// Allocates a scratch copy of `point` per call; bulk callers should
    /// prefer [`Self::index_in_place`], which reuses the caller's buffer.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != dims` or any coordinate exceeds
    /// [`Self::max_coord`].
    pub fn index(&self, point: &[u32]) -> u128 {
        let mut x: Vec<u32> = point.to_vec();
        self.index_in_place(&mut x)
    }

    /// Like [`Self::index`], but transforms `point` in place instead of
    /// allocating a scratch copy — the zero-allocation path for bulk key
    /// computation (BUREL maps every table row through this).
    ///
    /// On return `point` holds the curve's internal transpose form, not the
    /// original coordinates; callers are expected to refill it before the
    /// next use.
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != dims` or any coordinate exceeds
    /// [`Self::max_coord`].
    pub fn index_in_place(&self, point: &mut [u32]) -> u128 {
        assert_eq!(point.len(), self.dims, "point has wrong dimensionality");
        let max = self.max_coord();
        assert!(
            point.iter().all(|&c| c <= max),
            "coordinate exceeds the grid side"
        );
        self.axes_to_transpose(point);
        self.interleave(point)
    }

    /// Maps a curve position back to its point.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Self::max_index`].
    pub fn point(&self, index: u128) -> Vec<u32> {
        let mut out = vec![0u32; self.dims];
        self.point_into(index, &mut out);
        out
    }

    /// Like [`Self::point`] but writes into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`Self::max_index`] or the buffer length is
    /// not `dims`.
    pub fn point_into(&self, index: u128, out: &mut [u32]) {
        assert_eq!(
            out.len(),
            self.dims,
            "output buffer has wrong dimensionality"
        );
        assert!(index <= self.max_index(), "index beyond the curve");
        self.deinterleave(index, out);
        self.transpose_to_axes(out);
    }

    /// Skilling's AxestoTranspose: converts coordinates into the transpose
    /// representation of the Hilbert index.
    fn axes_to_transpose(&self, x: &mut [u32]) {
        let n = x.len();
        if self.bits < 2 && n == 1 {
            return;
        }
        // With one bit per dimension only the Gray-code step applies;
        // fall through: the loop below is skipped since m == 1.
        let m = 1u32 << (self.bits - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..n {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        // Gray encode.
        for i in 1..n {
            x[i] ^= x[i - 1];
        }
        let mut t = 0u32;
        q = m;
        while q > 1 {
            if x[n - 1] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    /// Skilling's TransposetoAxes: inverse of [`Self::axes_to_transpose`].
    fn transpose_to_axes(&self, x: &mut [u32]) {
        let n = x.len();
        if self.bits < 2 && n == 1 {
            return;
        }
        let top = 2u64 << (self.bits - 1);
        // Gray decode by H ^ (H/2).
        let t = x[n - 1] >> 1;
        for i in (1..n).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        // Undo excess work.
        let mut q = 2u64;
        while q != top {
            let p = (q - 1) as u32;
            let qb = q as u32;
            for i in (0..n).rev() {
                if x[i] & qb != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }

    /// Packs the transpose form into a single key, most significant bit
    /// first: bit `b-1` of `x[0]`, bit `b-1` of `x[1]`, …, bit `0` of
    /// `x[n-1]`.
    fn interleave(&self, x: &[u32]) -> u128 {
        let mut key = 0u128;
        for pos in (0..self.bits).rev() {
            for &xi in x {
                key = (key << 1) | u128::from((xi >> pos) & 1);
            }
        }
        key
    }

    /// Inverse of [`Self::interleave`].
    fn deinterleave(&self, key: u128, x: &mut [u32]) {
        x.fill(0);
        let total = self.bits * self.dims as u32;
        let mut shift = total;
        for pos in (0..self.bits).rev() {
            for xi in x.iter_mut() {
                shift -= 1;
                *xi |= (((key >> shift) & 1) as u32) << pos;
            }
        }
    }
}

/// Sorts `items` by the Hilbert index of the point produced by `coords`.
///
/// Convenience used by BUREL's `Retrieve`: `coords` maps an item to its
/// (already grid-scaled) QI coordinates; the sort is stable so equal keys
/// preserve input order, keeping results deterministic.
pub fn sort_by_hilbert<T, F>(curve: &HilbertCurve, items: &mut [T], mut coords: F)
where
    F: FnMut(&T) -> Vec<u32>,
{
    let mut keyed: Vec<(u128, usize)> = items
        .iter()
        .enumerate()
        .map(|(i, it)| (curve.index(&coords(it)), i))
        .collect();
    keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
    let order: Vec<usize> = keyed.into_iter().map(|(_, i)| i).collect();
    apply_permutation(items, &order);
}

/// Reorders `items` so that `items[k] = old_items[order[k]]`.
fn apply_permutation<T>(items: &mut [T], order: &[usize]) {
    debug_assert_eq!(items.len(), order.len());
    let mut visited = vec![false; items.len()];
    for start in 0..items.len() {
        if visited[start] || order[start] == start {
            visited[start] = true;
            continue;
        }
        // Rotate the cycle containing `start`: repeatedly swap the target
        // slot with the slot its content should come from.
        let mut cur = start;
        loop {
            let src = order[cur];
            visited[cur] = true;
            if visited[src] {
                break;
            }
            items.swap(cur, src);
            cur = src;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructor_validation() {
        assert_eq!(HilbertCurve::new(0, 4), Err(HilbertError::ZeroDims));
        assert_eq!(HilbertCurve::new(2, 0), Err(HilbertError::BadBits(0)));
        assert_eq!(HilbertCurve::new(2, 33), Err(HilbertError::BadBits(33)));
        assert_eq!(
            HilbertCurve::new(5, 32),
            Err(HilbertError::KeyOverflow { dims: 5, bits: 32 })
        );
        assert!(HilbertCurve::new(4, 32).is_ok());
        assert!(HilbertCurve::new(16, 8).is_ok());
    }

    /// The documented contract exactly: `bits` in `1..=32`, `dims ≥ 1`,
    /// `dims × bits ≤ 128` — probed at each boundary.
    #[test]
    fn constructor_boundaries() {
        // bits boundaries.
        assert!(HilbertCurve::new(1, 1).is_ok());
        assert!(HilbertCurve::new(1, 32).is_ok());
        assert_eq!(HilbertCurve::new(1, 33), Err(HilbertError::BadBits(33)));
        // Key-width boundary: 128 bits exactly is fine, 129 is not.
        assert!(HilbertCurve::new(128, 1).is_ok());
        assert_eq!(
            HilbertCurve::new(129, 1),
            Err(HilbertError::KeyOverflow { dims: 129, bits: 1 })
        );
        assert!(HilbertCurve::new(8, 16).is_ok());
        assert_eq!(
            HilbertCurve::new(9, 15),
            Err(HilbertError::KeyOverflow { dims: 9, bits: 15 })
        );
        // BadBits is reported before KeyOverflow when both would apply.
        assert_eq!(HilbertCurve::new(100, 0), Err(HilbertError::BadBits(0)));
        assert_eq!(HilbertCurve::new(100, 40), Err(HilbertError::BadBits(40)));
        // A maximal curve round-trips.
        let curve = HilbertCurve::new(128, 1).unwrap();
        let p: Vec<u32> = (0..128).map(|i| (i % 2) as u32).collect();
        assert_eq!(curve.point(curve.index(&p)), p);
    }

    #[test]
    fn bits_for_cardinality() {
        assert_eq!(HilbertCurve::bits_for_cardinality(0), 1);
        assert_eq!(HilbertCurve::bits_for_cardinality(1), 1);
        assert_eq!(HilbertCurve::bits_for_cardinality(2), 1);
        assert_eq!(HilbertCurve::bits_for_cardinality(3), 2);
        assert_eq!(HilbertCurve::bits_for_cardinality(4), 2);
        assert_eq!(HilbertCurve::bits_for_cardinality(79), 7);
        assert_eq!(HilbertCurve::bits_for_cardinality(128), 7);
        assert_eq!(HilbertCurve::bits_for_cardinality(129), 8);
    }

    #[test]
    fn canonical_2d_order_2_curve() {
        // The order-2 2D Hilbert curve visits these 16 cells; a classic
        // reference sequence (x, y).
        let curve = HilbertCurve::new(2, 2).unwrap();
        let expected = [
            (0, 0),
            (0, 1),
            (1, 1),
            (1, 0),
            (2, 0),
            (3, 0),
            (3, 1),
            (2, 1),
            (2, 2),
            (3, 2),
            (3, 3),
            (2, 3),
            (1, 3),
            (1, 2),
            (0, 2),
            (0, 3),
        ];
        let mut seen = std::collections::BTreeSet::new();
        let mut prev: Option<(u32, u32)> = None;
        for (h, _) in expected.iter().enumerate() {
            let p = curve.point(h as u128);
            let cell = (p[0], p[1]);
            assert!(seen.insert(cell), "cell revisited at {h}");
            if let Some((px, py)) = prev {
                let dist = cell.0.abs_diff(px) + cell.1.abs_diff(py);
                assert_eq!(dist, 1, "non-adjacent step at {h}");
            }
            prev = Some(cell);
            assert_eq!(curve.index(&[cell.0, cell.1]), h as u128);
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn full_coverage_and_adjacency_3d() {
        let curve = HilbertCurve::new(3, 2).unwrap();
        let total = curve.max_index() + 1;
        assert_eq!(total, 64);
        let mut seen = std::collections::BTreeSet::new();
        let mut prev: Option<Vec<u32>> = None;
        for h in 0..total {
            let p = curve.point(h);
            assert!(seen.insert(p.clone()), "cell visited twice");
            if let Some(q) = prev {
                // Consecutive curve positions must be grid neighbors
                // (Manhattan distance exactly 1) — the defining Hilbert
                // property.
                let dist: u32 = p.iter().zip(&q).map(|(&a, &b)| a.abs_diff(b)).sum();
                assert_eq!(dist, 1, "non-adjacent step at {h}");
            }
            prev = Some(p);
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn one_dimension_is_identity() {
        let curve = HilbertCurve::new(1, 8).unwrap();
        for v in [0u32, 1, 2, 100, 255] {
            assert_eq!(curve.index(&[v]), v as u128);
            assert_eq!(curve.point(v as u128), vec![v]);
        }
    }

    #[test]
    fn one_bit_two_dims_covers_grid() {
        let curve = HilbertCurve::new(2, 1).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for h in 0..4u128 {
            let p = curve.point(h);
            assert_eq!(curve.index(&p), h);
            seen.insert(p);
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn index_wrong_dims_panics() {
        HilbertCurve::new(2, 2).unwrap().index(&[0]);
    }

    #[test]
    #[should_panic(expected = "exceeds the grid side")]
    fn index_out_of_grid_panics() {
        HilbertCurve::new(2, 2).unwrap().index(&[4, 0]);
    }

    #[test]
    #[should_panic(expected = "beyond the curve")]
    fn point_out_of_curve_panics() {
        HilbertCurve::new(2, 2).unwrap().point(16);
    }

    #[test]
    fn locality_beats_row_major_on_average() {
        // Average index-distance of horizontal grid neighbors should be far
        // smaller for Hilbert than the row-major stride; a coarse locality
        // check of the property BUREL relies on.
        let curve = HilbertCurve::new(2, 5).unwrap();
        let side = 32u32;
        let mut hilbert_sum: f64 = 0.0;
        let mut count = 0.0;
        for x in 0..side - 1 {
            for y in 0..side {
                let a = curve.index(&[x, y]);
                let b = curve.index(&[x + 1, y]);
                hilbert_sum += a.abs_diff(b) as f64;
                count += 1.0;
            }
        }
        let rowmajor_avg = side as f64;
        assert!(hilbert_sum / count < rowmajor_avg * 0.9);
    }

    #[test]
    fn sort_by_hilbert_orders_points() {
        let curve = HilbertCurve::new(2, 2).unwrap();
        let mut pts = vec![[3u32, 0], [0, 0], [1, 1], [0, 1]];
        sort_by_hilbert(&curve, &mut pts, |p| p.to_vec());
        // In Skilling's convention the first axis moves first:
        // (0,0)=0, (1,0)=1, (1,1)=2, (0,1)=3, … so the order is below.
        assert_eq!(pts, vec![[0, 0], [1, 1], [0, 1], [3, 0]]);
    }

    #[test]
    fn index_in_place_matches_index() {
        let curve = HilbertCurve::new(3, 5).unwrap();
        let mut scratch = vec![0u32; 3];
        for p in [[0u32, 0, 0], [31, 31, 31], [13, 1, 9], [7, 30, 2]] {
            scratch.copy_from_slice(&p);
            assert_eq!(curve.index_in_place(&mut scratch), curve.index(&p));
        }
    }

    #[test]
    #[should_panic(expected = "wrong dimensionality")]
    fn index_in_place_wrong_dims_panics() {
        let mut p = [0u32; 3];
        HilbertCurve::new(2, 2).unwrap().index_in_place(&mut p);
    }

    #[test]
    fn apply_permutation_cycles() {
        let mut v = vec!["a", "b", "c", "d", "e"];
        apply_permutation(&mut v, &[4, 3, 2, 1, 0]);
        assert_eq!(v, vec!["e", "d", "c", "b", "a"]);
        let mut w = vec![10, 20, 30];
        apply_permutation(&mut w, &[1, 2, 0]);
        assert_eq!(w, vec![20, 30, 10]);
        let mut x = vec![1, 2];
        apply_permutation(&mut x, &[0, 1]);
        assert_eq!(x, vec![1, 2]);
    }

    proptest! {
        #[test]
        fn roundtrip_2d(x in 0u32..256, y in 0u32..256) {
            let curve = HilbertCurve::new(2, 8).unwrap();
            let h = curve.index(&[x, y]);
            prop_assert_eq!(curve.point(h), vec![x, y]);
        }

        #[test]
        fn roundtrip_5d(p in proptest::collection::vec(0u32..16, 5)) {
            let curve = HilbertCurve::new(5, 4).unwrap();
            let h = curve.index(&p);
            prop_assert_eq!(curve.point(h), p);
        }

        #[test]
        fn roundtrip_high_dims(p in proptest::collection::vec(0u32..4, 16)) {
            let curve = HilbertCurve::new(16, 2).unwrap();
            let h = curve.index(&p);
            prop_assert_eq!(curve.point(h), p);
        }

        #[test]
        fn index_is_injective(a in proptest::collection::vec(0u32..32, 3),
                              b in proptest::collection::vec(0u32..32, 3)) {
            let curve = HilbertCurve::new(3, 5).unwrap();
            let ha = curve.index(&a);
            let hb = curve.index(&b);
            prop_assert_eq!(ha == hb, a == b);
        }

        #[test]
        fn adjacent_indices_are_grid_neighbors(h in 0u128..4095) {
            let curve = HilbertCurve::new(2, 6).unwrap();
            let p = curve.point(h);
            let q = curve.point(h + 1);
            let dist: u32 = p.iter().zip(&q).map(|(&a, &b)| a.abs_diff(b)).sum();
            prop_assert_eq!(dist, 1);
        }

        #[test]
        fn sorted_permutation_matches_naive(keys in proptest::collection::vec(0u32..64, 0..40)) {
            let curve = HilbertCurve::new(2, 6).unwrap();
            let mut items: Vec<(u32, u32)> =
                keys.iter().map(|&k| (k % 8, k / 8)).collect();
            let mut expected = items.clone();
            expected.sort_by_key(|&(x, y)| curve.index(&[x, y]));
            sort_by_hilbert(&curve, &mut items, |&(x, y)| vec![x, y]);
            prop_assert_eq!(items, expected);
        }
    }
}

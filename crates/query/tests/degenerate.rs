//! Degenerate publication shapes: the resident [`PublishedAnswerer`] must
//! stay bit-identical to the free-function answer paths on the smallest
//! inputs a publisher can produce — single-row tables, all-singleton ECs,
//! queries whose boxes miss everything, and empty QI selections.

use betalike::model::BetaLikeness;
use betalike::perturb;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_metrics::Partition;
use betalike_microdata::synthetic::{random_table, SyntheticConfig};
use betalike_microdata::{Attribute, Hierarchy, Schema, Table};
use betalike_query::answer::{
    estimate_anatomy, estimate_perturbed, exact_count, qi_matches, GeneralizedView,
};
use betalike_query::{AggQuery, PublishedAnswerer, RangePred};
use std::sync::Arc;

fn one_row_table() -> Arc<Table> {
    let age = Attribute::numeric_range("Age", 0, 9).unwrap();
    let disease =
        Attribute::categorical("Disease", Hierarchy::flat("any", &["a", "b", "c"]).unwrap());
    let schema = Arc::new(Schema::new(vec![age, disease], 1).unwrap());
    Arc::new(Table::from_columns(schema, vec![vec![4], vec![1]]).unwrap())
}

fn query(qi_preds: Vec<RangePred>, sa_lo: u32, sa_hi: u32) -> AggQuery {
    AggQuery {
        qi_preds,
        sa_pred: RangePred {
            attr: 1,
            lo: sa_lo,
            hi: sa_hi,
        },
    }
}

#[test]
fn single_row_generalized_publication() {
    let table = one_row_table();
    let partition = Partition::new(vec![0], 1, vec![vec![0]]);
    let view = GeneralizedView::new(&table, &partition);
    let answerer = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
    for (q, expect) in [
        (
            query(
                vec![RangePred {
                    attr: 0,
                    lo: 0,
                    hi: 9,
                }],
                0,
                2,
            ),
            1.0,
        ),
        // The SA range misses the one row.
        (
            query(
                vec![RangePred {
                    attr: 0,
                    lo: 0,
                    hi: 9,
                }],
                2,
                2,
            ),
            0.0,
        ),
        // The QI box misses the one row.
        (
            query(
                vec![RangePred {
                    attr: 0,
                    lo: 0,
                    hi: 3,
                }],
                0,
                2,
            ),
            0.0,
        ),
        // No QI predicates at all: pure SA count.
        (query(vec![], 1, 1), 1.0),
    ] {
        let got = answerer.estimate(&q).unwrap();
        assert_eq!(got.to_bits(), view.estimate(&q).to_bits());
        assert_eq!(got, expect, "query {q:?}");
        assert_eq!(answerer.exact(&q), exact_count(&table, &q));
        assert_eq!(answerer.exact(&q) as f64, expect);
    }
}

#[test]
fn single_row_anatomy_publication() {
    let table = one_row_table();
    let baseline = AnatomyBaseline::publish(&table, 1);
    let answerer = PublishedAnswerer::anatomy(Arc::clone(&table), 1);
    for q in [
        query(
            vec![RangePred {
                attr: 0,
                lo: 0,
                hi: 9,
            }],
            0,
            2,
        ),
        query(
            vec![RangePred {
                attr: 0,
                lo: 5,
                hi: 9,
            }],
            0,
            2,
        ),
        query(vec![], 0, 0),
    ] {
        let got = answerer.estimate(&q).unwrap();
        let want = estimate_anatomy(&baseline, &table, &q);
        assert_eq!(got.to_bits(), want.to_bits(), "query {q:?}");
    }
    // With the single row selected and the full SA range, the histogram
    // answer is exact.
    let full = query(vec![], 0, 2);
    assert_eq!(answerer.estimate(&full).unwrap(), 1.0);
}

#[test]
fn all_singleton_ecs_match_free_functions_bitwise() {
    let table = Arc::new(random_table(&SyntheticConfig {
        rows: 64,
        qi_attrs: 2,
        qi_cardinality: 8,
        sa_cardinality: 4,
        seed: 31,
        ..Default::default()
    }));
    let ecs: Vec<Vec<usize>> = (0..table.num_rows()).map(|r| vec![r]).collect();
    let partition = Partition::new(vec![0, 1], 2, ecs);
    let view = GeneralizedView::new(&table, &partition);
    let answerer = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
    // Point boxes answer exactly; sweep a grid of queries including
    // empty-selection ones.
    for lo in 0..8u32 {
        let q = AggQuery {
            qi_preds: vec![RangePred {
                attr: 0,
                lo,
                hi: lo,
            }],
            sa_pred: RangePred {
                attr: 2,
                lo: 0,
                hi: 1,
            },
        };
        let got = answerer.estimate(&q).unwrap();
        assert_eq!(got.to_bits(), view.estimate(&q).to_bits());
        assert_eq!(
            got,
            exact_count(&table, &q) as f64,
            "point ECs answer exactly"
        );
    }
}

#[test]
fn covered_and_residual_straddling_predicates() {
    // Publish with a one-attribute QI out of three, so the EC catalog
    // covers attrs {0, sa} only: predicates on attrs 1 and 2 must take the
    // residual row-scan, while straddling ranges on attr 0 force the
    // per-group paths (binary search or row scan) instead of prefix sums.
    let table = Arc::new(random_table(&SyntheticConfig {
        rows: 150,
        qi_attrs: 3,
        qi_cardinality: 6,
        sa_cardinality: 5,
        seed: 13,
        ..Default::default()
    }));
    let sa = 3;
    let partition = betalike::burel(
        &table,
        &[0],
        sa,
        &betalike::BurelConfig::new(4.0).with_seed(5),
    )
    .unwrap();
    let answerer = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
    let catalog = answerer.catalog().expect("catalog is on by default");
    let p = |attr, lo, hi| RangePred { attr, lo, hi };
    for qi_preds in [
        vec![p(0, 1, 4)],                         // covered straddle only
        vec![p(1, 2, 5)],                         // residual only
        vec![p(0, 1, 4), p(1, 2, 5)],             // covered + residual
        vec![p(0, 2, 3), p(1, 0, 4), p(2, 1, 5)], // covered + two residuals
        vec![p(0, 0, 5), p(2, 2, 2)],             // whole-domain covered + residual point
    ] {
        for (sa_lo, sa_hi) in [(0, 4), (1, 3), (2, 2)] {
            let q = AggQuery {
                qi_preds: qi_preds.clone(),
                sa_pred: p(sa, sa_lo, sa_hi),
            };
            // The planner really does split this workload: whole-domain
            // predicates land in neither part, attr 0 / the SA are
            // covered, attrs 1 and 2 are residual.
            let all: Vec<RangePred> = q.qi_preds.iter().cloned().chain([q.sa_pred]).collect();
            let plan = catalog.plan(&all);
            assert!(plan.residual.iter().all(|r| r.attr == 1 || r.attr == 2));
            assert!(plan.covered.iter().all(|c| c.attr == 0 || c.attr == sa));
            let exact = answerer.exact(&q);
            assert_eq!(exact, answerer.exact_scan(&q), "query {q:?}");
            assert_eq!(exact, exact_count(&table, &q), "query {q:?}");
            assert_eq!(exact, catalog.count(&table, &all), "query {q:?}");
        }
    }
}

#[test]
fn perturbed_empty_and_tiny_selections() {
    // qi_cardinality 4 guarantees codes ≥ 4 never occur, so a predicate
    // on them selects nothing — the reconstruction path must short-circuit
    // to 0, identically in both the free function and the answerer.
    let table = Arc::new(random_table(&SyntheticConfig {
        rows: 300,
        qi_attrs: 2,
        qi_cardinality: 4,
        sa_cardinality: 4,
        seed: 77,
        ..Default::default()
    }));
    let model = BetaLikeness::new(2.0).unwrap();
    let published = perturb(&table, 2, &model, 3).unwrap();
    let answerer = PublishedAnswerer::perturbed(Arc::clone(&table), published.clone());
    let nothing = AggQuery {
        qi_preds: vec![
            RangePred {
                attr: 0,
                lo: 3,
                hi: 3,
            },
            RangePred {
                attr: 1,
                lo: 3,
                hi: 3,
            },
        ],
        sa_pred: RangePred {
            attr: 2,
            lo: 0,
            hi: 3,
        },
    };
    let selected = qi_matches(&published.table, &nothing);
    let got = answerer.estimate(&nothing).unwrap();
    let want = estimate_perturbed(&published, &nothing).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    if selected.is_empty() {
        assert_eq!(got, 0.0, "empty selections reconstruct to zero");
    }
    // A single-row selection reconstructs without erroring and matches
    // the free path bitwise (per-class noise is fine; identity is the
    // contract).
    let row0 = AggQuery {
        qi_preds: vec![
            RangePred {
                attr: 0,
                lo: table.value(0, 0),
                hi: table.value(0, 0),
            },
            RangePred {
                attr: 1,
                lo: table.value(0, 1),
                hi: table.value(0, 1),
            },
        ],
        sa_pred: RangePred {
            attr: 2,
            lo: 0,
            hi: 3,
        },
    };
    let got = answerer.estimate(&row0).unwrap();
    let want = estimate_perturbed(&published, &row0).unwrap();
    assert_eq!(got.to_bits(), want.to_bits());
    assert!(got >= 0.0, "clamped reconstruction cannot go negative");
}

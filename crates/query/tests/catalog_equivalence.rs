//! The catalog's core contract, as a property: for **every** publication
//! form and arbitrary tables and queries, the catalog-backed answer is
//! *bitwise* equal to the scan path's — `estimate` vs `estimate_scan`
//! down to the f64 bits, `exact` vs `exact_scan` exactly.
//!
//! The generated shapes deliberately include the degenerate end of the
//! spectrum (single-row tables, cardinality-2 domains, empty predicate
//! lists, whole-domain and point ranges) and published-QI subsets, so
//! exact counts mix catalog-covered predicates with residual ones that
//! only the per-group row scan can answer.

use betalike::model::{BetaLikeness, BoundKind};
use betalike::{burel, perturb, BurelConfig};
use betalike_baselines::constraints::LikenessConstraint;
use betalike_baselines::mondrian::{mondrian, MondrianConfig};
use betalike_baselines::sabre::{sabre, SabreConfig};
use betalike_microdata::synthetic::{random_table, SaShape, SyntheticConfig};
use betalike_microdata::Table;
use betalike_query::{AggQuery, PublishedAnswerer, RangePred};
use proptest::prelude::*;
use std::sync::Arc;

/// Folds a raw `(attr, lo, hi)` triple into a valid predicate over the
/// table's QI attributes (the SA is predicated separately).
fn pred(table: &Table, raw: (usize, u32, u32)) -> RangePred {
    let attr = raw.0 % (table.schema().arity() - 1);
    let card = table.schema().attribute(attr).unwrap().cardinality() as u32;
    let (mut lo, mut hi) = (raw.1 % card, raw.2 % card);
    if lo > hi {
        std::mem::swap(&mut lo, &mut hi);
    }
    RangePred { attr, lo, hi }
}

/// Asserts the two answer paths agree bitwise on `query`.
fn assert_paths_agree(answerer: &PublishedAnswerer, query: &AggQuery, what: &str) {
    let catalog = answerer.estimate(query);
    let scan = answerer.estimate_scan(query);
    match (catalog, scan) {
        (Ok(c), Ok(s)) => assert_eq!(c.to_bits(), s.to_bits(), "{what} estimate {query:?}"),
        (c, s) => assert_eq!(c.is_err(), s.is_err(), "{what} error parity {query:?}"),
    }
    assert_eq!(
        answerer.exact(query),
        answerer.exact_scan(query),
        "{what} exact {query:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// All five schemes, arbitrary tables and queries: the catalog path
    /// must be indistinguishable from the scan path, bit for bit.
    #[test]
    fn catalog_answers_are_bitwise_equal_to_scans(
        rows in 1usize..220,
        qi_attrs in 1usize..4,
        qi_card in 2usize..9,
        sa_card in 2usize..7,
        seed in 0u64..1_000_000,
        qi_n_raw in 0usize..4,
        raw_preds in proptest::collection::vec((0usize..8, 0u32..64, 0u32..64), 0..5),
        sa_raw in (0u32..64, 0u32..64),
    ) {
        let table = Arc::new(random_table(&SyntheticConfig {
            rows,
            qi_attrs,
            qi_cardinality: qi_card,
            sa_cardinality: sa_card,
            sa_shape: SaShape::Zipf(1.0),
            seed,
        }));
        let sa = qi_attrs; // synthetic tables put the SA last
        let qi_n = 1 + qi_n_raw % qi_attrs; // published QI subset: 1..=qi_attrs
        let qi: Vec<usize> = (0..qi_n).collect();

        let (mut sa_lo, mut sa_hi) = (sa_raw.0 % sa_card as u32, sa_raw.1 % sa_card as u32);
        if sa_lo > sa_hi {
            std::mem::swap(&mut sa_lo, &mut sa_hi);
        }
        let sa_pred = RangePred { attr: sa, lo: sa_lo, hi: sa_hi };
        let all_preds: Vec<RangePred> =
            raw_preds.iter().map(|&raw| pred(&table, raw)).collect();
        // Only predicates inside the published QI subset are answerable by
        // `estimate` on generalized forms; `exact` takes them all — the
        // ones outside the catalog's covered set exercise the residual
        // row-scan.
        let covered_only: Vec<RangePred> = all_preds
            .iter()
            .filter(|p| p.attr < qi_n)
            .cloned()
            .collect();
        let narrow = AggQuery { qi_preds: covered_only, sa_pred };
        let wide = AggQuery { qi_preds: all_preds, sa_pred };
        let empty = AggQuery { qi_preds: vec![], sa_pred };

        let mut answerers: Vec<(&str, PublishedAnswerer)> = Vec::new();
        if let Ok(p) = burel(&table, &qi, sa, &BurelConfig::new(4.0).with_seed(7)) {
            answerers.push(("burel", PublishedAnswerer::generalized(Arc::clone(&table), &p)));
        }
        if let Ok(p) = sabre(&table, &qi, sa, &SabreConfig::new(0.6).with_seed(7)) {
            answerers.push(("sabre", PublishedAnswerer::generalized(Arc::clone(&table), &p)));
        }
        if let Ok(model) = BetaLikeness::with_bound(4.0, BoundKind::Enhanced) {
            let c = LikenessConstraint::new(&table, sa, model);
            if let Ok(p) = mondrian(&table, &qi, sa, &c, &MondrianConfig::default()) {
                answerers.push((
                    "mondrian",
                    PublishedAnswerer::generalized(Arc::clone(&table), &p),
                ));
            }
        }
        answerers.push(("anatomy", PublishedAnswerer::anatomy(Arc::clone(&table), sa)));
        if let Ok(model) = BetaLikeness::new(3.0) {
            if let Ok(published) = perturb(&table, sa, &model, 7) {
                answerers.push((
                    "perturb",
                    PublishedAnswerer::perturbed(Arc::clone(&table), published),
                ));
            }
        }
        // Anatomy always publishes, so the property is never vacuous.
        prop_assert!(!answerers.is_empty());

        for (name, answerer) in &answerers {
            prop_assert!(answerer.catalog().is_some(), "{name} built a catalog");
            assert_paths_agree(answerer, &narrow, name);
            assert_paths_agree(answerer, &empty, name);
            // Generalized estimators reject predicates outside the
            // published QI; the mixed covered+residual query still must
            // agree on *exact* counts for every form.
            prop_assert_eq!(
                answerer.exact(&wide),
                answerer.exact_scan(&wide),
                "{} exact with residual preds",
                name
            );
            if matches!(answerer.kind(), "anatomy" | "perturbed") {
                assert_paths_agree(answerer, &wide, name);
            }
        }
    }
}

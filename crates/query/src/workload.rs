//! Workload generation (Sections 5 / 6.2 of the paper).
//!
//! A query carries `λ` range predicates over QI attributes drawn from a
//! pool, plus one range predicate over the SA. For expected selectivity `θ`
//! under the uniformity assumption, each of the `λ + 1` ranges has length
//! `|A| · θ^{1/(λ+1)}` (at least one domain cell), placed uniformly at
//! random in the attribute's domain.

use betalike_microdata::Table;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// An inclusive range predicate `attr ∈ [lo, hi]` over encoded values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangePred {
    /// Attribute index.
    pub attr: usize,
    /// Lowest matching code.
    pub lo: u32,
    /// Highest matching code.
    pub hi: u32,
}

impl RangePred {
    /// Whether a value code matches.
    #[inline]
    pub fn matches(&self, code: u32) -> bool {
        (self.lo..=self.hi).contains(&code)
    }

    /// Number of domain cells covered.
    #[inline]
    pub fn len(&self) -> u32 {
        self.hi - self.lo + 1
    }

    /// Ranges are never empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// One COUNT(*) aggregation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggQuery {
    /// Predicates over (distinct) QI attributes.
    pub qi_preds: Vec<RangePred>,
    /// The SA predicate.
    pub sa_pred: RangePred,
}

/// Configuration for [`generate_workload`].
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// QI attributes the generator may predicate on.
    pub qi_pool: Vec<usize>,
    /// SA attribute index.
    pub sa: usize,
    /// Number of QI predicates per query (`λ ≤ qi_pool.len()`).
    pub lambda: usize,
    /// Expected selectivity `θ ∈ (0, 1)`.
    pub theta: f64,
    /// Number of queries.
    pub num_queries: usize,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadConfig {
    /// The paper's defaults: λ = 3, θ = 0.1, 10 000 queries.
    pub fn new(qi_pool: Vec<usize>, sa: usize) -> Self {
        WorkloadConfig {
            qi_pool,
            sa,
            lambda: 3,
            theta: 0.1,
            num_queries: 10_000,
            seed: 7,
        }
    }
}

/// Generates a deterministic workload per the module docs.
///
/// # Panics
///
/// Panics if `lambda` exceeds the pool size, `theta ∉ (0, 1)`, or the pool
/// contains the SA.
pub fn generate_workload(table: &Table, cfg: &WorkloadConfig) -> Vec<AggQuery> {
    assert!(
        cfg.lambda >= 1 && cfg.lambda <= cfg.qi_pool.len(),
        "bad lambda"
    );
    assert!(
        cfg.theta > 0.0 && cfg.theta < 1.0,
        "theta must be in (0, 1)"
    );
    assert!(
        !cfg.qi_pool.contains(&cfg.sa),
        "SA cannot be predicated as QI"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // Per-attribute range length: |A| · θ^{1/(λ+1)}, at least 1 cell,
    // at most the domain.
    let frac = cfg.theta.powf(1.0 / (cfg.lambda as f64 + 1.0));
    let mut out = Vec::with_capacity(cfg.num_queries);
    let mut pool = cfg.qi_pool.clone();
    for _ in 0..cfg.num_queries {
        pool.shuffle(&mut rng);
        let mut qi_preds: Vec<RangePred> = pool[..cfg.lambda]
            .iter()
            .map(|&attr| random_range(table, attr, frac, &mut rng))
            .collect();
        qi_preds.sort_by_key(|p| p.attr);
        let sa_pred = random_range(table, cfg.sa, frac, &mut rng);
        out.push(AggQuery { qi_preds, sa_pred });
    }
    out
}

fn random_range(table: &Table, attr: usize, frac: f64, rng: &mut ChaCha8Rng) -> RangePred {
    let card = table.schema().attr(attr).cardinality() as u32;
    let len = ((card as f64 * frac).round() as u32).clamp(1, card);
    let lo = rng.gen_range(0..=card - len);
    RangePred {
        attr,
        lo,
        hi: lo + len - 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    #[test]
    fn workload_shape() {
        let t = census::generate(&CensusConfig::new(1_000, 1));
        let cfg = WorkloadConfig {
            qi_pool: vec![0, 1, 2, 3, 4],
            sa: 5,
            lambda: 3,
            theta: 0.1,
            num_queries: 50,
            seed: 3,
        };
        let w = generate_workload(&t, &cfg);
        assert_eq!(w.len(), 50);
        for q in &w {
            assert_eq!(q.qi_preds.len(), 3);
            // Distinct attributes, sorted, never the SA.
            let attrs: Vec<usize> = q.qi_preds.iter().map(|p| p.attr).collect();
            let mut sorted = attrs.clone();
            sorted.dedup();
            assert_eq!(attrs, sorted);
            assert!(!attrs.contains(&5));
            assert_eq!(q.sa_pred.attr, 5);
            // Ranges stay in-domain.
            for p in q.qi_preds.iter().chain([&q.sa_pred]) {
                let card = t.schema().attr(p.attr).cardinality() as u32;
                assert!(p.lo <= p.hi && p.hi < card);
            }
        }
    }

    #[test]
    fn range_lengths_follow_theta() {
        let t = census::generate(&CensusConfig::new(500, 2));
        let cfg = WorkloadConfig {
            qi_pool: vec![0],
            sa: 5,
            lambda: 1,
            theta: 0.25,
            num_queries: 10,
            seed: 4,
        };
        let w = generate_workload(&t, &cfg);
        // θ^{1/2} = 0.5: Age (79 values) ranges have length 40 (rounded).
        for q in &w {
            assert_eq!(q.qi_preds[0].len(), 40);
            assert_eq!(q.sa_pred.len(), 25); // 50 · 0.5
        }
    }

    #[test]
    fn deterministic_workloads() {
        let t = random_table(&SyntheticConfig::default());
        let cfg = WorkloadConfig {
            qi_pool: vec![0, 1],
            sa: 2,
            lambda: 2,
            theta: 0.1,
            num_queries: 20,
            seed: 9,
        };
        assert_eq!(generate_workload(&t, &cfg), generate_workload(&t, &cfg));
        let other = WorkloadConfig {
            seed: 10,
            ..cfg.clone()
        };
        assert_ne!(generate_workload(&t, &cfg), generate_workload(&t, &other));
    }

    #[test]
    fn achieved_selectivity_near_theta() {
        // On uniform synthetic data the realized mean selectivity should be
        // within a factor ~2 of θ.
        let t = random_table(&SyntheticConfig {
            rows: 20_000,
            qi_attrs: 2,
            qi_cardinality: 64,
            sa_cardinality: 16,
            seed: 5,
            ..Default::default()
        });
        let cfg = WorkloadConfig {
            qi_pool: vec![0, 1],
            sa: 2,
            lambda: 2,
            theta: 0.1,
            num_queries: 200,
            seed: 6,
        };
        let w = generate_workload(&t, &cfg);
        let mut mean = 0.0;
        for q in &w {
            let mut count = 0usize;
            'rows: for r in 0..t.num_rows() {
                for p in q.qi_preds.iter().chain([&q.sa_pred]) {
                    if !p.matches(t.value(r, p.attr)) {
                        continue 'rows;
                    }
                }
                count += 1;
            }
            mean += count as f64 / t.num_rows() as f64;
        }
        mean /= w.len() as f64;
        assert!((0.05..0.2).contains(&mean), "mean selectivity {mean}");
    }

    #[test]
    #[should_panic(expected = "bad lambda")]
    fn lambda_validation() {
        let t = random_table(&SyntheticConfig::default());
        let cfg = WorkloadConfig {
            qi_pool: vec![0],
            sa: 2,
            lambda: 2,
            theta: 0.1,
            num_queries: 1,
            seed: 0,
        };
        generate_workload(&t, &cfg);
    }
}

//! # betalike-query
//!
//! The aggregation-query workload of Sections 5 and 6 of the paper, and the
//! answer estimators for each publication form:
//!
//! ```sql
//! SELECT COUNT(*) FROM Anonymized-data
//! WHERE pred(A1) AND ... AND pred(Alambda) AND pred(SA)
//! ```
//!
//! Each predicate is a range over the attribute's encoded domain; for an
//! expected selectivity `θ` over `λ` QI predicates plus the SA predicate,
//! every range has length `|A| · θ^{1/(λ+1)}` (uniformity assumption of
//! Section 6.2).
//!
//! Estimators:
//! * [`GeneralizedView::estimate`] — uniform-spread intersection between the
//!   query box and each EC's published box, times the EC's exact count of
//!   in-range SA values (generalization publishes SA values verbatim);
//! * [`estimate_perturbed`] — filter rows by the (unperturbed) QI
//!   predicates, reconstruct original SA counts via `N′ = PM⁻¹ E′`, sum the
//!   reconstructed counts over the SA range;
//! * [`estimate_anatomy`] — `|S_t| · Σ_{v ∈ R_SA} p_v` from the published
//!   global distribution.
//!
//! [`PublishedAnswerer`] bundles any of the three forms with a shared
//! handle on the original table, so a resident publisher (the
//! `betalike-server` crate) computes a publication once and answers many
//! queries from it without re-deriving state. It also derives a
//! [`Catalog`] — per-group aggregate summaries that answer counts in
//! `O(groups touched)` or `O(log n)` instead of `O(rows)`, bit-identically
//! to the scan paths (see [`catalog`] for the layout and the planner).
//!
//! [`relative_error`] / [`median_relative_error`] implement the error
//! measure of Figures 8 and 9 (queries with a zero exact answer are
//! dropped, as in the paper).

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod answer;
pub mod catalog;
pub mod published;
pub mod workload;

pub use answer::{
    compile_preds, estimate_anatomy, estimate_perturbed, exact_count, qi_matches, GeneralizedView,
};
pub use catalog::{Catalog, CatalogPlan, CatalogSpec, CatalogStats, GroupingSpec, CATALOG_VERSION};
pub use published::PublishedAnswerer;
pub use workload::{generate_workload, AggQuery, RangePred, WorkloadConfig};

/// Relative error in percent: `|est − exact| / exact × 100`, or `None` when
/// the exact answer is zero (the paper drops such queries).
pub fn relative_error(est: f64, exact: f64) -> Option<f64> {
    if exact == 0.0 {
        None
    } else {
        Some((est - exact).abs() / exact * 100.0)
    }
}

/// Median of the defined relative errors over a workload, in percent.
/// Returns `None` if every query had a zero exact answer.
pub fn median_relative_error(errors: impl IntoIterator<Item = Option<f64>>) -> Option<f64> {
    let mut defined: Vec<f64> = errors.into_iter().flatten().collect();
    if defined.is_empty() {
        return None;
    }
    defined.sort_by(f64::total_cmp);
    let n = defined.len();
    Some(if n % 2 == 1 {
        defined[n / 2]
    } else {
        0.5 * (defined[n / 2 - 1] + defined[n / 2])
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(110.0, 100.0), Some(10.0));
        assert_eq!(relative_error(90.0, 100.0), Some(10.0));
        assert_eq!(relative_error(5.0, 0.0), None);
        assert_eq!(relative_error(0.0, 50.0), Some(100.0));
    }

    #[test]
    fn zero_exact_answers_are_excluded() {
        // The paper drops queries whose exact answer is zero instead of
        // dividing by it; the exclusion must hold whatever the estimate
        // says, including a (wrong) non-zero one and edge-case floats.
        for est in [0.0, 1.0, 1e300, f64::INFINITY, f64::NAN] {
            assert_eq!(relative_error(est, 0.0), None, "est = {est}");
        }
        // Negative zero is still an exact answer of zero.
        assert_eq!(relative_error(3.0, -0.0), None);
        // Excluded queries carry no weight in the median either.
        assert_eq!(
            median_relative_error([Some(10.0), relative_error(5.0, 0.0), Some(20.0)]),
            Some(15.0)
        );
    }

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(
            median_relative_error([Some(1.0), Some(9.0), Some(5.0)]),
            Some(5.0)
        );
        assert_eq!(
            median_relative_error([Some(1.0), Some(3.0), Some(5.0), Some(7.0)]),
            Some(4.0)
        );
        assert_eq!(median_relative_error([None, Some(2.0), None]), Some(2.0));
        assert_eq!(median_relative_error([None, None]), None);
        assert_eq!(median_relative_error([]), None);
    }
}

//! Exact answers and estimators for each publication form.
//!
//! * Exact counts come from the original table (the `prec` of Section 6.2).
//! * [`GeneralizedView`] answers from an EC partition under the
//!   uniform-spread assumption ("we assume that tuples in each EC are
//!   uniformly distributed, and consider the intersection between the query
//!   and the EC").
//! * [`estimate_perturbed`] answers from a perturbed table by count
//!   reconstruction (Section 5).
//! * [`estimate_anatomy`] answers from the Anatomy-style baseline.

use crate::workload::{AggQuery, RangePred};
use betalike::error::Result;
use betalike::perturb::PerturbedTable;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_metrics::Partition;
use betalike_microdata::{AttrKind, RowId, Table};

/// Each predicate resolved to its column slice once per query, so the row
/// scan touches only slices. Every scanning answer path (exact counts, QI
/// selections, [`crate::PublishedAnswerer`], the figure binaries) compiles
/// predicates through here instead of calling `Table::value` per cell;
/// the aggregate-catalog planner ([`crate::Catalog::plan`]) consumes the
/// same predicate list to split it into covered and residual parts.
///
/// ```
/// use betalike_query::{compile_preds, RangePred};
/// use betalike_microdata::synthetic::{random_table, SyntheticConfig};
///
/// let t = random_table(&SyntheticConfig::default());
/// let preds = [RangePred { attr: 0, lo: 0, hi: 3 }];
/// let compiled = compile_preds(&t, preds.iter());
/// assert_eq!(compiled.len(), 1);
/// let (col, p) = &compiled[0];
/// assert_eq!(col.len(), t.num_rows());
/// assert_eq!(p.attr, 0);
/// ```
pub fn compile_preds<'a>(
    table: &'a Table,
    preds: impl IntoIterator<Item = &'a RangePred>,
) -> Vec<(&'a [u32], RangePred)> {
    preds
        .into_iter()
        .map(|p| (table.column(p.attr), *p))
        .collect()
}

/// Rows (of `0..rows`) matching every compiled predicate.
fn scan(rows: usize, preds: &[(&[u32], RangePred)]) -> Vec<RowId> {
    let mut out = Vec::new();
    'rows: for r in 0..rows {
        for (col, p) in preds {
            let v = col[r];
            if v < p.lo || v > p.hi {
                continue 'rows;
            }
        }
        out.push(r);
    }
    out
}

/// Exact `COUNT(*)` of the query on the original table.
pub fn exact_count(table: &Table, query: &AggQuery) -> u64 {
    let preds = compile_preds(table, query.qi_preds.iter().chain([&query.sa_pred]));
    let mut count = 0u64;
    'rows: for r in 0..table.num_rows() {
        for (col, p) in &preds {
            let v = col[r];
            if v < p.lo || v > p.hi {
                continue 'rows;
            }
        }
        count += 1;
    }
    count
}

/// Rows matching all *QI* predicates (the `S_t` of Section 5); the SA
/// predicate is deliberately not applied.
pub fn qi_matches(table: &Table, query: &AggQuery) -> Vec<RowId> {
    scan(
        table.num_rows(),
        &compile_preds(table, query.qi_preds.iter()),
    )
}

/// A partition pre-processed for fast query estimation: per EC, the
/// published QI box and the sorted SA codes.
#[derive(Debug, Clone)]
pub struct GeneralizedView {
    /// Per EC, per QI attribute (in `qi` order): the published box.
    ///
    /// Numeric attributes publish their exact code extent; categorical
    /// attributes publish the leaf range of the LCA their extent
    /// generalizes to (the recipient only sees the generalized node).
    boxes: Vec<Vec<(u32, u32)>>,
    /// Per EC: SA codes sorted ascending (published verbatim).
    sa_sorted: Vec<Vec<u32>>,
    qi: Vec<usize>,
}

impl GeneralizedView {
    /// Builds the view from an original table and its published partition.
    pub fn new(table: &Table, partition: &Partition) -> Self {
        let qi = partition.qi().to_vec();
        let mut boxes = Vec::with_capacity(partition.num_ecs());
        let mut sa_sorted = Vec::with_capacity(partition.num_ecs());
        for (i, ec) in partition.ecs().iter().enumerate() {
            let extent = partition.ec_extent(table, i);
            let published: Vec<(u32, u32)> = qi
                .iter()
                .zip(&extent)
                .map(|(&a, &(lo, hi))| match table.schema().attr(a).kind() {
                    AttrKind::Numeric { .. } => (lo, hi),
                    AttrKind::Categorical { hierarchy } => {
                        hierarchy.leaf_range(hierarchy.lca_of_leaves(lo, hi))
                    }
                })
                .collect();
            boxes.push(published);
            let col = table.column(partition.sa());
            let mut sa: Vec<u32> = ec.iter().map(|&r| col[r]).collect();
            sa.sort_unstable();
            sa_sorted.push(sa);
        }
        GeneralizedView {
            boxes,
            sa_sorted,
            qi,
        }
    }

    /// Number of ECs in the view.
    pub fn num_ecs(&self) -> usize {
        self.boxes.len()
    }

    /// Estimated `COUNT(*)` under uniform spread: for each EC, the product
    /// of per-attribute overlap fractions times the EC's exact count of
    /// in-range SA values.
    ///
    /// # Panics
    ///
    /// Panics if a query predicate references an attribute outside the
    /// partition's QI set.
    pub fn estimate(&self, query: &AggQuery) -> f64 {
        // Map query predicates onto QI positions once.
        let positions: Vec<(usize, &RangePred)> = query
            .qi_preds
            .iter()
            .map(|p| {
                let pos = self
                    .qi
                    .iter()
                    .position(|&a| a == p.attr)
                    .expect("query predicates an attribute outside the published QI set");
                (pos, p)
            })
            .collect();
        let mut total = 0.0;
        for (ec, bx) in self.boxes.iter().enumerate() {
            let mut frac = 1.0;
            for &(pos, p) in &positions {
                let (lo, hi) = bx[pos];
                let cells = (hi - lo + 1) as f64;
                let olo = lo.max(p.lo);
                let ohi = hi.min(p.hi);
                if olo > ohi {
                    frac = 0.0;
                    break;
                }
                frac *= (ohi - olo + 1) as f64 / cells;
            }
            if frac == 0.0 {
                continue;
            }
            let sa = &self.sa_sorted[ec];
            let lo_idx = sa.partition_point(|&v| v < query.sa_pred.lo);
            let hi_idx = sa.partition_point(|&v| v <= query.sa_pred.hi);
            total += frac * (hi_idx - lo_idx) as f64;
        }
        total
    }
}

/// Estimated `COUNT(*)` from a perturbed publication (Section 5): filter by
/// QI predicates (QIs are unperturbed), reconstruct original SA counts, sum
/// the reconstruction over the SA range. Negative reconstructed counts are
/// clamped to zero before summing (reconstruction is unbiased but can go
/// negative on small selections).
///
/// # Errors
///
/// Propagates a singular-matrix failure from the reconstruction.
pub fn estimate_perturbed(published: &PerturbedTable, query: &AggQuery) -> Result<f64> {
    let rows = qi_matches(&published.table, query);
    if rows.is_empty() {
        return Ok(0.0);
    }
    let recon = published.reconstruct_counts(&rows)?;
    let mut total = 0.0;
    for (i, &v) in published.plan.support().iter().enumerate() {
        if query.sa_pred.matches(v) {
            total += recon[i].max(0.0);
        }
    }
    Ok(total)
}

/// Estimated `COUNT(*)` from the Anatomy-style baseline:
/// `|S_t| · Σ_{v ∈ R_SA} p_v`.
pub fn estimate_anatomy(baseline: &AnatomyBaseline, table: &Table, query: &AggQuery) -> f64 {
    let rows = qi_matches(table, query);
    baseline.estimate(&rows, query.sa_pred.lo, query.sa_pred.hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use crate::{median_relative_error, relative_error};
    use betalike::model::BetaLikeness;
    use betalike::{burel, perturb, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    fn query(qi_preds: Vec<RangePred>, sa_pred: RangePred) -> AggQuery {
        AggQuery { qi_preds, sa_pred }
    }

    #[test]
    fn exact_count_and_qi_matches() {
        let t = random_table(&SyntheticConfig {
            rows: 1_000,
            qi_attrs: 2,
            qi_cardinality: 10,
            sa_cardinality: 5,
            seed: 3,
            ..Default::default()
        });
        let q = query(
            vec![RangePred {
                attr: 0,
                lo: 0,
                hi: 4,
            }],
            RangePred {
                attr: 2,
                lo: 0,
                hi: 4,
            },
        );
        // The SA range covers everything: exact == |qi matches|.
        assert_eq!(exact_count(&t, &q), qi_matches(&t, &q).len() as u64);
        let narrow = query(
            vec![RangePred {
                attr: 0,
                lo: 0,
                hi: 4,
            }],
            RangePred {
                attr: 2,
                lo: 0,
                hi: 0,
            },
        );
        assert!(exact_count(&t, &narrow) < exact_count(&t, &q));
    }

    #[test]
    fn generalized_view_exact_when_ecs_are_points() {
        // Each row forms its own EC: boxes are points, the estimate is
        // exact.
        let t = random_table(&SyntheticConfig {
            rows: 200,
            qi_attrs: 2,
            qi_cardinality: 16,
            sa_cardinality: 4,
            seed: 4,
            ..Default::default()
        });
        let ecs: Vec<Vec<usize>> = (0..200).map(|r| vec![r]).collect();
        let p = Partition::new(vec![0, 1], 2, ecs);
        let view = GeneralizedView::new(&t, &p);
        let w = generate_workload(
            &t,
            &WorkloadConfig {
                qi_pool: vec![0, 1],
                sa: 2,
                lambda: 2,
                theta: 0.2,
                num_queries: 30,
                seed: 5,
            },
        );
        for q in &w {
            let est = view.estimate(q);
            let exact = exact_count(&t, q) as f64;
            assert!(
                (est - exact).abs() < 1e-9,
                "point ECs must answer exactly: {est} vs {exact}"
            );
        }
    }

    #[test]
    fn generalized_view_full_table_ec() {
        // One EC covering everything: the estimate is |query box ∩ EC| under
        // uniform spread — crude but well-defined. Sanity: full-domain query
        // returns |DB| ∩ SA range count exactly.
        let t = random_table(&SyntheticConfig {
            rows: 300,
            qi_attrs: 1,
            qi_cardinality: 8,
            sa_cardinality: 4,
            seed: 6,
            ..Default::default()
        });
        let p = Partition::new(vec![0], 1, vec![(0..300).collect()]);
        let view = GeneralizedView::new(&t, &p);
        let q = query(
            vec![RangePred {
                attr: 0,
                lo: 0,
                hi: 7,
            }],
            RangePred {
                attr: 1,
                lo: 0,
                hi: 1,
            },
        );
        let exact = exact_count(&t, &q) as f64;
        assert!((view.estimate(&q) - exact).abs() < 1e-9);
    }

    #[test]
    fn categorical_boxes_use_lca_range() {
        use betalike_microdata::patients::{self, patients_table};
        // Make Disease a QI for this test to exercise the categorical
        // branch: rows 0..=2 carry the three nervous diseases, whose LCA
        // covers leaves 0..=2.
        let t = patients_table();
        let p = Partition::new(
            vec![patients::attr::DISEASE],
            patients::attr::WEIGHT,
            vec![vec![0, 1, 2], vec![3, 4, 5]],
        );
        let view = GeneralizedView::new(&t, &p);
        assert_eq!(view.boxes[0], vec![(0, 2)]);
        // Rows 3..=5 carry circulatory diseases (leaves 3..=5).
        assert_eq!(view.boxes[1], vec![(3, 5)]);
    }

    #[test]
    fn burel_publication_answers_queries_reasonably() {
        let t = census::generate(&CensusConfig::new(10_000, 8));
        let qi = vec![0usize, 1, 2];
        let p = burel(&t, &qi, 5, &BurelConfig::new(4.0)).unwrap();
        let view = GeneralizedView::new(&t, &p);
        let w = generate_workload(
            &t,
            &WorkloadConfig {
                qi_pool: qi,
                sa: 5,
                lambda: 2,
                theta: 0.15,
                num_queries: 150,
                seed: 11,
            },
        );
        let med = median_relative_error(
            w.iter()
                .map(|q| relative_error(view.estimate(q), exact_count(&t, q) as f64)),
        )
        .unwrap();
        // Figure 8 reports medians below ~40% for BUREL; leave headroom for
        // the smaller table used in tests.
        assert!(med < 60.0, "median relative error {med}%");
    }

    #[test]
    fn perturbed_estimates_beat_anatomy_baseline() {
        // The Figure 9 claim. Reconstruction noise scales as 1/√|S_t|, so
        // the perturbation scheme overtakes the baseline only once
        // selections are reasonably large; 100K rows at θ = 0.1 is safely
        // past the crossover (measured: ~5% vs ~10% median error).
        let t = census::generate(&CensusConfig::new(100_000, 9));
        let sa = 5;
        let model = BetaLikeness::new(4.0).unwrap();
        let published = perturb(&t, sa, &model, 3).unwrap();
        let baseline = AnatomyBaseline::publish(&t, sa);
        let w = generate_workload(
            &t,
            &WorkloadConfig {
                qi_pool: vec![0, 1, 2, 3, 4],
                sa,
                lambda: 3,
                theta: 0.1,
                num_queries: 120,
                seed: 13,
            },
        );
        let mut pert_err = Vec::new();
        let mut base_err = Vec::new();
        for q in &w {
            let exact = exact_count(&t, q) as f64;
            pert_err.push(relative_error(
                estimate_perturbed(&published, q).unwrap(),
                exact,
            ));
            base_err.push(relative_error(estimate_anatomy(&baseline, &t, q), exact));
        }
        let pm = median_relative_error(pert_err).unwrap();
        let bm = median_relative_error(base_err).unwrap();
        assert!(
            pm < bm,
            "perturbation (median {pm}%) must beat the baseline ({bm}%)"
        );
    }

    #[test]
    fn perturbed_empty_selection_is_zero() {
        let t = random_table(&SyntheticConfig {
            rows: 100,
            qi_cardinality: 32,
            seed: 14,
            ..Default::default()
        });
        let model = BetaLikeness::new(2.0).unwrap();
        let published = perturb(&t, 2, &model, 1).unwrap();
        // An impossible QI predicate (empty range can't be expressed; use a
        // range matching nothing by construction: values are < 32).
        let q = query(
            vec![RangePred {
                attr: 0,
                lo: 31,
                hi: 31,
            }],
            RangePred {
                attr: 2,
                lo: 0,
                hi: 7,
            },
        );
        let rows = qi_matches(&published.table, &q);
        if rows.is_empty() {
            assert_eq!(estimate_perturbed(&published, &q).unwrap(), 0.0);
        }
    }
}

//! Per-artifact aggregate catalogs: answer `COUNT(*)` from per-group
//! summaries instead of scanning every row, **bit-identically** to the
//! scan paths in [`crate::answer`].
//!
//! A [`Catalog`] groups the rows of one publication — by its equivalence
//! classes for generalized artifacts, by Hilbert-ordered row blocks for
//! forms that publish QIs verbatim — and precomputes, per group:
//!
//! * the value extent of every covered attribute (for generalized QI
//!   attributes this is the *published* box, which conservatively contains
//!   the raw extent, so one extent table serves pruning for both exact
//!   counts and estimates);
//! * the sorted value codes of every covered attribute (per-group SA
//!   histograms in sorted form), so one straddling predicate resolves by
//!   binary search in `O(log |group|)`;
//!
//! plus, per covered attribute, a global **prefix-sum** table over the
//! attribute's domain (single-predicate queries answer in `O(1)`) and
//! value→group **posting lists** (narrow predicates enumerate candidate
//! groups without touching the rest).
//!
//! The planner ([`Catalog::plan`]) splits a query's predicates into the
//! catalog-covered part — resolved from summaries — and a *residual* part
//! that falls back to scanning only the rows of groups the covered part
//! could not decide. Answers are bit-identical to the scan path because
//! exact counts are integers, and the estimate paths replay the exact
//! float operations of [`GeneralizedView::estimate`],
//! [`estimate_perturbed`] and [`estimate_anatomy`] — skipping only terms
//! that are provably `+0.0` (adding `+0.0` to a non-negative total is a
//! bitwise no-op) or groups the scan path itself skips.
//!
//! [`GeneralizedView::estimate`]: crate::GeneralizedView::estimate
//! [`estimate_perturbed`]: crate::estimate_perturbed
//! [`estimate_anatomy`]: crate::estimate_anatomy

use crate::workload::{AggQuery, RangePred};
use betalike::perturb::PerturbedTable;
use betalike::retrieve::hilbert_keys;
use betalike_metrics::Partition;
use betalike_microdata::{AttrKind, RowId, Table};
use betalike_obs::Counter;
use std::sync::Arc;

/// Version of the catalog derivation scheme. Persisted snapshots carrying
/// a different version are discarded and the catalog is rebuilt from the
/// publication (see `DESIGN.md` §13, rebuild-on-version-skew).
pub const CATALOG_VERSION: u32 = 1;

/// Default rows per block for block-grouped catalogs (forms without an EC
/// partition). Small enough that straddling blocks re-scan little, large
/// enough that the group count stays far below the row count.
pub const DEFAULT_BLOCK_ROWS: u32 = 256;

/// Widest predicate (in domain cells) the planner will expand through
/// posting lists when enumerating candidate groups; wider predicates fall
/// back to testing every group's extent.
const POSTING_FANOUT: u32 = 8;

/// How a catalog groups rows — the part of a catalog that is persisted
/// (everything else is rebuilt deterministically from the publication).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingSpec {
    /// One group per equivalence class of the published partition, in EC
    /// order (generalized forms).
    Ecs,
    /// Fixed-size blocks of a row permutation (forms publishing QIs
    /// verbatim; the permutation sorts rows by their Hilbert key over the
    /// non-SA attributes, falling back to row order when there are none).
    Blocks {
        /// Rows per block (the last block may be shorter).
        block_rows: u32,
        /// The row permutation blocks are cut from; `perm[i]` is the row
        /// id at position `i`.
        perm: Vec<u32>,
    },
}

/// The persistable description of a [`Catalog`]: the derivation version,
/// the grouping, and the covered attributes (a cross-check against the
/// rebuilt catalog). Everything heavy — extents, sorted codes, posting
/// lists, prefix sums — is rebuilt deterministically on restore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogSpec {
    /// The [`CATALOG_VERSION`] the catalog was derived under.
    pub version: u32,
    /// How rows are grouped.
    pub grouping: GroupingSpec,
    /// The attributes the catalog covers, in extent order.
    pub covered: Vec<usize>,
}

/// A query's predicates split by the planner: `covered` resolves from
/// catalog summaries, `residual` only by scanning rows of undecided
/// groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogPlan {
    /// Predicates over covered attributes (excluding predicates that span
    /// an attribute's whole domain, which match every row).
    pub covered: Vec<RangePred>,
    /// Predicates the catalog cannot cover.
    pub residual: Vec<RangePred>,
}

/// Shared counters classifying how the catalog resolved each candidate
/// group, one bump per group per query (plus one `full_cover` bump when
/// the `O(1)` prefix-sum path answers without visiting groups at all).
/// The default is a set of detached counters — recording is always on,
/// but nobody reads them unless the server wires in handles from its
/// metrics registry. Groups the posting lists prune *before* the extent
/// check are never classified (they were never candidates).
#[derive(Debug, Clone, Default)]
pub struct CatalogStats {
    /// Candidate groups skipped because a covered predicate was disjoint
    /// from their extent.
    pub disjoint: Arc<Counter>,
    /// Groups counted whole from their summary (every covered predicate
    /// spans the group), and prefix-sum fast-path answers.
    pub full_cover: Arc<Counter>,
    /// Groups resolved by binary search over one straddling predicate's
    /// sorted codes (estimates count their per-group SA search here).
    pub straddle: Arc<Counter>,
    /// Groups that fell back to scanning their rows.
    pub residual_scan: Arc<Counter>,
}

/// A query-local tally, flushed to the shared [`CatalogStats`] once per
/// call so hot loops touch plain integers instead of atomics per group.
#[derive(Debug, Default)]
struct PlanTally {
    disjoint: u64,
    full_cover: u64,
    straddle: u64,
    residual_scan: u64,
}

impl CatalogStats {
    fn flush(&self, t: &PlanTally) {
        if t.disjoint > 0 {
            self.disjoint.add(t.disjoint);
        }
        if t.full_cover > 0 {
            self.full_cover.add(t.full_cover);
        }
        if t.straddle > 0 {
            self.straddle.add(t.straddle);
        }
        if t.residual_scan > 0 {
            self.residual_scan.add(t.residual_scan);
        }
    }
}

/// The perturbed-form overlay: per group, a sparse histogram of the
/// *published* (randomized) SA column, indexed by the plan's dense
/// support index. Lets fully-covered groups contribute their observed
/// counts in `O(m)` instead of `O(|group|)`.
#[derive(Debug, Clone)]
struct AltSaOverlay {
    /// The SA attribute index in the published table.
    sa: usize,
    /// Support size `m` of the perturbation plan.
    m: usize,
    /// Per group: `(dense_index, count)` pairs, ascending by index.
    hists: Vec<Vec<(u32, u32)>>,
}

/// A per-artifact aggregate catalog. See the [module docs](self) for the
/// data layout and the bit-identity argument. Build one with
/// [`Catalog::for_partition`] (generalized forms) or
/// [`Catalog::for_table`] (Anatomy / perturbation), and restore one with
/// [`Catalog::from_spec`].
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Covered attributes in extent order. For EC grouping this is the
    /// partition's QI attributes followed by the SA; for block grouping,
    /// every attribute.
    covered: Vec<usize>,
    /// Domain cardinality per covered attribute.
    cards: Vec<u32>,
    /// How rows were grouped (kept verbatim for [`Catalog::spec`]).
    grouping: GroupingSpec,
    /// Row ids per group.
    groups: Vec<Vec<RowId>>,
    /// `extents[g][ci]`: the value extent of covered attribute `ci` in
    /// group `g` — the published box for generalized QI attributes, the
    /// raw code extent otherwise.
    extents: Vec<Vec<(u32, u32)>>,
    /// `sorted[ci][g]`: group `g`'s codes of covered attribute `ci`,
    /// ascending.
    sorted: Vec<Vec<Vec<u32>>>,
    /// `postings[ci][v]`: ids of groups whose extent of covered attribute
    /// `ci` contains value `v`, ascending.
    postings: Vec<Vec<Vec<u32>>>,
    /// `prefix[ci][v]`: rows with code `< v` in covered attribute `ci`
    /// (length `card + 1`).
    prefix: Vec<Vec<u64>>,
    /// Total rows across all groups.
    num_rows: usize,
    /// For EC grouping: how many leading `covered` entries are QI
    /// attributes (the SA is last). `covered.len()` otherwise.
    qi_len: usize,
    /// Published-SA histograms for perturbed artifacts.
    alt_sa: Option<AltSaOverlay>,
    /// Plan-classification counters (detached unless the server wires in
    /// registry-backed handles via [`Catalog::set_stats`]).
    stats: CatalogStats,
}

impl Catalog {
    /// Builds the catalog for a generalized publication: one group per
    /// EC, covering the partition's QI attributes (with their *published*
    /// boxes as extents, exactly as [`crate::GeneralizedView`] derives
    /// them) plus the SA.
    pub fn for_partition(table: &Table, partition: &Partition) -> Self {
        let mut covered = partition.qi().to_vec();
        covered.push(partition.sa());
        let qi_len = covered.len() - 1;
        let groups: Vec<Vec<RowId>> = partition.ecs().to_vec();
        let mut extents = Vec::with_capacity(groups.len());
        for (i, ec) in groups.iter().enumerate() {
            let raw = partition.ec_extent(table, i);
            let mut ext: Vec<(u32, u32)> = partition
                .qi()
                .iter()
                .zip(&raw)
                .map(|(&a, &(lo, hi))| match table.schema().attr(a).kind() {
                    AttrKind::Numeric { .. } => (lo, hi),
                    AttrKind::Categorical { hierarchy } => {
                        hierarchy.leaf_range(hierarchy.lca_of_leaves(lo, hi))
                    }
                })
                .collect();
            let sa_col = table.column(partition.sa());
            let mut lo = u32::MAX;
            let mut hi = 0u32;
            for &r in ec {
                lo = lo.min(sa_col[r]);
                hi = hi.max(sa_col[r]);
            }
            ext.push((lo, hi));
            extents.push(ext);
        }
        Self::assemble(table, covered, qi_len, GroupingSpec::Ecs, groups, extents)
    }

    /// Builds the catalog for a form that publishes QIs verbatim (Anatomy
    /// or perturbation): rows are sorted by their Hilbert key over every
    /// non-SA attribute (row order if there are none) and cut into blocks
    /// of [`DEFAULT_BLOCK_ROWS`]; every attribute is covered with its raw
    /// extent.
    pub fn for_table(table: &Table, sa: usize) -> Self {
        let perm = block_permutation(table, sa);
        Self::from_blocks(table, DEFAULT_BLOCK_ROWS, perm)
    }

    /// Attaches the perturbed-form overlay: per group, the sparse
    /// histogram of the *published* SA column under `published`'s plan.
    /// Required before calling [`Catalog::perturbed_observed`].
    ///
    /// # Panics
    ///
    /// Panics if a published SA value is outside the plan's support
    /// (impossible for tables produced by the perturbation scheme).
    #[must_use]
    pub fn with_perturbed_overlay(mut self, published: &PerturbedTable) -> Self {
        let col = published.table.column(published.sa);
        let m = published.plan.m();
        let mut hists = Vec::with_capacity(self.groups.len());
        for rows in &self.groups {
            let mut dense = vec![0u32; m];
            for &r in rows {
                let idx = published
                    .plan
                    .dense_index(col[r])
                    .expect("perturbed values stay in the support");
                dense[idx] += 1;
            }
            let hist: Vec<(u32, u32)> = dense
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(i, &c)| (i as u32, c))
                .collect();
            hists.push(hist);
        }
        self.alt_sa = Some(AltSaOverlay {
            sa: published.sa,
            m,
            hists,
        });
        self
    }

    /// Rebuilds a catalog from a persisted [`CatalogSpec`]. `partition`
    /// must be the artifact's partition for EC grouping; `sa` is the SA
    /// attribute (used to cross-check `covered`).
    ///
    /// # Errors
    ///
    /// Returns a message if the spec is structurally invalid for this
    /// publication: wrong version, a grouping that does not match the
    /// form, a `perm` that is not a permutation of the table's rows, a
    /// zero block size, or a covered set differing from the one this
    /// version derives. Callers should treat version skew (`version !=
    /// CATALOG_VERSION`) as "rebuild from scratch" *before* calling this.
    pub fn from_spec(
        table: &Table,
        partition: Option<&Partition>,
        sa: usize,
        spec: &CatalogSpec,
    ) -> Result<Self, String> {
        if spec.version != CATALOG_VERSION {
            return Err(format!(
                "catalog version {} does not match this reader ({CATALOG_VERSION})",
                spec.version
            ));
        }
        let built = match (&spec.grouping, partition) {
            (GroupingSpec::Ecs, Some(p)) => Self::for_partition(table, p),
            (GroupingSpec::Ecs, None) => {
                return Err("EC-grouped catalog without a partition".into());
            }
            (GroupingSpec::Blocks { block_rows, perm }, _) => {
                if *block_rows == 0 {
                    return Err("catalog block size must be positive".into());
                }
                let n = table.num_rows();
                if perm.len() != n {
                    return Err(format!(
                        "catalog permutation covers {} rows, table has {n}",
                        perm.len()
                    ));
                }
                let mut seen = vec![false; n];
                for &r in perm {
                    let r = r as usize;
                    if r >= n || seen[r] {
                        return Err("catalog permutation is not a permutation".into());
                    }
                    seen[r] = true;
                }
                Self::from_blocks(table, *block_rows, perm.clone())
            }
        };
        if built.covered != spec.covered {
            return Err(format!(
                "catalog covers attributes {:?}, expected {:?}",
                spec.covered, built.covered
            ));
        }
        let _ = sa; // the covered cross-check subsumes the SA position
        Ok(built)
    }

    /// The persistable description of this catalog (see
    /// [`CatalogSpec`]); the perturbed overlay is always rebuilt and not
    /// part of it.
    pub fn spec(&self) -> CatalogSpec {
        CatalogSpec {
            version: CATALOG_VERSION,
            grouping: self.grouping.clone(),
            covered: self.covered.clone(),
        }
    }

    /// Number of row groups.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Replaces the plan-classification counters with shared handles (the
    /// server passes registry-backed ones so `metrics` can report how
    /// queries resolved: disjoint prune / whole-group summary / straddle
    /// binary search / residual row scan).
    pub fn set_stats(&mut self, stats: CatalogStats) {
        self.stats = stats;
    }

    /// The covered attributes, in extent order.
    pub fn covered(&self) -> &[usize] {
        &self.covered
    }

    /// Splits `preds` into the catalog-covered and residual parts.
    /// Predicates spanning an attribute's whole domain match every row
    /// and appear in neither part.
    ///
    /// ```
    /// use betalike_query::{Catalog, RangePred};
    /// use betalike_microdata::synthetic::{random_table, SyntheticConfig};
    ///
    /// let t = random_table(&SyntheticConfig::default());
    /// let catalog = Catalog::for_table(&t, 2);
    /// let preds = [RangePred { attr: 0, lo: 1, hi: 3 }];
    /// let plan = catalog.plan(&preds);
    /// assert_eq!(plan.covered, preds);
    /// assert!(plan.residual.is_empty());
    /// ```
    pub fn plan(&self, preds: &[RangePred]) -> CatalogPlan {
        let mut covered = Vec::new();
        let mut residual = Vec::new();
        for p in preds {
            match self.covered_index(p.attr) {
                Some(ci) => {
                    if !self.spans_domain(ci, p) {
                        covered.push(*p);
                    }
                }
                None => residual.push(*p),
            }
        }
        CatalogPlan { covered, residual }
    }

    /// Exact number of rows of `table` matching every predicate,
    /// bit-identical (it is an integer) to a full scan.
    ///
    /// `table` must be the table the catalog was built over, or one that
    /// agrees with it on every covered column — the catalog consults its
    /// summaries for covered predicates and only reads `table` for
    /// residual scanning.
    pub fn count(&self, table: &Table, preds: &[RangePred]) -> u64 {
        self.count_excluding(table, preds, None)
    }

    /// [`Catalog::count`] with predicates on `exclude` forced onto the
    /// residual path — used by the perturbed estimator, whose table
    /// differs from the build table in exactly the SA column.
    fn count_excluding(&self, table: &Table, preds: &[RangePred], exclude: Option<usize>) -> u64 {
        let mut covered: Vec<(usize, RangePred)> = Vec::new();
        let mut residual: Vec<RangePred> = Vec::new();
        for p in preds {
            match self.covered_index(p.attr) {
                Some(ci) if Some(p.attr) != exclude => {
                    if !self.spans_domain(ci, p) {
                        covered.push((ci, *p));
                    }
                }
                _ => residual.push(*p),
            }
        }
        if covered.is_empty() && residual.is_empty() {
            return self.num_rows as u64;
        }
        let mut tally = PlanTally::default();
        // O(1): a single covered predicate answers from the prefix sums.
        if residual.is_empty() && covered.len() == 1 {
            self.stats.full_cover.inc();
            let (ci, p) = covered[0];
            let hi = p.hi.min(self.cards[ci] - 1) as usize;
            if p.lo as usize > hi {
                return 0;
            }
            return self.prefix[ci][hi + 1] - self.prefix[ci][p.lo as usize];
        }
        let res_cols: Vec<(&[u32], RangePred)> = residual
            .iter()
            .map(|p| (table.column(p.attr), *p))
            .collect();
        let mut total = 0u64;
        'groups: for g in self.candidates(&covered) {
            let mut straddle: Vec<(usize, RangePred)> = Vec::new();
            for &(ci, p) in &covered {
                let (lo, hi) = self.extents[g][ci];
                if p.hi < lo || p.lo > hi {
                    tally.disjoint += 1;
                    continue 'groups;
                }
                if !(p.lo <= lo && p.hi >= hi) {
                    straddle.push((ci, p));
                }
            }
            total += match (straddle.as_slice(), res_cols.is_empty()) {
                // Every covered predicate spans the group: count it whole.
                ([], true) => {
                    tally.full_cover += 1;
                    self.groups[g].len() as u64
                }
                // One straddling predicate: binary search its sorted codes.
                ([(ci, p)], true) => {
                    tally.straddle += 1;
                    let (ci, p) = (*ci, *p);
                    let codes = &self.sorted[ci][g];
                    (codes.partition_point(|&v| v <= p.hi) - codes.partition_point(|&v| v < p.lo))
                        as u64
                }
                // Residual scan over this group's rows only.
                _ => {
                    tally.residual_scan += 1;
                    let cols: Vec<(&[u32], RangePred)> = straddle
                        .iter()
                        .map(|&(_, p)| (table.column(p.attr), p))
                        .chain(res_cols.iter().copied())
                        .collect();
                    let mut c = 0u64;
                    'rows: for &r in &self.groups[g] {
                        for (col, p) in &cols {
                            let v = col[r];
                            if v < p.lo || v > p.hi {
                                continue 'rows;
                            }
                        }
                        c += 1;
                    }
                    c
                }
            };
        }
        self.stats.flush(&tally);
        total
    }

    /// Estimated `COUNT(*)` for a generalized publication, bit-identical
    /// to [`crate::GeneralizedView::estimate`] on the same partition: ECs
    /// are visited in the same order, each EC's overlap fractions are
    /// multiplied in the same (query-predicate) order, and the only
    /// skipped ECs are those the scan path `continue`s past or whose term
    /// is `+0.0` (adding `+0.0` to the non-negative running total cannot
    /// change its bits).
    ///
    /// # Panics
    ///
    /// Panics if the catalog is not EC-grouped, or if a query predicate
    /// references an attribute outside the published QI set (matching the
    /// scan path).
    pub fn estimate_generalized(&self, query: &AggQuery) -> f64 {
        assert!(
            matches!(self.grouping, GroupingSpec::Ecs),
            "estimate_generalized requires an EC-grouped catalog"
        );
        let positions: Vec<(usize, &RangePred)> = query
            .qi_preds
            .iter()
            .map(|p| {
                let pos = self.covered[..self.qi_len]
                    .iter()
                    .position(|&a| a == p.attr)
                    .expect("query predicates an attribute outside the published QI set");
                (pos, p)
            })
            .collect();
        let sa_ci = self.qi_len;
        let mut tally = PlanTally::default();
        let mut total = 0.0;
        'groups: for g in 0..self.groups.len() {
            for &(pos, p) in &positions {
                let (lo, hi) = self.extents[g][pos];
                if p.hi < lo || p.lo > hi {
                    // The scan path computes frac = 0.0 and `continue`s.
                    tally.disjoint += 1;
                    continue 'groups;
                }
            }
            let (slo, shi) = self.extents[g][sa_ci];
            if query.sa_pred.hi < slo || query.sa_pred.lo > shi {
                // The scan path adds frac × 0 = +0.0: skipping is bitwise
                // equivalent.
                tally.disjoint += 1;
                continue;
            }
            // Every surviving group resolves by the per-group SA binary
            // search below — a straddle in plan-classification terms.
            tally.straddle += 1;
            let mut frac = 1.0;
            for &(pos, p) in &positions {
                let (lo, hi) = self.extents[g][pos];
                let cells = (hi - lo + 1) as f64;
                let olo = lo.max(p.lo);
                let ohi = hi.min(p.hi);
                frac *= (ohi - olo + 1) as f64 / cells;
            }
            let sa = &self.sorted[sa_ci][g];
            let lo_idx = sa.partition_point(|&v| v < query.sa_pred.lo);
            let hi_idx = sa.partition_point(|&v| v <= query.sa_pred.hi);
            total += frac * (hi_idx - lo_idx) as f64;
        }
        self.stats.flush(&tally);
        total
    }

    /// The observed-count vector a perturbed estimator needs: the number
    /// of rows of `published.table` matching the query's QI predicates,
    /// and those rows' published-SA counts per dense support index —
    /// bit-identical to `qi_matches` + `observed_counts` (every entry is
    /// an exactly-representable integer, so accumulation order cannot
    /// matter).
    ///
    /// # Panics
    ///
    /// Panics if the catalog was built without
    /// [`Catalog::with_perturbed_overlay`].
    pub fn perturbed_observed(
        &self,
        published: &PerturbedTable,
        query: &AggQuery,
    ) -> (u64, Vec<f64>) {
        let overlay = self
            .alt_sa
            .as_ref()
            .expect("perturbed_observed requires the perturbed overlay");
        let table = &published.table;
        let pub_col = table.column(overlay.sa);
        let mut covered: Vec<(usize, RangePred)> = Vec::new();
        let mut residual: Vec<RangePred> = Vec::new();
        for p in &query.qi_preds {
            match self.covered_index(p.attr) {
                // The build table and the published table differ in the SA
                // column, so SA predicates must scan the published table.
                Some(ci) if p.attr != overlay.sa => {
                    if !self.spans_domain(ci, p) {
                        covered.push((ci, *p));
                    }
                }
                _ => residual.push(*p),
            }
        }
        let res_cols: Vec<(&[u32], RangePred)> = residual
            .iter()
            .map(|p| (table.column(p.attr), *p))
            .collect();
        let mut tally = PlanTally::default();
        let mut matched = 0u64;
        let mut counts = vec![0.0; overlay.m];
        'groups: for g in self.candidates(&covered) {
            let mut straddles = false;
            for &(ci, p) in &covered {
                let (lo, hi) = self.extents[g][ci];
                if p.hi < lo || p.lo > hi {
                    tally.disjoint += 1;
                    continue 'groups;
                }
                if !(p.lo <= lo && p.hi >= hi) {
                    straddles = true;
                }
            }
            if !straddles && res_cols.is_empty() {
                // The whole group matches: add its published-SA histogram.
                tally.full_cover += 1;
                matched += self.groups[g].len() as u64;
                for &(idx, c) in &overlay.hists[g] {
                    counts[idx as usize] += c as f64;
                }
                continue;
            }
            tally.residual_scan += 1;
            let cols: Vec<(&[u32], RangePred)> = covered
                .iter()
                .map(|&(_, p)| (table.column(p.attr), p))
                .chain(res_cols.iter().copied())
                .collect();
            'rows: for &r in &self.groups[g] {
                for (col, p) in &cols {
                    let v = col[r];
                    if v < p.lo || v > p.hi {
                        continue 'rows;
                    }
                }
                matched += 1;
                let idx = published
                    .plan
                    .dense_index(pub_col[r])
                    .expect("perturbed values stay in the support");
                counts[idx] += 1.0;
            }
        }
        self.stats.flush(&tally);
        (matched, counts)
    }

    /// Candidate groups for a set of covered predicates: the posting
    /// lists of the narrowest predicate no wider than [`POSTING_FANOUT`]
    /// cells, merged ascending; every group when no predicate is that
    /// narrow. Ascending order is load-bearing for the estimate paths.
    fn candidates(&self, covered: &[(usize, RangePred)]) -> Vec<usize> {
        let narrow = covered
            .iter()
            .filter(|(_, p)| p.hi - p.lo < POSTING_FANOUT)
            .min_by_key(|(_, p)| p.hi - p.lo);
        match narrow {
            Some(&(ci, p)) => {
                let card = self.cards[ci];
                if p.lo >= card {
                    return Vec::new();
                }
                let mut ids: Vec<usize> = (p.lo..=p.hi.min(card - 1))
                    .flat_map(|v| self.postings[ci][v as usize].iter().map(|&g| g as usize))
                    .collect();
                ids.sort_unstable();
                ids.dedup();
                ids
            }
            None => (0..self.groups.len()).collect(),
        }
    }

    /// Index of `attr` within the covered set, if covered.
    fn covered_index(&self, attr: usize) -> Option<usize> {
        self.covered.iter().position(|&a| a == attr)
    }

    /// Whether a predicate spans covered attribute `ci`'s whole domain
    /// (and therefore matches every row).
    fn spans_domain(&self, ci: usize, p: &RangePred) -> bool {
        p.lo == 0 && p.hi >= self.cards[ci] - 1
    }

    /// Block-grouping constructor shared by [`Catalog::for_table`] and
    /// [`Catalog::from_spec`].
    fn from_blocks(table: &Table, block_rows: u32, perm: Vec<u32>) -> Self {
        let covered: Vec<usize> = (0..table.schema().arity()).collect();
        let qi_len = covered.len();
        let groups: Vec<Vec<RowId>> = perm
            .chunks(block_rows as usize)
            .map(|c| c.iter().map(|&r| r as usize).collect())
            .collect();
        let mut extents = Vec::with_capacity(groups.len());
        for rows in &groups {
            let ext: Vec<(u32, u32)> = covered
                .iter()
                .map(|&a| {
                    let col = table.column(a);
                    let mut lo = u32::MAX;
                    let mut hi = 0u32;
                    for &r in rows {
                        lo = lo.min(col[r]);
                        hi = hi.max(col[r]);
                    }
                    (lo, hi)
                })
                .collect();
            extents.push(ext);
        }
        Self::assemble(
            table,
            covered,
            qi_len,
            GroupingSpec::Blocks { block_rows, perm },
            groups,
            extents,
        )
    }

    /// Builds the derived structures (sorted codes, posting lists, prefix
    /// sums) shared by every grouping.
    fn assemble(
        table: &Table,
        covered: Vec<usize>,
        qi_len: usize,
        grouping: GroupingSpec,
        groups: Vec<Vec<RowId>>,
        extents: Vec<Vec<(u32, u32)>>,
    ) -> Self {
        let cards: Vec<u32> = covered
            .iter()
            .map(|&a| table.schema().attr(a).cardinality() as u32)
            .collect();
        let mut sorted = Vec::with_capacity(covered.len());
        let mut postings = Vec::with_capacity(covered.len());
        let mut prefix = Vec::with_capacity(covered.len());
        for (ci, &a) in covered.iter().enumerate() {
            let col = table.column(a);
            let card = cards[ci] as usize;
            let mut per_group = Vec::with_capacity(groups.len());
            for rows in &groups {
                let mut codes: Vec<u32> = rows.iter().map(|&r| col[r]).collect();
                codes.sort_unstable();
                per_group.push(codes);
            }
            sorted.push(per_group);
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); card];
            for (g, ext) in extents.iter().enumerate() {
                let (lo, hi) = ext[ci];
                if lo > hi {
                    continue; // empty group
                }
                for v in lo..=hi.min(cards[ci] - 1) {
                    lists[v as usize].push(g as u32);
                }
            }
            postings.push(lists);
            let mut sums = vec![0u64; card + 1];
            for rows in &groups {
                for &r in rows {
                    sums[col[r] as usize + 1] += 1;
                }
            }
            for v in 0..card {
                sums[v + 1] += sums[v];
            }
            prefix.push(sums);
        }
        let num_rows = groups.iter().map(Vec::len).sum();
        Catalog {
            covered,
            cards,
            grouping,
            groups,
            extents,
            sorted,
            postings,
            prefix,
            num_rows,
            qi_len,
            alt_sa: None,
            stats: CatalogStats::default(),
        }
    }
}

/// The row permutation block grouping cuts from: rows sorted (stably) by
/// their Hilbert key over every non-SA attribute, or row order when the
/// table has no non-SA attributes.
fn block_permutation(table: &Table, sa: usize) -> Vec<u32> {
    let dims: Vec<usize> = (0..table.schema().arity()).filter(|&a| a != sa).collect();
    let mut perm: Vec<u32> = (0..table.num_rows() as u32).collect();
    if !dims.is_empty() {
        let keys = hilbert_keys(table, &dims);
        perm.sort_by_key(|&r| keys[r as usize]);
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer::{exact_count, qi_matches};
    use crate::workload::{generate_workload, WorkloadConfig};
    use betalike::{burel, BurelConfig};
    use betalike_microdata::synthetic::{random_table, SyntheticConfig};

    fn table() -> Table {
        random_table(&SyntheticConfig {
            rows: 2_000,
            qi_attrs: 2,
            qi_cardinality: 16,
            sa_cardinality: 8,
            seed: 21,
            ..Default::default()
        })
    }

    #[test]
    fn block_count_matches_scan() {
        let t = table();
        let catalog = Catalog::for_table(&t, 2);
        let w = generate_workload(
            &t,
            &WorkloadConfig {
                qi_pool: vec![0, 1],
                sa: 2,
                lambda: 2,
                theta: 0.2,
                num_queries: 40,
                seed: 22,
            },
        );
        for q in &w {
            let preds: Vec<RangePred> = q.qi_preds.iter().chain([&q.sa_pred]).copied().collect();
            assert_eq!(catalog.count(&t, &preds), exact_count(&t, q));
            assert_eq!(
                catalog.count(&t, &q.qi_preds),
                qi_matches(&t, q).len() as u64
            );
        }
    }

    #[test]
    fn ec_count_matches_scan() {
        let t = table();
        let p = burel(&t, &[0, 1], 2, &BurelConfig::new(4.0).with_seed(1)).unwrap();
        let catalog = Catalog::for_partition(&t, &p);
        let w = generate_workload(
            &t,
            &WorkloadConfig {
                qi_pool: vec![0, 1],
                sa: 2,
                lambda: 2,
                theta: 0.15,
                num_queries: 40,
                seed: 23,
            },
        );
        for q in &w {
            let preds: Vec<RangePred> = q.qi_preds.iter().chain([&q.sa_pred]).copied().collect();
            assert_eq!(catalog.count(&t, &preds), exact_count(&t, q));
        }
    }

    #[test]
    fn prefix_fast_path_single_pred() {
        let t = table();
        let catalog = Catalog::for_table(&t, 2);
        for lo in 0..16u32 {
            for hi in lo..16u32 {
                let p = RangePred { attr: 0, lo, hi };
                let col = t.column(0);
                let want = col.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
                assert_eq!(catalog.count(&t, &[p]), want);
            }
        }
        // Out-of-domain ranges clamp / return zero.
        assert_eq!(
            catalog.count(
                &t,
                &[RangePred {
                    attr: 0,
                    lo: 99,
                    hi: 120
                }]
            ),
            0
        );
    }

    #[test]
    fn plan_splits_covered_and_residual() {
        let t = table();
        let p = burel(&t, &[0], 2, &BurelConfig::new(4.0)).unwrap();
        let catalog = Catalog::for_partition(&t, &p);
        // Attr 1 is outside the partition's QI set, so it is residual.
        let preds = [
            RangePred {
                attr: 0,
                lo: 2,
                hi: 5,
            },
            RangePred {
                attr: 1,
                lo: 0,
                hi: 3,
            },
        ];
        let plan = catalog.plan(&preds);
        assert_eq!(plan.covered, vec![preds[0]]);
        assert_eq!(plan.residual, vec![preds[1]]);
        // A whole-domain predicate lands in neither part.
        let full = RangePred {
            attr: 0,
            lo: 0,
            hi: 15,
        };
        let plan = catalog.plan(&[full]);
        assert!(plan.covered.is_empty() && plan.residual.is_empty());
        // Counting with the residual predicate still matches the scan.
        let want = t
            .column(0)
            .iter()
            .zip(t.column(1))
            .filter(|&(&a, &b)| (2..=5).contains(&a) && b <= 3)
            .count() as u64;
        assert_eq!(catalog.count(&t, &preds), want);
    }

    #[test]
    fn spec_roundtrip_rebuilds_identically() {
        let t = table();
        let catalog = Catalog::for_table(&t, 2);
        let spec = catalog.spec();
        let rebuilt = Catalog::from_spec(&t, None, 2, &spec).unwrap();
        assert_eq!(rebuilt.spec(), spec);
        assert_eq!(rebuilt.num_groups(), catalog.num_groups());
        let p = RangePred {
            attr: 1,
            lo: 3,
            hi: 9,
        };
        assert_eq!(rebuilt.count(&t, &[p]), catalog.count(&t, &[p]));
    }

    #[test]
    fn from_spec_rejects_bad_specs() {
        let t = table();
        let good = Catalog::for_table(&t, 2).spec();
        let skew = CatalogSpec {
            version: CATALOG_VERSION + 1,
            ..good.clone()
        };
        assert!(Catalog::from_spec(&t, None, 2, &skew)
            .unwrap_err()
            .contains("version"));
        let GroupingSpec::Blocks { block_rows, perm } = good.grouping.clone() else {
            unreachable!();
        };
        let mut dup = perm.clone();
        dup[0] = dup[1];
        let bad = CatalogSpec {
            grouping: GroupingSpec::Blocks {
                block_rows,
                perm: dup,
            },
            ..good.clone()
        };
        assert!(Catalog::from_spec(&t, None, 2, &bad)
            .unwrap_err()
            .contains("permutation"));
        let short = CatalogSpec {
            grouping: GroupingSpec::Blocks {
                block_rows,
                perm: perm[..perm.len() - 1].to_vec(),
            },
            ..good.clone()
        };
        assert!(Catalog::from_spec(&t, None, 2, &short).is_err());
        let zero = CatalogSpec {
            grouping: GroupingSpec::Blocks {
                block_rows: 0,
                perm,
            },
            ..good
        };
        assert!(Catalog::from_spec(&t, None, 2, &zero)
            .unwrap_err()
            .contains("positive"));
        assert!(Catalog::from_spec(
            &t,
            None,
            2,
            &CatalogSpec {
                version: CATALOG_VERSION,
                grouping: GroupingSpec::Ecs,
                covered: vec![0, 1, 2],
            }
        )
        .unwrap_err()
        .contains("partition"));
    }
}

//! Answering queries from a *resident* publication.
//!
//! The free functions in [`crate::answer`] take the publication apart on
//! every call; a long-lived publisher (the `betalike-server` crate, the
//! figure binaries' inner loops) instead wants one value that owns
//! everything a publication needs to answer `COUNT(*)` queries repeatedly:
//! the pre-built per-EC boxes of a [`GeneralizedView`], the perturbation
//! plan of a [`PerturbedTable`], or an Anatomy-style histogram — plus a
//! shared handle on the original table for exact answers.
//!
//! A [`PublishedAnswerer`] is cheap to clone (its table handles are
//! [`Arc`]s) and `Send + Sync`, so one published artifact can be computed
//! once and then serve many concurrent readers. Its answers are
//! bit-identical to the corresponding free-function paths — the integration
//! tests of `betalike-server` rely on exactly that.

use crate::answer::{estimate_anatomy, estimate_perturbed, exact_count, GeneralizedView};
use crate::catalog::{Catalog, CatalogSpec, CatalogStats};
use crate::workload::{AggQuery, RangePred};
use betalike::error::Result;
use betalike::perturb::PerturbedTable;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_metrics::Partition;
use betalike_microdata::Table;
use std::sync::Arc;

/// The publication form an answerer holds.
#[derive(Debug, Clone)]
enum Form {
    /// A generalized partition, pre-processed into per-EC boxes.
    Generalized(GeneralizedView),
    /// A perturbed table plus its reconstruction plan.
    Perturbed(PerturbedTable),
    /// Exact QIs plus the global SA histogram.
    Anatomy(AnatomyBaseline),
}

/// One published artifact, resident in memory, answering aggregate
/// `COUNT(*)` queries without re-deriving any publication state per call.
///
/// By default an answerer also derives a [`Catalog`], so counts resolve
/// from per-group summaries instead of row scans — bit-identically, which
/// the `_opt` constructors let tests and benchmarks verify by opting out.
///
/// ```
/// use betalike_query::{PublishedAnswerer, generate_workload, WorkloadConfig};
/// use betalike::{burel, BurelConfig};
/// use betalike_microdata::synthetic::{random_table, SyntheticConfig};
/// use std::sync::Arc;
///
/// let table = Arc::new(random_table(&SyntheticConfig::default()));
/// let partition = burel(&table, &[0, 1], 2, &BurelConfig::new(4.0)).unwrap();
/// let fast = PublishedAnswerer::generalized(Arc::clone(&table), &partition);
/// let scan = PublishedAnswerer::generalized_opt(Arc::clone(&table), &partition, false);
/// assert!(fast.catalog().is_some() && scan.catalog().is_none());
/// let cfg = WorkloadConfig { qi_pool: vec![0, 1], sa: 2, lambda: 2,
///                            theta: 0.2, num_queries: 5, seed: 1 };
/// for q in &generate_workload(&table, &cfg) {
///     assert_eq!(fast.exact(q), scan.exact(q));
///     let (f, s) = (fast.estimate(q).unwrap(), scan.estimate(q).unwrap());
///     assert_eq!(f.to_bits(), s.to_bits());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct PublishedAnswerer {
    source: Arc<Table>,
    form: Form,
    catalog: Option<Arc<Catalog>>,
}

impl PublishedAnswerer {
    /// Wraps a generalized publication: the per-EC boxes and sorted SA lists
    /// are built once, here, along with the aggregate catalog.
    pub fn generalized(source: Arc<Table>, partition: &Partition) -> Self {
        Self::generalized_opt(source, partition, true)
    }

    /// [`PublishedAnswerer::generalized`] with the catalog optional —
    /// `catalog: false` keeps only the scanning paths (benchmarking, and
    /// serving with `--no-catalog`).
    pub fn generalized_opt(source: Arc<Table>, partition: &Partition, catalog: bool) -> Self {
        let view = GeneralizedView::new(&source, partition);
        let catalog = catalog.then(|| Arc::new(Catalog::for_partition(&source, partition)));
        PublishedAnswerer {
            source,
            form: Form::Generalized(view),
            catalog,
        }
    }

    /// Wraps a perturbed publication (`source` is the *original* table the
    /// publisher keeps for exact answers; `published` carries the randomized
    /// copy recipients see). Builds the aggregate catalog.
    pub fn perturbed(source: Arc<Table>, published: PerturbedTable) -> Self {
        Self::perturbed_opt(source, published, true)
    }

    /// [`PublishedAnswerer::perturbed`] with the catalog optional.
    pub fn perturbed_opt(source: Arc<Table>, published: PerturbedTable, catalog: bool) -> Self {
        let catalog = catalog.then(|| {
            Arc::new(Catalog::for_table(&source, published.sa).with_perturbed_overlay(&published))
        });
        PublishedAnswerer {
            source,
            form: Form::Perturbed(published),
            catalog,
        }
    }

    /// Wraps an Anatomy-style publication of `source`'s SA column. Builds
    /// the aggregate catalog.
    pub fn anatomy(source: Arc<Table>, sa: usize) -> Self {
        Self::anatomy_opt(source, sa, true)
    }

    /// [`PublishedAnswerer::anatomy`] with the catalog optional.
    pub fn anatomy_opt(source: Arc<Table>, sa: usize, catalog: bool) -> Self {
        let baseline = AnatomyBaseline::publish(&source, sa);
        let catalog = catalog.then(|| Arc::new(Catalog::for_table(&source, sa)));
        PublishedAnswerer {
            source,
            form: Form::Anatomy(baseline),
            catalog,
        }
    }

    /// The original table this publication was derived from.
    pub fn source(&self) -> &Arc<Table> {
        &self.source
    }

    /// The perturbed publication this answerer serves, if it is one — the
    /// persistence layer (`betalike-store`) snapshots the randomized SA
    /// column and the plan through this accessor.
    pub fn perturbed_form(&self) -> Option<&PerturbedTable> {
        match &self.form {
            Form::Perturbed(published) => Some(published),
            _ => None,
        }
    }

    /// A short label for the publication form (`"generalized"`,
    /// `"perturbed"`, `"anatomy"`).
    pub fn kind(&self) -> &'static str {
        match &self.form {
            Form::Generalized(_) => "generalized",
            Form::Perturbed(_) => "perturbed",
            Form::Anatomy(_) => "anatomy",
        }
    }

    /// The aggregate catalog, when one was built.
    pub fn catalog(&self) -> Option<&Arc<Catalog>> {
        self.catalog.as_ref()
    }

    /// Wires plan-classification counters into the catalog, when one was
    /// built (the server passes registry-backed [`CatalogStats`] handles
    /// so its `metrics` op can report query plan shapes). Clones the
    /// catalog if the handle is already shared, so attach at build time.
    pub fn attach_catalog_stats(&mut self, stats: CatalogStats) {
        if let Some(catalog) = &mut self.catalog {
            Arc::make_mut(catalog).set_stats(stats);
        }
    }

    /// The persistable spec of the catalog, when one was built (see
    /// [`CatalogSpec`]).
    pub fn catalog_spec(&self) -> Option<CatalogSpec> {
        self.catalog.as_ref().map(|c| c.spec())
    }

    /// Rebuilds the catalog from a persisted spec, replacing any current
    /// one. `partition` must be the artifact's partition for generalized
    /// forms. Restore paths call this so a stored grouping is honored
    /// verbatim; version-skewed specs are the *caller's* cue to fall back
    /// to the default build instead.
    ///
    /// # Errors
    ///
    /// Propagates [`Catalog::from_spec`]'s structural validation.
    pub fn rebuild_catalog(
        &mut self,
        partition: Option<&Partition>,
        spec: &CatalogSpec,
    ) -> std::result::Result<(), String> {
        let catalog = match &self.form {
            Form::Generalized(_) => {
                let p = partition.ok_or("generalized catalog needs the partition")?;
                Catalog::from_spec(&self.source, Some(p), p.sa(), spec)?
            }
            Form::Perturbed(published) => {
                Catalog::from_spec(&self.source, None, published.sa, spec)?
                    .with_perturbed_overlay(published)
            }
            Form::Anatomy(baseline) => Catalog::from_spec(&self.source, None, baseline.sa(), spec)?,
        };
        self.catalog = Some(Arc::new(catalog));
        Ok(())
    }

    /// Estimated `COUNT(*)` from the published form, bit-identical to the
    /// corresponding free-function estimator whether or not the catalog
    /// path answers it (see [`crate::catalog`] for the argument).
    ///
    /// # Errors
    ///
    /// Propagates a singular-matrix failure from perturbation
    /// reconstruction; the other forms cannot fail.
    pub fn estimate(&self, query: &AggQuery) -> Result<f64> {
        let Some(catalog) = &self.catalog else {
            return self.estimate_scan(query);
        };
        match &self.form {
            Form::Generalized(_) => Ok(catalog.estimate_generalized(query)),
            Form::Perturbed(published) => {
                let (matched, counts) = catalog.perturbed_observed(published, query);
                if matched == 0 {
                    return Ok(0.0);
                }
                let recon = published.plan.reconstruct(&counts)?;
                let mut total = 0.0;
                for (i, &v) in published.plan.support().iter().enumerate() {
                    if query.sa_pred.matches(v) {
                        total += recon[i].max(0.0);
                    }
                }
                Ok(total)
            }
            Form::Anatomy(baseline) => {
                let matched = catalog.count(&self.source, &query.qi_preds);
                Ok(
                    baseline.estimate_from_len(
                        matched as usize,
                        query.sa_pred.lo,
                        query.sa_pred.hi,
                    ),
                )
            }
        }
    }

    /// [`PublishedAnswerer::estimate`] forced through the row-scanning
    /// free functions, ignoring the catalog — the equivalence tests and
    /// the `perf` crossover benchmark compare against this.
    ///
    /// # Errors
    ///
    /// Propagates a singular-matrix failure from perturbation
    /// reconstruction; the other forms cannot fail.
    pub fn estimate_scan(&self, query: &AggQuery) -> Result<f64> {
        match &self.form {
            Form::Generalized(view) => Ok(view.estimate(query)),
            Form::Perturbed(published) => estimate_perturbed(published, query),
            Form::Anatomy(baseline) => Ok(estimate_anatomy(baseline, &self.source, query)),
        }
    }

    /// Exact `COUNT(*)` on the original table (the publisher-side ground
    /// truth used for relative-error reporting) — from catalog summaries
    /// when available, always equal to [`PublishedAnswerer::exact_scan`].
    pub fn exact(&self, query: &AggQuery) -> u64 {
        match &self.catalog {
            Some(catalog) => {
                let preds: Vec<RangePred> = query
                    .qi_preds
                    .iter()
                    .chain([&query.sa_pred])
                    .copied()
                    .collect();
                catalog.count(&self.source, &preds)
            }
            None => exact_count(&self.source, query),
        }
    }

    /// [`PublishedAnswerer::exact`] forced through the full row scan.
    pub fn exact_scan(&self, query: &AggQuery) -> u64 {
        exact_count(&self.source, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use betalike::model::BetaLikeness;
    use betalike::{burel, perturb, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};

    fn setup() -> (Arc<Table>, Vec<AggQuery>) {
        let table = Arc::new(census::generate(&CensusConfig::new(4_000, 5)));
        let queries = generate_workload(
            &table,
            &WorkloadConfig {
                qi_pool: vec![0, 1, 2],
                sa: 5,
                lambda: 2,
                theta: 0.15,
                num_queries: 60,
                seed: 8,
            },
        );
        (table, queries)
    }

    #[test]
    fn generalized_answers_match_free_functions_bitwise() {
        let (table, queries) = setup();
        let qi = vec![0usize, 1, 2];
        let p = burel(&table, &qi, 5, &BurelConfig::new(4.0).with_seed(3)).unwrap();
        let view = GeneralizedView::new(&table, &p);
        let ans = PublishedAnswerer::generalized(Arc::clone(&table), &p);
        assert_eq!(ans.kind(), "generalized");
        for q in &queries {
            let got = ans.estimate(q).unwrap();
            assert_eq!(got.to_bits(), view.estimate(q).to_bits());
            assert_eq!(ans.exact(q), exact_count(&table, q));
        }
    }

    #[test]
    fn perturbed_and_anatomy_match_free_functions_bitwise() {
        let (table, queries) = setup();
        let model = BetaLikeness::new(4.0).unwrap();
        let published = perturb(&table, 5, &model, 7).unwrap();
        let pert = PublishedAnswerer::perturbed(Arc::clone(&table), published.clone());
        let anat = PublishedAnswerer::anatomy(Arc::clone(&table), 5);
        assert_eq!(pert.kind(), "perturbed");
        assert_eq!(anat.kind(), "anatomy");
        let baseline = AnatomyBaseline::publish(&table, 5);
        for q in &queries {
            let got = pert.estimate(q).unwrap();
            let want = estimate_perturbed(&published, q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            let got = anat.estimate(q).unwrap();
            let want = estimate_anatomy(&baseline, &table, q);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn answerer_is_cheap_to_share_across_threads() {
        let (table, queries) = setup();
        let qi = vec![0usize, 1, 2];
        let p = burel(&table, &qi, 5, &BurelConfig::new(4.0).with_seed(1)).unwrap();
        let ans = PublishedAnswerer::generalized(table, &p);
        let serial: Vec<u64> = queries
            .iter()
            .map(|q| ans.estimate(q).unwrap().to_bits())
            .collect();
        let answers = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ans = ans.clone();
                    let queries = &queries;
                    s.spawn(move || {
                        queries
                            .iter()
                            .map(|q| ans.estimate(q).unwrap().to_bits())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for got in answers {
            assert_eq!(got, serial, "shared answerer must be deterministic");
        }
    }
}

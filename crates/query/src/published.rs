//! Answering queries from a *resident* publication.
//!
//! The free functions in [`crate::answer`] take the publication apart on
//! every call; a long-lived publisher (the `betalike-server` crate, the
//! figure binaries' inner loops) instead wants one value that owns
//! everything a publication needs to answer `COUNT(*)` queries repeatedly:
//! the pre-built per-EC boxes of a [`GeneralizedView`], the perturbation
//! plan of a [`PerturbedTable`], or an Anatomy-style histogram — plus a
//! shared handle on the original table for exact answers.
//!
//! A [`PublishedAnswerer`] is cheap to clone (its table handles are
//! [`Arc`]s) and `Send + Sync`, so one published artifact can be computed
//! once and then serve many concurrent readers. Its answers are
//! bit-identical to the corresponding free-function paths — the integration
//! tests of `betalike-server` rely on exactly that.

use crate::answer::{estimate_anatomy, estimate_perturbed, exact_count, GeneralizedView};
use crate::workload::AggQuery;
use betalike::error::Result;
use betalike::perturb::PerturbedTable;
use betalike_baselines::anatomy::AnatomyBaseline;
use betalike_metrics::Partition;
use betalike_microdata::Table;
use std::sync::Arc;

/// The publication form an answerer holds.
#[derive(Debug, Clone)]
enum Form {
    /// A generalized partition, pre-processed into per-EC boxes.
    Generalized(GeneralizedView),
    /// A perturbed table plus its reconstruction plan.
    Perturbed(PerturbedTable),
    /// Exact QIs plus the global SA histogram.
    Anatomy(AnatomyBaseline),
}

/// One published artifact, resident in memory, answering aggregate
/// `COUNT(*)` queries without re-deriving any publication state per call.
#[derive(Debug, Clone)]
pub struct PublishedAnswerer {
    source: Arc<Table>,
    form: Form,
}

impl PublishedAnswerer {
    /// Wraps a generalized publication: the per-EC boxes and sorted SA lists
    /// are built once, here.
    pub fn generalized(source: Arc<Table>, partition: &Partition) -> Self {
        let view = GeneralizedView::new(&source, partition);
        PublishedAnswerer {
            source,
            form: Form::Generalized(view),
        }
    }

    /// Wraps a perturbed publication (`source` is the *original* table the
    /// publisher keeps for exact answers; `published` carries the randomized
    /// copy recipients see).
    pub fn perturbed(source: Arc<Table>, published: PerturbedTable) -> Self {
        PublishedAnswerer {
            source,
            form: Form::Perturbed(published),
        }
    }

    /// Wraps an Anatomy-style publication of `source`'s SA column.
    pub fn anatomy(source: Arc<Table>, sa: usize) -> Self {
        let baseline = AnatomyBaseline::publish(&source, sa);
        PublishedAnswerer {
            source,
            form: Form::Anatomy(baseline),
        }
    }

    /// The original table this publication was derived from.
    pub fn source(&self) -> &Arc<Table> {
        &self.source
    }

    /// The perturbed publication this answerer serves, if it is one — the
    /// persistence layer (`betalike-store`) snapshots the randomized SA
    /// column and the plan through this accessor.
    pub fn perturbed_form(&self) -> Option<&PerturbedTable> {
        match &self.form {
            Form::Perturbed(published) => Some(published),
            _ => None,
        }
    }

    /// A short label for the publication form (`"generalized"`,
    /// `"perturbed"`, `"anatomy"`).
    pub fn kind(&self) -> &'static str {
        match &self.form {
            Form::Generalized(_) => "generalized",
            Form::Perturbed(_) => "perturbed",
            Form::Anatomy(_) => "anatomy",
        }
    }

    /// Estimated `COUNT(*)` from the published form, bit-identical to the
    /// corresponding free-function estimator.
    ///
    /// # Errors
    ///
    /// Propagates a singular-matrix failure from perturbation
    /// reconstruction; the other forms cannot fail.
    pub fn estimate(&self, query: &AggQuery) -> Result<f64> {
        match &self.form {
            Form::Generalized(view) => Ok(view.estimate(query)),
            Form::Perturbed(published) => estimate_perturbed(published, query),
            Form::Anatomy(baseline) => Ok(estimate_anatomy(baseline, &self.source, query)),
        }
    }

    /// Exact `COUNT(*)` on the original table (the publisher-side ground
    /// truth used for relative-error reporting).
    pub fn exact(&self, query: &AggQuery) -> u64 {
        exact_count(&self.source, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate_workload, WorkloadConfig};
    use betalike::model::BetaLikeness;
    use betalike::{burel, perturb, BurelConfig};
    use betalike_microdata::census::{self, CensusConfig};

    fn setup() -> (Arc<Table>, Vec<AggQuery>) {
        let table = Arc::new(census::generate(&CensusConfig::new(4_000, 5)));
        let queries = generate_workload(
            &table,
            &WorkloadConfig {
                qi_pool: vec![0, 1, 2],
                sa: 5,
                lambda: 2,
                theta: 0.15,
                num_queries: 60,
                seed: 8,
            },
        );
        (table, queries)
    }

    #[test]
    fn generalized_answers_match_free_functions_bitwise() {
        let (table, queries) = setup();
        let qi = vec![0usize, 1, 2];
        let p = burel(&table, &qi, 5, &BurelConfig::new(4.0).with_seed(3)).unwrap();
        let view = GeneralizedView::new(&table, &p);
        let ans = PublishedAnswerer::generalized(Arc::clone(&table), &p);
        assert_eq!(ans.kind(), "generalized");
        for q in &queries {
            let got = ans.estimate(q).unwrap();
            assert_eq!(got.to_bits(), view.estimate(q).to_bits());
            assert_eq!(ans.exact(q), exact_count(&table, q));
        }
    }

    #[test]
    fn perturbed_and_anatomy_match_free_functions_bitwise() {
        let (table, queries) = setup();
        let model = BetaLikeness::new(4.0).unwrap();
        let published = perturb(&table, 5, &model, 7).unwrap();
        let pert = PublishedAnswerer::perturbed(Arc::clone(&table), published.clone());
        let anat = PublishedAnswerer::anatomy(Arc::clone(&table), 5);
        assert_eq!(pert.kind(), "perturbed");
        assert_eq!(anat.kind(), "anatomy");
        let baseline = AnatomyBaseline::publish(&table, 5);
        for q in &queries {
            let got = pert.estimate(q).unwrap();
            let want = estimate_perturbed(&published, q).unwrap();
            assert_eq!(got.to_bits(), want.to_bits());
            let got = anat.estimate(q).unwrap();
            let want = estimate_anatomy(&baseline, &table, q);
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn answerer_is_cheap_to_share_across_threads() {
        let (table, queries) = setup();
        let qi = vec![0usize, 1, 2];
        let p = burel(&table, &qi, 5, &BurelConfig::new(4.0).with_seed(1)).unwrap();
        let ans = PublishedAnswerer::generalized(table, &p);
        let serial: Vec<u64> = queries
            .iter()
            .map(|q| ans.estimate(q).unwrap().to_bits())
            .collect();
        let answers = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ans = ans.clone();
                    let queries = &queries;
                    s.spawn(move || {
                        queries
                            .iter()
                            .map(|q| ans.estimate(q).unwrap().to_bits())
                            .collect::<Vec<u64>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect::<Vec<_>>()
        });
        for got in answers {
            assert_eq!(got, serial, "shared answerer must be deterministic");
        }
    }
}

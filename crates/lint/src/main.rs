//! `betalike-lint` — run the workspace invariant rules and report.
//!
//! ```text
//! betalike-lint [--root DIR] [--baseline FILE] [--json OUT] [--write-baseline]
//! ```
//!
//! Exit codes: `0` clean (after suppressions and baseline), `1` findings,
//! `2` usage or I/O error. `--write-baseline` rewrites the baseline file
//! to grandfather every current finding — for bootstrapping only; CI
//! diffs the committed baseline and fails if it grew.

use lint::engine::{load_unsafe_whitelist, Baseline, Workspace};
use lint::rules::Finding;
use std::path::PathBuf;
use std::process::ExitCode;

/// Default baseline location, relative to `--root`.
const DEFAULT_BASELINE: &str = "crates/lint/baseline.tsv";

struct Options {
    root: PathBuf,
    baseline: Option<PathBuf>,
    json: Option<PathBuf>,
    write_baseline: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        baseline: None,
        json: None,
        write_baseline: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => opts.root = PathBuf::from(args.next().ok_or("--root needs a directory")?),
            "--baseline" => {
                opts.baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a file")?))
            }
            "--json" => opts.json = Some(PathBuf::from(args.next().ok_or("--json needs a file")?)),
            "--write-baseline" => opts.write_baseline = true,
            "--help" | "-h" => {
                return Err(
                    "usage: betalike-lint [--root DIR] [--baseline FILE] [--json OUT] \
                            [--write-baseline]"
                        .into(),
                )
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("betalike-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(findings) if findings.is_empty() => {
            println!("betalike-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{}:{}:{}: {}: {}", f.path, f.line, f.col, f.rule, f.message);
            }
            println!("betalike-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(msg) => {
            eprintln!("betalike-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(opts: &Options) -> Result<Vec<Finding>, String> {
    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| opts.root.join(DEFAULT_BASELINE));
    let whitelist =
        load_unsafe_whitelist(&opts.root).map_err(|e| format!("reading unsafe whitelist: {e}"))?;
    let mut ws = Workspace::scan_root(&opts.root)
        .map_err(|e| format!("scanning {}: {e}", opts.root.display()))?;
    let raw = ws.run(&whitelist);

    if opts.write_baseline {
        let meta: Vec<&Finding> = raw
            .iter()
            .filter(|f| f.rule == "S1" || f.rule == "S2")
            .collect();
        if !meta.is_empty() {
            return Err(format!(
                "refusing to write a baseline while {} suppression-hygiene finding(s) (S1/S2) \
                 exist; fix those first",
                meta.len()
            ));
        }
        std::fs::write(&baseline_path, Baseline::serialize(&raw))
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        println!(
            "betalike-lint: wrote {} with {} grandfathered finding(s)",
            baseline_path.display(),
            raw.len()
        );
        return Ok(Vec::new());
    }

    let baseline = Baseline::load(&baseline_path)?;
    let findings = baseline.apply(raw);
    if let Some(json_path) = &opts.json {
        std::fs::write(json_path, to_json(&findings))
            .map_err(|e| format!("writing {}: {e}", json_path.display()))?;
    }
    Ok(findings)
}

/// Renders findings as JSON. Write-only and hand-escaped — this crate is
/// dependency-free on purpose.
fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"snippet\": {}, \
             \"message\": {}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            f.col,
            json_str(&f.snippet),
            json_str(&f.message)
        ));
    }
    out.push_str(&format!("\n  ],\n  \"count\": {}\n}}\n", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

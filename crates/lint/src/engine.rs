//! The analysis driver: walks the workspace, runs every rule, applies
//! suppressions and the baseline, and returns the surviving findings.

use crate::rules::{self, Finding};
use crate::source::SourceFile;
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Non-Rust files that participate in the workspace rules (X1/X2 check
/// them as prose/config surfaces).
const EXTRA_FILES: &[&str] = &["DESIGN.md", "docs/WIRE.md", ".github/workflows/ci.yml"];

/// The loaded workspace: every file the rules look at, with root-relative
/// forward-slash paths.
pub struct Workspace {
    /// All scanned files, sorted by path for deterministic output.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks `crates/*/src`, `vendor/mini-rayon/src`, and
    /// `vendor/mini-poll/src` under `root` for Rust sources, plus the
    /// prose/config surfaces the workspace rules need. Paths are stored
    /// root-relative with `/` separators so findings and baselines are
    /// stable across machines.
    pub fn scan_root(root: &Path) -> io::Result<Workspace> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        let mut src_roots: Vec<PathBuf> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                src_roots.push(src);
            }
        }
        src_roots.push(root.join("vendor/mini-rayon/src"));
        src_roots.push(root.join("vendor/mini-poll/src"));
        src_roots.sort();
        for src in src_roots {
            collect_rs(&src, &mut |path| {
                let text = fs::read_to_string(path)?;
                files.push(SourceFile::new(rel_path(root, path), text));
                Ok(())
            })?;
        }
        for extra in EXTRA_FILES {
            let path = root.join(extra);
            if path.is_file() {
                files.push(SourceFile::new((*extra).into(), fs::read_to_string(&path)?));
            }
        }
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory `(path, text)` pairs — the test
    /// fixtures use this to exercise rules without touching the disk.
    pub fn from_files(files: Vec<(String, String)>) -> Workspace {
        let mut files: Vec<SourceFile> = files
            .into_iter()
            .map(|(path, text)| SourceFile::new(path, text))
            .collect();
        files.sort_by(|a, b| a.path.cmp(&b.path));
        Workspace { files }
    }

    /// Runs every rule and resolves suppressions. The result is sorted by
    /// `(path, line, col, rule)` and includes S1/S2 meta findings; the
    /// baseline has not been applied yet (see [`Baseline::apply`]).
    pub fn run(&mut self, unsafe_whitelist: &BTreeSet<String>) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &self.files {
            findings.extend(rules::check_file(file, unsafe_whitelist));
            findings.extend(rules::check_suppression_syntax(file));
        }
        findings.extend(rules::check_wire_ops(&self.files));
        findings.extend(rules::check_schemes(&self.files));

        // A well-formed suppression absorbs every finding of its rule on
        // its own line or the next code-bearing line. Malformed ones
        // already produced S1 above and absorb nothing.
        for file in &mut self.files {
            for s in &mut file.suppressions {
                if s.malformed.is_some()
                    || s.reason.is_none()
                    || !rules::SUPPRESSIBLE.contains(&s.rule.as_str())
                {
                    continue;
                }
                let before = findings.len();
                findings.retain(|f| {
                    !(f.rule == s.rule
                        && f.path == file.path
                        && (f.line == s.line || f.line == s.target_line))
                });
                s.used = findings.len() < before;
            }
        }
        for file in &self.files {
            for s in &file.suppressions {
                let well_formed = s.malformed.is_none()
                    && s.reason.is_some()
                    && rules::SUPPRESSIBLE.contains(&s.rule.as_str());
                if well_formed && !s.used {
                    findings.push(rules::stale_suppression(file, s));
                }
            }
        }
        findings.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        findings
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

fn collect_rs(dir: &Path, visit: &mut dyn FnMut(&Path) -> io::Result<()>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .map(|e| e.map(|e| e.path()))
        .collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs(&path, visit)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            visit(&path)?;
        }
    }
    Ok(())
}

/// Loads the `unsafe` whitelist (P2): one root-relative path per line,
/// `#` comments and blank lines ignored. A missing file means an empty
/// whitelist.
pub fn load_unsafe_whitelist(root: &Path) -> io::Result<BTreeSet<String>> {
    let path = root.join(rules::UNSAFE_WHITELIST_PATH);
    if !path.is_file() {
        return Ok(BTreeSet::new());
    }
    Ok(fs::read_to_string(&path)?
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect())
}

/// The grandfathered-findings allowlist. Entries are keyed by
/// `(rule, path, snippet)` with a count, so they survive unrelated edits
/// that shift line numbers but die with the code they describe. The file
/// is a ratchet: an entry that no longer matches a finding is itself a
/// finding (B0), so the baseline can only shrink.
#[derive(Default)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), u32>,
}

impl Baseline {
    /// Parses the tab-separated baseline format:
    /// `rule<TAB>path<TAB>count<TAB>snippet`, `#` comments allowed.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = BTreeMap::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(4, '\t');
            let (rule, path, count, snippet) =
                match (parts.next(), parts.next(), parts.next(), parts.next()) {
                    (Some(r), Some(p), Some(c), Some(s)) => (r, p, c, s),
                    _ => {
                        return Err(format!(
                            "baseline line {}: expected rule<TAB>path<TAB>count<TAB>snippet",
                            i + 1
                        ))
                    }
                };
            let count: u32 = count
                .parse()
                .map_err(|_| format!("baseline line {}: bad count `{count}`", i + 1))?;
            *entries
                .entry((rule.to_string(), path.to_string(), snippet.to_string()))
                .or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Loads the baseline from `path`; a missing file is an empty baseline.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        if !path.is_file() {
            return Ok(Baseline::default());
        }
        let text =
            fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Baseline::parse(&text)
    }

    /// Renders findings into baseline file format (used by
    /// `--write-baseline`).
    pub fn serialize(findings: &[Finding]) -> String {
        let mut counts: BTreeMap<(&str, &str, &str), u32> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.rule, &f.path, &f.snippet)).or_insert(0) += 1;
        }
        let mut out = String::from(
            "# betalike-lint baseline: grandfathered findings, keyed by rule/path/snippet.\n\
             # This file may only shrink — a stale entry is itself a finding (B0).\n",
        );
        for ((rule, path, snippet), count) in counts {
            out.push_str(&format!("{rule}\t{path}\t{count}\t{snippet}\n"));
        }
        out
    }

    /// Subtracts baselined findings and converts stale entries into B0
    /// findings. S1/S2 meta findings are never baselined — suppression
    /// hygiene cannot be grandfathered.
    pub fn apply(&self, findings: Vec<Finding>) -> Vec<Finding> {
        let mut budget = self.entries.clone();
        let mut out = Vec::new();
        for f in findings {
            if f.rule != "S1" && f.rule != "S2" {
                let key = (f.rule.to_string(), f.path.clone(), f.snippet.clone());
                if let Some(n) = budget.get_mut(&key) {
                    if *n > 0 {
                        *n -= 1;
                        continue;
                    }
                }
            }
            out.push(f);
        }
        for ((rule, path, snippet), n) in budget {
            if n > 0 {
                out.push(Finding {
                    rule: "B0",
                    path: path.clone(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "stale baseline entry: {n} grandfathered `{rule}` finding(s) for \
                         `{snippet}` in `{path}` no longer occur; shrink the baseline"
                    ),
                    snippet,
                });
            }
        }
        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
        });
        out
    }

    /// Number of distinct grandfathered fingerprints.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is grandfathered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

//! The workspace's own static analyzer (the `betalike-lint` binary).
//!
//! The publish pipeline promises determinism (bit-identical artifacts
//! across runs and thread counts), the server and store promise
//! panic-freedom on request/decode paths, and the wire protocol promises
//! that every op and every scheme is wired through every layer. Those
//! promises are invariants of the *codebase*, not of any one test — so
//! this crate enforces them mechanically, with a hand-rolled lexer (the
//! build environment is offline; no `syn`) and a token-level rule engine
//! that walks every `crates/*/src` and `vendor/mini-rayon` file.
//!
//! See [`rules`] for the catalogue, `DESIGN.md` §11 for the suppression
//! and baseline policy, and the `betalike-lint` binary for the CLI.
//!
//! Findings can be silenced two ways, both audited:
//!
//! * an inline allow-comment on (or directly above) the offending line,
//!   naming the rule and a mandatory reason — see
//!   [`source::SUPPRESS_MARKER`] for the marker and `DESIGN.md` §11 for
//!   the exact grammar (not spelled out here: the self-scan would read
//!   it);
//! * a baseline entry grandfathering a pre-existing finding. The baseline
//!   is a ratchet: stale entries are themselves findings (B0), so it can
//!   only shrink.

// Backstops betalike-lint rule P2: stronger than the workspace-level
// `unsafe_code = "deny"` because `forbid` cannot be overridden locally.
#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod source;

//! The per-file source model: lexed tokens, `#[cfg(test)]` / `#[test]`
//! region marking, and inline suppression comments.

use crate::lexer::{lex, Comment, Lexed, Token, TokenKind};

/// The marker that introduces an inline suppression comment: this
/// constant's value followed by `allow(RULE, reason = "...")`. The reason
/// is mandatory (rule S1 fires on a suppression without one). The marker
/// is deliberately never written verbatim in this crate's own comments —
/// the self-scan would parse it.
pub const SUPPRESS_MARKER: &str = "betalike-lint:";

/// One parsed suppression comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The rule ID being suppressed (e.g. `P1`).
    pub rule: String,
    /// The suppression's stated reason, if any.
    pub reason: Option<String>,
    /// Parse failure description when the comment carries the marker but
    /// not the grammar; a malformed suppression suppresses nothing.
    pub malformed: Option<String>,
    /// 1-based line of the comment.
    pub line: u32,
    /// 1-based column of the comment.
    pub col: u32,
    /// The line the suppression applies to: the comment's own line, or —
    /// for a comment on a line of its own — the next line holding code.
    pub target_line: u32,
    /// Whether the suppression matched a finding (stale ones are rule S2).
    pub used: bool,
}

/// One scanned file: raw text always, token structure when it is Rust.
#[derive(Debug)]
pub struct SourceFile {
    /// Root-relative path with `/` separators (e.g. `crates/core/src/lib.rs`).
    pub path: String,
    /// The raw file contents (used by text-level workspace rules).
    pub text: String,
    /// Lexed tokens — empty for non-Rust files.
    pub tokens: Vec<Token>,
    /// Parsed suppression comments — empty for non-Rust files.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Builds a source file; `.rs` paths are lexed, test regions marked,
    /// and suppression comments parsed.
    pub fn new(path: String, text: String) -> Self {
        if !path.ends_with(".rs") {
            return SourceFile {
                path,
                text,
                tokens: Vec::new(),
                suppressions: Vec::new(),
            };
        }
        let Lexed {
            mut tokens,
            comments,
        } = lex(&text);
        mark_test_regions(&mut tokens);
        let suppressions = parse_suppressions(&comments, &tokens);
        SourceFile {
            path,
            text,
            tokens,
            suppressions,
        }
    }

    /// Whether any identifier or string-literal token equals `word`
    /// (identifiers case-insensitively, so `Burel` satisfies `burel`).
    pub fn has_code_word(&self, word: &str) -> bool {
        self.tokens.iter().any(|t| match t.kind {
            TokenKind::Ident => t.text.eq_ignore_ascii_case(word),
            TokenKind::Str => t.text == word,
            _ => false,
        })
    }

    /// Whether the raw text contains `word` delimited by non-alphanumeric
    /// characters (case-insensitive) — the containment check for non-Rust
    /// surfaces like `DESIGN.md` and the CI workflow.
    pub fn has_text_word(&self, word: &str) -> bool {
        let hay = self.text.to_ascii_lowercase();
        let needle = word.to_ascii_lowercase();
        let boundary = |b: Option<u8>| !b.is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_');
        let mut from = 0;
        while let Some(at) = hay[from..].find(&needle) {
            let start = from + at;
            let end = start + needle.len();
            if boundary(
                hay.as_bytes()
                    .get(start.wrapping_sub(1))
                    .copied()
                    .filter(|_| start > 0),
            ) && boundary(hay.as_bytes().get(end).copied())
            {
                return true;
            }
            from = end;
        }
        false
    }
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item as test
/// code. The "item" is delimited by the first `{`...`}` block after the
/// attribute (a `mod tests { ... }` or a `fn body`), or by a terminating
/// `;` for brace-less items like `#[cfg(test)] use x;`.
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    while i < tokens.len() {
        if let Some(attr_end) = test_attribute(tokens, i) {
            if let Some(item_end) = item_extent(tokens, attr_end + 1) {
                for t in tokens.iter_mut().take(item_end + 1).skip(i) {
                    t.in_test = true;
                }
                i = item_end + 1;
                continue;
            }
        }
        i += 1;
    }
}

/// If `tokens[at..]` begins a `#[cfg(test…)]` or `#[test]` attribute,
/// returns the index of its closing `]`.
fn test_attribute(tokens: &[Token], at: usize) -> Option<usize> {
    let punct = |i: usize, ch: &str| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ch)
    };
    let ident = |i: usize, name: &str| {
        tokens
            .get(i)
            .is_some_and(|t| t.kind == TokenKind::Ident && t.text == name)
    };
    if !(punct(at, "#") && punct(at + 1, "[")) {
        return None;
    }
    let is_test = ident(at + 2, "test")
        || (ident(at + 2, "cfg") && punct(at + 3, "(") && ident(at + 4, "test"));
    if !is_test {
        return None;
    }
    // Find the attribute's closing `]` (attributes never nest brackets
    // deeply in this workspace, but balance them anyway).
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(at + 1) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
    }
    None
}

/// Returns the index of the token ending the item that starts at `from`
/// (skipping further attributes): the `}` closing its first brace block,
/// or a `;` reached before any `{`.
fn item_extent(tokens: &[Token], mut from: usize) -> Option<usize> {
    // Skip stacked attributes (`#[test]\n#[ignore]\nfn ...`).
    while tokens
        .get(from)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "#")
        && tokens
            .get(from + 1)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "[")
    {
        let mut depth = 0usize;
        let mut i = from + 1;
        loop {
            let t = tokens.get(i)?;
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "[" => depth += 1,
                    "]" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        from = i + 1;
    }
    let mut i = from;
    let mut depth = 0usize;
    loop {
        let t = tokens.get(i)?;
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                ";" if depth == 0 => return Some(i),
                "{" => depth += 1,
                "}" => {
                    depth = depth.checked_sub(1)?;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        i += 1;
    }
}

/// Parses every comment carrying [`SUPPRESS_MARKER`] into a
/// [`Suppression`]. `tokens` supplies the target line: a comment alone on
/// its line suppresses the next line that holds code.
pub fn parse_suppressions(comments: &[Comment], tokens: &[Token]) -> Vec<Suppression> {
    comments
        .iter()
        .filter_map(|c| {
            let at = c.text.find(SUPPRESS_MARKER)?;
            let rest = c.text[at + SUPPRESS_MARKER.len()..].trim();
            let target_line = tokens
                .iter()
                .find(|t| t.line > c.line)
                .map_or(c.line, |t| t.line);
            let mut s = Suppression {
                rule: String::new(),
                reason: None,
                malformed: None,
                line: c.line,
                col: c.col,
                target_line,
                used: false,
            };
            match parse_allow(rest) {
                Ok((rule, reason)) => {
                    s.rule = rule;
                    s.reason = reason;
                }
                Err(why) => s.malformed = Some(why),
            }
            Some(s)
        })
        .collect()
}

/// Parses `allow(RULE)` / `allow(RULE, reason = "...")`.
fn parse_allow(text: &str) -> Result<(String, Option<String>), String> {
    let body = text
        .strip_prefix("allow")
        .map(str::trim_start)
        .and_then(|t| t.strip_prefix('('))
        .ok_or("expected `allow(RULE, reason = \"...\")`")?;
    let close = body.rfind(')').ok_or("unclosed `allow(`")?;
    let inner = &body[..close];
    let (rule, rest) = match inner.find(',') {
        Some(comma) => (inner[..comma].trim(), Some(inner[comma + 1..].trim())),
        None => (inner.trim(), None),
    };
    if rule.is_empty() || !rule.chars().all(|c| c.is_ascii_alphanumeric()) {
        return Err(format!("bad rule ID `{rule}`"));
    }
    let reason = match rest {
        None => None,
        Some(r) => {
            let r = r
                .strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|t| t.strip_prefix('='))
                .map(str::trim)
                .ok_or("expected `reason = \"...\"` after the rule ID")?;
            let quoted = r
                .strip_prefix('"')
                .and_then(|t| t.strip_suffix('"'))
                .ok_or("the reason must be a quoted string")?;
            if quoted.trim().is_empty() {
                return Err("the reason must not be empty".into());
            }
            Some(quoted.to_string())
        }
    };
    Ok((rule.to_string(), reason))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "fn real() { a(); }\n\
             #[cfg(test)]\nmod tests {\n    fn helper() { b(); }\n}\n\
             #[test]\nfn standalone() { c(); }\n\
             fn real2() { d(); }\n"
                .into(),
        );
        let at = |name: &str| f.tokens.iter().find(|t| t.text == name).unwrap().in_test;
        assert!(!at("a"));
        assert!(at("b"));
        assert!(at("c"));
        assert!(!at("d"));
    }

    #[test]
    fn braceless_cfg_test_items_end_at_semicolon() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "#[cfg(test)]\nuse std::collections::HashMap;\nfn real() { a(); }\n".into(),
        );
        let hm = f.tokens.iter().find(|t| t.text == "HashMap").unwrap();
        assert!(hm.in_test);
        assert!(!f.tokens.iter().find(|t| t.text == "a").unwrap().in_test);
    }

    #[test]
    fn stacked_attributes_before_the_item() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "#[test]\n#[ignore]\nfn slow() { x(); }\nfn real() { y(); }\n".into(),
        );
        assert!(f.tokens.iter().find(|t| t.text == "x").unwrap().in_test);
        assert!(!f.tokens.iter().find(|t| t.text == "y").unwrap().in_test);
    }

    #[test]
    fn suppression_with_reason_parses() {
        let src = "// betalike-lint: allow(P1, reason = \"bounds checked above\")\nlet x = v[0];\n";
        let f = SourceFile::new("crates/x/src/lib.rs".into(), src.into());
        assert_eq!(f.suppressions.len(), 1);
        let s = &f.suppressions[0];
        assert_eq!(s.rule, "P1");
        assert_eq!(s.reason.as_deref(), Some("bounds checked above"));
        assert!(s.malformed.is_none());
        assert_eq!(s.target_line, 2);
    }

    #[test]
    fn suppression_without_reason_or_malformed() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "// betalike-lint: allow(D1)\nlet m = 1;\n// betalike-lint: nonsense\nlet n = 2;\n"
                .into(),
        );
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].rule, "D1");
        assert!(f.suppressions[0].reason.is_none());
        assert!(f.suppressions[1].malformed.is_some());
    }

    #[test]
    fn same_line_suppression_targets_its_own_line() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "let x = v[0]; // betalike-lint: allow(P1, reason = \"len asserted\")\n".into(),
        );
        let s = &f.suppressions[0];
        assert_eq!(s.line, 1);
        // No later code line exists, so the target stays the comment line.
        assert_eq!(s.target_line, 1);
    }

    #[test]
    fn text_word_boundaries() {
        let f = SourceFile::new(
            "DESIGN.md".into(),
            "The perturbed form differs; burel and Sabre are schemes.".into(),
        );
        assert!(f.has_text_word("burel"));
        assert!(f.has_text_word("sabre"));
        assert!(!f.has_text_word("perturb")); // only `perturbed` present
    }

    #[test]
    fn code_word_matches_idents_and_strings() {
        let f = SourceFile::new(
            "crates/x/src/lib.rs".into(),
            "fn f() { let a = Algo::Burel; let b = \"sabre\"; run_battery_perturbed(); }".into(),
        );
        assert!(f.has_code_word("burel"));
        assert!(f.has_code_word("sabre"));
        assert!(!f.has_code_word("perturb")); // compound ident does not count
    }
}

//! The rule catalogue.
//!
//! Every rule has a stable ID, fires span-accurate findings, and can be
//! silenced with an allow-comment (see the crate docs for the syntax; the
//! marker never appears verbatim in lint's own comments so the self-scan
//! stays clean) on, or directly above, the offending line — except the
//! meta rules S1/S2/B0, which police the suppression and baseline
//! machinery itself and are therefore not suppressible.
//!
//! | ID | Invariant |
//! |----|-----------|
//! | D1 | no `HashMap`/`HashSet` in deterministic-pipeline crates |
//! | D2 | no `Instant`/`SystemTime` outside bench and the obs clock seam |
//! | D3 | no ad-hoc `thread::spawn`/`scope`/`Builder` outside the pool |
//! | D4 | no OS-entropy RNG construction outside test code |
//! | P1 | no `.unwrap()`/`.expect()`/`panic!`/indexing in server+store |
//! | F1 | no direct `fs::` syscalls in the store — all I/O routes the Vfs |
//! | P2 | no `unsafe` outside the committed whitelist |
//! | X1 | every server wire op is exposed by both clients and the docs |
//! | X2 | every scheme name is wired through persist/oracle/battery/CI/docs |
//! | S1 | suppression comments must parse and carry a reason |
//! | S2 | suppressions must match a finding (no stale allows) |
//! | B0 | baseline entries must match a finding (may only shrink) |

use crate::lexer::{Token, TokenKind};
use crate::source::{SourceFile, Suppression};
use std::collections::BTreeSet;

/// One diagnostic produced by a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The stable rule ID (`D1` ... `B0`).
    pub rule: &'static str,
    /// Root-relative path of the offending file.
    pub path: String,
    /// 1-based line (0 for file-level findings such as X2 site gaps).
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human diagnostic.
    pub message: String,
    /// A short stable fragment identifying the match (the offending token
    /// or name) — the baseline keys on `(rule, path, snippet)` so entries
    /// survive unrelated edits that shift line numbers.
    pub snippet: String,
}

/// Rule IDs that `allow(...)` may name. S1/S2/B0 police the suppression
/// machinery itself and cannot be suppressed with it.
pub const SUPPRESSIBLE: &[&str] = &["D1", "D2", "D3", "D4", "P1", "P2", "F1", "X1", "X2"];

/// Crates whose output must be bit-identical across runs and thread
/// counts: hash-order iteration (D1) is banned outright in them.
const DETERMINISTIC_PREFIXES: &[&str] = &[
    "crates/core/",
    "crates/hilbert/",
    "crates/baselines/",
    "crates/metrics/",
    "crates/query/",
    "crates/conformance/",
    "crates/store/",
    "crates/microdata/",
    "crates/attacks/",
    "crates/faults/",
    "crates/obs/",
];

/// Files allowed to read wall clocks (D2): the bench/perf crate, plus the
/// one file in the observability crate that implements the `Clock` trait
/// over `Instant` — everything else in `crates/obs/` takes the clock as
/// an injected trait object and stays replayable.
const CLOCK_PREFIXES: &[&str] = &["crates/bench/", "crates/obs/src/clock.rs"];

/// Files allowed to create threads (D3): the vendored pool, the server
/// acceptor/worker module, and the event-driven core (its loops and
/// compute pool).
const THREAD_FILES: &[&str] = &[
    "vendor/mini-rayon/src/lib.rs",
    "crates/server/src/server.rs",
    "crates/server/src/event.rs",
];

/// Crates whose non-test code must never panic on a request or decode
/// path (P1): the TCP service and the snapshot store.
const PANIC_FREE_PREFIXES: &[&str] = &["crates/server/src/", "crates/store/src/"];

/// Crates whose non-test code must never touch the filesystem directly
/// (F1): every syscall in the store routes through the injectable `Vfs`
/// so the crash-point torture suite sees it. A bare `fs::` call here is a
/// durability hole the fault harness cannot reach.
const VFS_ONLY_PREFIXES: &[&str] = &["crates/store/src/"];

/// The committed whitelist of files allowed to contain `unsafe` (P2).
pub const UNSAFE_WHITELIST_PATH: &str = "crates/lint/unsafe_allow.txt";

/// Where the canonical wire-op dispatch lives (X1).
const SERVER_DISPATCH: &str = "crates/server/src/server.rs";
/// Surfaces every wire op must reach (X1): both clients as code, the
/// design document as a backtick-quoted name.
const OP_CODE_SURFACES: &[&str] = &[
    "crates/server/src/client.rs",
    "crates/server/src/bin/betalike_client.rs",
];
/// Documentation surfaces every wire op must be named in (X1, as a
/// backtick-quoted name): the design rationale and the normative wire
/// reference.
const OP_DOC_SURFACES: &[&str] = &["DESIGN.md", "docs/WIRE.md"];

/// Where the canonical scheme list lives (X2): the wire `Algo` enum.
const SCHEME_SOURCE: &str = "crates/server/src/wire.rs";
/// Every file that must name every scheme (X2) — adding a sixth scheme
/// without wiring it through persistence, conformance, the battery, CI
/// and the docs fails the lint.
const SCHEME_SITES: &[&str] = &[
    "crates/server/src/persist.rs",
    "crates/conformance/src/publish.rs",
    "crates/conformance/src/oracle.rs",
    "crates/conformance/src/battery.rs",
    ".github/workflows/ci.yml",
    "DESIGN.md",
    "docs/WIRE.md",
];

fn starts_with_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

fn finding(rule: &'static str, file: &SourceFile, t: &Token, message: String) -> Finding {
    Finding {
        rule,
        path: file.path.clone(),
        line: t.line,
        col: t.col,
        message,
        snippet: t.text.clone(),
    }
}

/// Runs every per-file token rule over one Rust file.
pub fn check_file(file: &SourceFile, unsafe_whitelist: &BTreeSet<String>) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    let deterministic = starts_with_any(&file.path, DETERMINISTIC_PREFIXES);
    let clock_free = !starts_with_any(&file.path, CLOCK_PREFIXES);
    let thread_free = !THREAD_FILES.contains(&file.path.as_str());
    let panic_free = starts_with_any(&file.path, PANIC_FREE_PREFIXES);
    let vfs_only = starts_with_any(&file.path, VFS_ONLY_PREFIXES);
    let unsafe_free = !unsafe_whitelist.contains(&file.path);

    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident && !(t.kind == TokenKind::Punct && t.text == "[") {
            continue;
        }
        match t.text.as_str() {
            "HashMap" | "HashSet" if deterministic && t.kind == TokenKind::Ident => {
                out.push(finding(
                    "D1",
                    file,
                    t,
                    format!(
                        "`{}` iterates in hash order; deterministic-pipeline crates must use \
                         BTreeMap/BTreeSet or sorted iteration",
                        t.text
                    ),
                ));
            }
            "Instant" | "SystemTime" if clock_free && t.kind == TokenKind::Ident => {
                out.push(finding(
                    "D2",
                    file,
                    t,
                    format!(
                        "`{}` reads the wall clock; only the bench crate may time things \
                         (published artifacts must not depend on when they were computed)",
                        t.text
                    ),
                ));
            }
            "thread" if thread_free && !t.in_test && t.kind == TokenKind::Ident => {
                if let Some(target) = path_member(toks, i) {
                    if matches!(target.as_str(), "spawn" | "scope" | "Builder") {
                        out.push(finding(
                            "D3",
                            file,
                            t,
                            format!(
                                "ad-hoc `thread::{target}`; all parallelism goes through \
                                 vendor/mini-rayon (or the server acceptor) so thread counts \
                                 stay centrally controlled"
                            ),
                        ));
                    }
                }
            }
            "from_entropy" | "thread_rng" | "OsRng" | "getrandom" | "SystemRandom"
                if !t.in_test && t.kind == TokenKind::Ident =>
            {
                out.push(finding(
                    "D4",
                    file,
                    t,
                    format!(
                        "`{}` draws OS entropy; non-test code must construct seeded ChaCha \
                         RNGs so every publication is reproducible",
                        t.text
                    ),
                ));
            }
            "unwrap" | "expect"
                if panic_free
                    && !t.in_test
                    && t.kind == TokenKind::Ident
                    && prev_is(toks, i, ".")
                    && next_is(toks, i, "(") =>
            {
                out.push(finding(
                    "P1",
                    file,
                    t,
                    format!(
                        "`.{}()` can panic on a request/decode path; return a typed error \
                         instead (the BTBL reader models this)",
                        t.text
                    ),
                ));
            }
            "panic"
                if panic_free
                    && !t.in_test
                    && t.kind == TokenKind::Ident
                    && next_is(toks, i, "!") =>
            {
                out.push(finding(
                    "P1",
                    file,
                    t,
                    "`panic!` on a request/decode path; return a typed error instead".into(),
                ));
            }
            "[" if panic_free && !t.in_test && is_index_expression(toks, i) => {
                out.push(Finding {
                    rule: "P1",
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    message: "slice/array indexing can panic on a request/decode path; use \
                              `.get(..)` or prove the bound and suppress with a reason"
                        .into(),
                    snippet: index_snippet(toks, i),
                });
            }
            "fs" if vfs_only && !t.in_test && t.kind == TokenKind::Ident => {
                if let Some(target) = path_member(toks, i) {
                    out.push(finding(
                        "F1",
                        file,
                        t,
                        format!(
                            "direct `fs::{target}` in the store; route the syscall through the \
                             injectable Vfs (a named `site::` constant) so the crash-point \
                             torture suite can reach it"
                        ),
                    ));
                }
            }
            "unsafe" if unsafe_free && t.kind == TokenKind::Ident => {
                out.push(finding(
                    "P2",
                    file,
                    t,
                    format!(
                        "`unsafe` outside the whitelist ({UNSAFE_WHITELIST_PATH}); add the file \
                         there with a justification or rewrite safely"
                    ),
                ));
            }
            _ => {}
        }
    }
    out
}

/// For an ident at `i` followed by `::`, the path member after it.
fn path_member(toks: &[Token], i: usize) -> Option<String> {
    let colon = |j: usize| {
        toks.get(j)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ":")
    };
    if colon(i + 1) && colon(i + 2) {
        let t = toks.get(i + 3)?;
        (t.kind == TokenKind::Ident).then(|| t.text.clone())
    } else {
        None
    }
}

fn prev_is(toks: &[Token], i: usize, ch: &str) -> bool {
    i > 0 && toks[i - 1].kind == TokenKind::Punct && toks[i - 1].text == ch
}

fn next_is(toks: &[Token], i: usize, ch: &str) -> bool {
    toks.get(i + 1)
        .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ch)
}

/// Keywords that may directly precede a `[` without making it an index
/// expression (slice patterns, array expressions after `return`/`=` etc.).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "let", "in", "if", "else", "match", "return", "mut", "ref", "move", "as", "break", "continue",
    "loop", "while", "for", "where", "impl", "dyn", "fn", "pub", "use", "static", "const", "type",
    "struct", "enum", "unsafe", "box", "yield", "await", "async",
];

/// A `[` is an index expression when it directly follows a value-ending
/// token: a non-keyword identifier, a closing `)`/`]`, or a `?` (as in
/// `take(1)?[0]`). Full-range slices `x[..]` are exempt — they cannot
/// panic.
fn is_index_expression(toks: &[Token], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| toks.get(p)) else {
        return false;
    };
    let indexable = match prev.kind {
        TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
        TokenKind::Punct => prev.text == ")" || prev.text == "]" || prev.text == "?",
        _ => false,
    };
    if !indexable {
        return false;
    }
    // `x[..]` — RangeFull never panics.
    let dot = |j: usize| {
        toks.get(j)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == ".")
    };
    let close = |j: usize| {
        toks.get(j)
            .is_some_and(|t| t.kind == TokenKind::Punct && t.text == "]")
    };
    !(dot(i + 1) && dot(i + 2) && close(i + 3))
}

/// A stable snippet for an indexing finding: `base[`.
fn index_snippet(toks: &[Token], i: usize) -> String {
    let base = i
        .checked_sub(1)
        .map(|p| toks[p].text.as_str())
        .unwrap_or("");
    format!("{base}[")
}

/// Extracts the canonical wire-op set from the server dispatch: string
/// literals used as match-arm patterns (`"op" =>`) plus literals compared
/// with `==`, in non-test code.
pub fn dispatch_ops(server: &SourceFile) -> Vec<(String, u32, u32)> {
    let toks = &server.tokens;
    let mut ops = Vec::new();
    let punct = |j: usize, ch: &str| {
        toks.get(j)
            .is_some_and(|t: &Token| t.kind == TokenKind::Punct && t.text == ch)
    };
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Str || t.in_test {
            continue;
        }
        if !t.text.chars().all(|c| c.is_ascii_lowercase()) || t.text.is_empty() {
            continue;
        }
        let arm = punct(i + 1, "=") && punct(i + 2, ">");
        // `op == "shutdown"`: the two preceding tokens are `=` `=` (a `!=`
        // lexes as `!` `=`, so it cannot satisfy this).
        let eq = i >= 2 && punct(i - 1, "=") && punct(i - 2, "=");
        if (arm || eq) && !ops.iter().any(|(o, _, _)| o == &t.text) {
            ops.push((t.text.clone(), t.line, t.col));
        }
    }
    ops
}

/// Extracts the canonical scheme names from the wire `Algo` enum: string
/// literals adjacent to a `=>` on either side (`Algo::Burel => "burel"` in
/// `as_str`, `"burel" => Ok(..)` in `parse`), in non-test code.
pub fn wire_schemes(wire: &SourceFile) -> Vec<String> {
    let toks = &wire.tokens;
    let punct = |j: usize, ch: &str| {
        toks.get(j)
            .is_some_and(|t: &Token| t.kind == TokenKind::Punct && t.text == ch)
    };
    let mut schemes = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Str || t.in_test {
            continue;
        }
        if !t.text.chars().all(|c| c.is_ascii_lowercase()) || t.text.is_empty() {
            continue;
        }
        let before_arrow = punct(i + 1, "=") && punct(i + 2, ">");
        let after_arrow = i >= 2 && punct(i - 1, ">") && punct(i - 2, "=");
        if (before_arrow || after_arrow) && !schemes.contains(&t.text) {
            schemes.push(t.text.clone());
        }
    }
    schemes
}

/// X1: every op the server dispatches must be reachable from both client
/// surfaces and documented in DESIGN.md §8 and docs/WIRE.md.
pub fn check_wire_ops(files: &[SourceFile]) -> Vec<Finding> {
    let Some(server) = files.iter().find(|f| f.path == SERVER_DISPATCH) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (op, line, col) in dispatch_ops(server) {
        for surface in OP_CODE_SURFACES {
            let Some(f) = files.iter().find(|f| &f.path == surface) else {
                continue;
            };
            if !f.has_code_word(&op) {
                out.push(Finding {
                    rule: "X1",
                    path: SERVER_DISPATCH.into(),
                    line,
                    col,
                    message: format!(
                        "wire op `{op}` is dispatched by the server but not exposed in \
                         `{surface}`; every op must be reachable from both clients"
                    ),
                    snippet: format!("{op}@{surface}"),
                });
            }
        }
        for surface in OP_DOC_SURFACES {
            let Some(doc) = files.iter().find(|f| &f.path == surface) else {
                continue;
            };
            if !doc.text.contains(&format!("`{op}`")) {
                out.push(Finding {
                    rule: "X1",
                    path: SERVER_DISPATCH.into(),
                    line,
                    col,
                    message: format!(
                        "wire op `{op}` is dispatched by the server but never named (as \
                         `{op}` in backticks) in {surface}"
                    ),
                    snippet: format!("{op}@{surface}"),
                });
            }
        }
    }
    out
}

/// X2: every scheme the wire `Algo` enum names must appear in every
/// dispatch/verification site — adding a scheme without wiring it through
/// the whole stack fails the lint.
pub fn check_schemes(files: &[SourceFile]) -> Vec<Finding> {
    let Some(wire) = files.iter().find(|f| f.path == SCHEME_SOURCE) else {
        return Vec::new();
    };
    let schemes = wire_schemes(wire);
    let mut out = Vec::new();
    for site in SCHEME_SITES {
        let Some(f) = files.iter().find(|f| &f.path == site) else {
            continue;
        };
        for scheme in &schemes {
            let present = if site.ends_with(".rs") {
                f.has_code_word(scheme)
            } else {
                f.has_text_word(scheme)
            };
            if !present {
                out.push(Finding {
                    rule: "X2",
                    path: (*site).into(),
                    line: 0,
                    col: 0,
                    message: format!(
                        "scheme `{scheme}` (from the wire `Algo` enum) is not named anywhere \
                         in `{site}`; every scheme must be wired through dispatch, persistence, \
                         the conformance oracle, the attack battery, CI and the docs"
                    ),
                    snippet: format!("{scheme}@{site}"),
                });
            }
        }
    }
    out
}

/// S1: a suppression comment that fails to parse, names an unknown or
/// unsuppressible rule, or omits the mandatory reason.
pub fn check_suppression_syntax(file: &SourceFile) -> Vec<Finding> {
    file.suppressions
        .iter()
        .filter_map(|s| {
            let problem = if let Some(why) = &s.malformed {
                format!("malformed suppression: {why}")
            } else if !SUPPRESSIBLE.contains(&s.rule.as_str()) {
                format!(
                    "suppression names `{}`, which is not a suppressible rule ({})",
                    s.rule,
                    SUPPRESSIBLE.join(", ")
                )
            } else if s.reason.is_none() {
                format!(
                    "suppression of `{}` without a reason; write \
                     allow({}, reason = \"why this is safe\")",
                    s.rule, s.rule
                )
            } else {
                return None;
            };
            Some(Finding {
                rule: "S1",
                path: file.path.clone(),
                line: s.line,
                col: s.col,
                message: problem,
                snippet: format!("allow({})", s.rule),
            })
        })
        .collect()
}

/// S2: a well-formed suppression that matched no finding — stale allows
/// must be deleted, keeping the suppression surface minimal.
pub fn stale_suppression(file: &SourceFile, s: &Suppression) -> Finding {
    Finding {
        rule: "S2",
        path: file.path.clone(),
        line: s.line,
        col: s.col,
        message: format!(
            "stale suppression: no `{}` finding on line {} (or {}); delete it",
            s.rule, s.line, s.target_line
        ),
        snippet: format!("allow({})", s.rule),
    }
}
